//! [`PreparedLoop`]: the compiled loop as a first-class value.

use crate::engine::EngineInner;
use crate::error::EngineError;
use doacross_core::{DoacrossError, DoacrossLoop, RunStats};
use doacross_plan::{ExecutionPlan, PatternFingerprint, PlanVariant};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A prepared (planned) loop handle: the preprocessing products of one
/// access-pattern structure, resolved once by [`crate::Engine::prepare`]
/// and executable any number of times from any number of threads.
///
/// Cloning is two `Arc` bumps; clones share the plan and remain valid
/// after the plan is evicted from the engine's cache (eviction frees cache
/// *slots*, not plans in flight). Only [`crate::Engine::invalidate`]
/// retires a handle, by advancing the structure's generation past the one
/// recorded here — after which [`PreparedLoop::execute`] fails fast with
/// [`EngineError::StalePlan`].
#[derive(Clone)]
pub struct PreparedLoop {
    inner: Arc<EngineInner>,
    plan: Arc<ExecutionPlan>,
    /// The structure's shared generation cell — staleness is one atomic
    /// load, never a cache-shard lock, so executes through a handle stay
    /// off the shard mutexes entirely.
    generation_cell: Arc<AtomicU64>,
    generation: u64,
    from_cache: bool,
}

impl PreparedLoop {
    pub(crate) fn new(
        inner: Arc<EngineInner>,
        plan: Arc<ExecutionPlan>,
        generation_cell: Arc<AtomicU64>,
        generation: u64,
        from_cache: bool,
    ) -> Self {
        // `generation` was read while the cache shard lock was held, so it
        // is consistent with `plan`: re-reading the cell here could race
        // an adaptive swap and pair the old plan with the new generation —
        // a handle that would never report stale.
        Self {
            inner,
            plan,
            generation_cell,
            generation,
            from_cache,
        }
    }

    /// The structural fingerprint the plan is keyed under.
    pub fn fingerprint(&self) -> &PatternFingerprint {
        self.plan.fingerprint()
    }

    /// The execution variant the cost model selected.
    pub fn variant(&self) -> PlanVariant {
        self.plan.variant()
    }

    /// The underlying execution plan (census, candidate prices, captured
    /// preprocessing products).
    pub fn plan(&self) -> &ExecutionPlan {
        &self.plan
    }

    /// The generation this handle was prepared under (0 until the
    /// structure is first invalidated).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the prepare that produced this handle was served from the
    /// cache (`true`) or built the plan (`false`). Executions report this
    /// as their [`PlanProvenance`].
    pub fn from_cache(&self) -> bool {
        self.from_cache
    }

    /// Whether [`crate::Engine::invalidate`] has retired this handle.
    /// [`PreparedLoop::execute`] performs the same check and returns the
    /// typed [`EngineError::StalePlan`]; this is the non-failing query.
    pub fn is_stale(&self) -> bool {
        self.generation_cell.load(Ordering::Acquire) != self.generation
    }

    /// Executes the prepared plan against `loop_`, updating `y` in place
    /// exactly as the sequential source loop would.
    ///
    /// `loop_` must share the structure the handle was prepared for — same
    /// index arrays; coefficient *values* and `y` contents are free to
    /// differ per call (that is the point: one triangular structure, many
    /// right-hand sides). Shape mismatches are rejected with
    /// [`DoacrossError::PlanMismatch`]; content equality is the caller's
    /// contract, exactly as it is for the fingerprint-keyed cache.
    ///
    /// Staleness is checked at entry: a concurrent
    /// [`crate::Engine::invalidate`] landing *during* an execution affects
    /// the next call, not the one in flight.
    pub fn execute<L: DoacrossLoop + ?Sized>(
        &self,
        loop_: &L,
        y: &mut [f64],
    ) -> Result<RunStats, EngineError> {
        self.check_stale()?;
        // Provenance is stamped inside `execute_plan`, before the
        // observability and adaptive hooks see the stats.
        self.inner
            .execute_plan(loop_, y, &self.plan, self.from_cache, self.generation)
    }

    /// The typed staleness check behind [`PreparedLoop::execute`], also
    /// applied per job by the batched path at execute time — a handle
    /// invalidated while queued in a [`crate::SolveBatch`] fails here and
    /// never executes.
    pub(crate) fn check_stale(&self) -> Result<(), EngineError> {
        let current = self.generation_cell.load(Ordering::Acquire);
        if current != self.generation {
            return Err(EngineError::StalePlan {
                fingerprint: *self.plan.fingerprint(),
                prepared_generation: self.generation,
                current_generation: current,
            });
        }
        Ok(())
    }

    pub(crate) fn plan_arc(&self) -> &Arc<ExecutionPlan> {
        &self.plan
    }

    /// Like [`PreparedLoop::execute`], but leaves `y` untouched and writes
    /// the results into `out` (seeded from `y` first) — the
    /// fresh-output-vector protocol solvers want.
    pub fn execute_into<L: DoacrossLoop + ?Sized>(
        &self,
        loop_: &L,
        y: &[f64],
        out: &mut [f64],
    ) -> Result<RunStats, EngineError> {
        if out.len() != y.len() {
            return Err(EngineError::Doacross(DoacrossError::DataLenMismatch {
                got: out.len(),
                expected: y.len(),
            }));
        }
        out.copy_from_slice(y);
        self.execute(loop_, out)
    }
}

impl std::fmt::Debug for PreparedLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedLoop")
            .field("fingerprint", &self.plan.fingerprint().to_string())
            .field("variant", &self.plan.variant())
            .field("generation", &self.generation)
            .field("from_cache", &self.from_cache)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::Engine;
    use doacross_core::{seq::run_sequential, PlanProvenance, TestLoop};

    #[test]
    fn handles_execute_repeatedly_and_report_their_provenance() {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(500, 2, 8);
        let y0 = loop_.initial_y();
        let mut oracle = y0.clone();
        run_sequential(&loop_, &mut oracle);

        let cold = engine.prepare(&loop_).unwrap();
        assert!(!cold.from_cache());
        for _ in 0..3 {
            let mut y = y0.clone();
            let stats = cold.execute(&loop_, &mut y).unwrap();
            assert_eq!(y, oracle);
            assert_eq!(stats.provenance, PlanProvenance::PlanCold);
        }

        let hot = engine.prepare(&loop_).unwrap();
        assert!(hot.from_cache());
        let mut y = y0.clone();
        let stats = hot.execute(&loop_, &mut y).unwrap();
        assert_eq!(y, oracle);
        assert_eq!(stats.provenance, PlanProvenance::PlanCached);
        assert_eq!(hot.fingerprint(), cold.fingerprint());
    }

    #[test]
    fn execute_into_leaves_the_input_untouched() {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(200, 1, 8);
        let y0 = loop_.initial_y();
        let mut oracle = y0.clone();
        run_sequential(&loop_, &mut oracle);

        let prepared = engine.prepare(&loop_).unwrap();
        let mut out = vec![0.0; y0.len()];
        prepared.execute_into(&loop_, &y0, &mut out).unwrap();
        assert_eq!(out, oracle);
        assert_eq!(y0, loop_.initial_y(), "input untouched");

        let mut short = vec![0.0; 3];
        assert!(prepared.execute_into(&loop_, &y0, &mut short).is_err());
    }

    #[test]
    fn invalidation_retires_handles_and_replans() {
        let engine = Engine::builder().workers(2).build();
        let loop_ = TestLoop::new(300, 1, 8);
        let y0 = loop_.initial_y();

        let prepared = engine.prepare(&loop_).unwrap();
        assert!(!prepared.is_stale());
        assert_eq!(prepared.generation(), 0);

        assert!(engine.invalidate(prepared.fingerprint()));
        assert!(prepared.is_stale());
        let mut y = y0.clone();
        let err = prepared.execute(&loop_, &mut y).unwrap_err();
        assert!(matches!(
            err,
            crate::EngineError::StalePlan {
                prepared_generation: 0,
                current_generation: 1,
                ..
            }
        ));

        // Re-preparing rebuilds under the new generation and works.
        let fresh = engine.prepare(&loop_).unwrap();
        assert!(!fresh.from_cache(), "invalidation dropped the plan");
        assert_eq!(fresh.generation(), 1);
        let mut y = y0.clone();
        fresh.execute(&loop_, &mut y).unwrap();
        let mut oracle = y0;
        run_sequential(&loop_, &mut oracle);
        assert_eq!(y, oracle);

        // Invalidating a never-seen fingerprint drops nothing.
        let other = TestLoop::new(77, 1, 7);
        let fp = doacross_plan::PatternFingerprint::of(&other);
        assert!(!engine.invalidate(&fp));
    }
}
