//! The engine's typed failure surface.

use doacross_core::DoacrossError;
use doacross_plan::{PatternFingerprint, PersistError};

/// Reasons an engine operation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The [`crate::PreparedLoop`] handle was prepared under a generation
    /// that [`crate::Engine::invalidate`] has since advanced. The handle
    /// refuses to execute its (possibly outdated) plan; re-prepare to get
    /// a fresh one.
    StalePlan {
        /// Fingerprint of the invalidated structure.
        fingerprint: PatternFingerprint,
        /// Generation the handle was prepared under.
        prepared_generation: u64,
        /// The structure's current generation.
        current_generation: u64,
    },
    /// Solve admission was refused: every scheduler sub-pool was busy and
    /// the bounded wait queue was already at `max_pending` callers. The
    /// engine's state is untouched — retry later, shed the request, or
    /// rebuild with more pools / a deeper queue
    /// ([`crate::EngineBuilder::pools`] /
    /// [`crate::EngineBuilder::max_pending`]).
    Saturated {
        /// Sub-pool count of the engine's scheduler.
        pools: usize,
        /// Callers allowed to wait for a free sub-pool before refusal.
        max_pending: usize,
    },
    /// A plan store could not be written, read, or trusted — corrupt
    /// bytes, a truncated file, an unsupported format version, or a
    /// record that failed structural revalidation. Loading never applies
    /// a partially-trusted store: on this error the cache is exactly as
    /// warm as it was before the call.
    Persist(PersistError),
    /// The underlying planner or runtime rejected the loop.
    Doacross(DoacrossError),
    /// [`crate::Engine::verify_plan`] proved the pattern's plan unsound:
    /// its synchronization schedule fails to cover a dependence the index
    /// arrays imply. Carries the first uncovered edge.
    Unsound(doacross_plan::SoundnessViolation),
    /// A worker panicked inside a parallel region. The region was
    /// poisoned, every other worker unwound cooperatively (no hang), the
    /// sub-pool was health-probed and released, and the caller's output
    /// buffer was restored — but the solve produced nothing. Surfaced
    /// only when [`crate::FallbackPolicy::Disabled`] suppresses the
    /// sequential fallback (or the fallback itself failed).
    SolvePanicked {
        /// Scheduler sub-pool the faulted region ran on.
        pool: usize,
        /// Worker index whose closure panicked (first cause wins when
        /// several race).
        worker: usize,
    },
    /// The parallel solve ran past the engine's
    /// [`crate::EngineBuilder::solve_deadline`]. All workers unwound
    /// cooperatively at the next poll site; partial statistics for the
    /// aborted attempt are in the flight recorder.
    SolveTimeout {
        /// Scheduler sub-pool the expired region ran on.
        pool: usize,
        /// The configured deadline that was exceeded.
        deadline: std::time::Duration,
    },
}

impl From<DoacrossError> for EngineError {
    fn from(err: DoacrossError) -> Self {
        EngineError::Doacross(err)
    }
}

impl From<PersistError> for EngineError {
    fn from(err: PersistError) -> Self {
        EngineError::Persist(err)
    }
}

impl From<doacross_sched::Saturated> for EngineError {
    fn from(err: doacross_sched::Saturated) -> Self {
        EngineError::Saturated {
            pools: err.pools,
            max_pending: err.max_pending,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StalePlan {
                fingerprint,
                prepared_generation,
                current_generation,
            } => write!(
                f,
                "prepared loop is stale: pattern {fingerprint} was invalidated \
                 (handle generation {prepared_generation}, current {current_generation}); \
                 re-prepare to rebuild the plan"
            ),
            EngineError::Saturated { pools, max_pending } => write!(
                f,
                "engine saturated: all {pools} scheduler sub-pool(s) busy and \
                 {max_pending} caller(s) already waiting; retry, shed load, or \
                 rebuild with more pools / a deeper admission queue"
            ),
            EngineError::Persist(err) => write!(f, "{err}"),
            EngineError::Doacross(err) => write!(f, "{err}"),
            EngineError::Unsound(violation) => {
                write!(f, "plan failed soundness verification: {violation}")
            }
            EngineError::SolvePanicked { pool, worker } => write!(
                f,
                "parallel solve panicked: worker {worker} on sub-pool {pool} \
                 poisoned the region; all workers unwound and the sub-pool \
                 was released (no partial output was delivered)"
            ),
            EngineError::SolveTimeout { pool, deadline } => write!(
                f,
                "parallel solve on sub-pool {pool} exceeded its {deadline:?} \
                 deadline and was aborted cooperatively"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Doacross(err) => Some(err),
            EngineError::Persist(err) => Some(err),
            EngineError::Unsound(violation) => Some(violation),
            EngineError::StalePlan { .. }
            | EngineError::Saturated { .. }
            | EngineError::SolvePanicked { .. }
            | EngineError::SolveTimeout { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{IndirectLoop, TestLoop};

    #[test]
    fn display_and_source() {
        let _ = IndirectLoop::new(0, vec![], vec![], vec![]);
        let fp = PatternFingerprint::of(&TestLoop::new(4, 1, 7));
        let stale = EngineError::StalePlan {
            fingerprint: fp,
            prepared_generation: 0,
            current_generation: 2,
        };
        assert!(stale.to_string().contains("stale"));
        assert!(std::error::Error::source(&stale).is_none());

        let wrapped: EngineError = DoacrossError::EmptyBlock.into();
        assert!(wrapped.to_string().contains("block size"));
        assert!(std::error::Error::source(&wrapped).is_some());

        let persist: EngineError = doacross_plan::PersistError::BadMagic.into();
        assert!(persist.to_string().contains("magic"));
        assert!(std::error::Error::source(&persist).is_some());

        let saturated = EngineError::Saturated {
            pools: 2,
            max_pending: 0,
        };
        assert!(saturated.to_string().contains("saturated"));
        assert!(std::error::Error::source(&saturated).is_none());

        let panicked = EngineError::SolvePanicked { pool: 1, worker: 3 };
        assert!(panicked.to_string().contains("worker 3"));
        assert!(panicked.to_string().contains("sub-pool 1"));
        assert!(std::error::Error::source(&panicked).is_none());

        let timed_out = EngineError::SolveTimeout {
            pool: 0,
            deadline: std::time::Duration::from_millis(10),
        };
        assert!(timed_out.to_string().contains("deadline"));
        assert!(std::error::Error::source(&timed_out).is_none());
    }
}
