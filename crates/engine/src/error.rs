//! The engine's typed failure surface.

use doacross_core::DoacrossError;
use doacross_plan::{PatternFingerprint, PersistError};

/// Reasons an engine operation can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The [`crate::PreparedLoop`] handle was prepared under a generation
    /// that [`crate::Engine::invalidate`] has since advanced. The handle
    /// refuses to execute its (possibly outdated) plan; re-prepare to get
    /// a fresh one.
    StalePlan {
        /// Fingerprint of the invalidated structure.
        fingerprint: PatternFingerprint,
        /// Generation the handle was prepared under.
        prepared_generation: u64,
        /// The structure's current generation.
        current_generation: u64,
    },
    /// Solve admission was refused: every scheduler sub-pool was busy and
    /// the bounded wait queue was already at `max_pending` callers. The
    /// engine's state is untouched — retry later, shed the request, or
    /// rebuild with more pools / a deeper queue
    /// ([`crate::EngineBuilder::pools`] /
    /// [`crate::EngineBuilder::max_pending`]).
    Saturated {
        /// Sub-pool count of the engine's scheduler.
        pools: usize,
        /// Callers allowed to wait for a free sub-pool before refusal.
        max_pending: usize,
    },
    /// A plan store could not be written, read, or trusted — corrupt
    /// bytes, a truncated file, an unsupported format version, or a
    /// record that failed structural revalidation. Loading never applies
    /// a partially-trusted store: on this error the cache is exactly as
    /// warm as it was before the call.
    Persist(PersistError),
    /// The underlying planner or runtime rejected the loop.
    Doacross(DoacrossError),
    /// [`crate::Engine::verify_plan`] proved the pattern's plan unsound:
    /// its synchronization schedule fails to cover a dependence the index
    /// arrays imply. Carries the first uncovered edge.
    Unsound(doacross_plan::SoundnessViolation),
}

impl From<DoacrossError> for EngineError {
    fn from(err: DoacrossError) -> Self {
        EngineError::Doacross(err)
    }
}

impl From<PersistError> for EngineError {
    fn from(err: PersistError) -> Self {
        EngineError::Persist(err)
    }
}

impl From<doacross_sched::Saturated> for EngineError {
    fn from(err: doacross_sched::Saturated) -> Self {
        EngineError::Saturated {
            pools: err.pools,
            max_pending: err.max_pending,
        }
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::StalePlan {
                fingerprint,
                prepared_generation,
                current_generation,
            } => write!(
                f,
                "prepared loop is stale: pattern {fingerprint} was invalidated \
                 (handle generation {prepared_generation}, current {current_generation}); \
                 re-prepare to rebuild the plan"
            ),
            EngineError::Saturated { pools, max_pending } => write!(
                f,
                "engine saturated: all {pools} scheduler sub-pool(s) busy and \
                 {max_pending} caller(s) already waiting; retry, shed load, or \
                 rebuild with more pools / a deeper admission queue"
            ),
            EngineError::Persist(err) => write!(f, "{err}"),
            EngineError::Doacross(err) => write!(f, "{err}"),
            EngineError::Unsound(violation) => {
                write!(f, "plan failed soundness verification: {violation}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Doacross(err) => Some(err),
            EngineError::Persist(err) => Some(err),
            EngineError::Unsound(violation) => Some(violation),
            EngineError::StalePlan { .. } | EngineError::Saturated { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::{IndirectLoop, TestLoop};

    #[test]
    fn display_and_source() {
        let _ = IndirectLoop::new(0, vec![], vec![], vec![]);
        let fp = PatternFingerprint::of(&TestLoop::new(4, 1, 7));
        let stale = EngineError::StalePlan {
            fingerprint: fp,
            prepared_generation: 0,
            current_generation: 2,
        };
        assert!(stale.to_string().contains("stale"));
        assert!(std::error::Error::source(&stale).is_none());

        let wrapped: EngineError = DoacrossError::EmptyBlock.into();
        assert!(wrapped.to_string().contains("block size"));
        assert!(std::error::Error::source(&wrapped).is_some());

        let persist: EngineError = doacross_plan::PersistError::BadMagic.into();
        assert!(persist.to_string().contains("magic"));
        assert!(std::error::Error::source(&persist).is_some());

        let saturated = EngineError::Saturated {
            pools: 2,
            max_pending: 0,
        };
        assert!(saturated.to_string().contains("saturated"));
        assert!(std::error::Error::source(&saturated).is_none());
    }
}
