//! Engine wiring for `doacross-adapt`: telemetry feeding, the sequential
//! baseline probe, refined re-pricing, and the plan swap itself.
//!
//! The division of labor: `doacross_adapt` owns the *decisions* (when to
//! evaluate, what to trial, commit vs. demote — all value-level and
//! unit-tested there); this module owns the *mechanics* that need an
//! engine — recording each execute into the shared recorder, timing the
//! one-off sequential baseline that anchors refinement, rebuilding a plan
//! with the refined cost model via the existing census path, and swapping
//! the cached plan under its shard lock with a generation bump so
//! outstanding handles fail typed ([`crate::EngineError::StalePlan`])
//! instead of executing a superseded plan.
//!
//! Everything here runs *after* a solve returns, off the result path: a
//! solve's correctness never depends on adaptation (every variant is
//! bit-identical to the sequential oracle by construction), and a failed
//! rebuild simply leaves the current plan in place.

use crate::engine::EngineInner;
use doacross_adapt::{
    policy::Action, pricing, refine, AdaptiveConfig, PromotionPolicy, RefinementConfig,
    SolveSample, StructureState, TelemetryEntry, TelemetryTotals, VariantKind, VariantTelemetry,
};
use doacross_core::{seq::run_sequential, DoacrossLoop, RunStats};
use doacross_obs::profile::ProfileSummary;
use doacross_obs::TraceEvent;
use doacross_plan::{ExecutionPlan, PatternFingerprint, Planner, StoredCalibration};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Failpoint site consulted just before an adaptive trial builds its
/// challenger plan: a `Saturate` action is absorbed as a failed
/// challenger build (incumbent retained, no trial), a `DelayNs` action
/// stretches the evaluation.
pub const FAILPOINT_TRIAL: &str = "engine::adaptive::trial";

/// Counters of the adaptive feedback loop, engine-wide.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Evaluation points that refined the model and re-priced a plan.
    pub repricings: u64,
    /// Trials started (plans swapped in on refined evidence).
    pub trials: u64,
    /// Trials committed — the measured-cheaper variant was promoted.
    pub promotions: u64,
    /// Trials rolled back — the incumbent returned on measured regression.
    pub demotions: u64,
    /// Sequential baseline probes run to anchor refinement.
    pub baseline_probes: u64,
    /// Faulted parallel solves replayed on the sequential variant
    /// (graceful degradation). Each also feeds a sequential telemetry
    /// sample, so repeated demotions re-price the structure toward the
    /// variant that actually delivers.
    pub fallbacks: u64,
}

/// Per-structure engine-side state: the policy's value state plus the
/// retained incumbent plan a demotion swaps back.
#[derive(Default)]
struct Structure {
    policy: StructureState,
    incumbent: Option<Arc<ExecutionPlan>>,
    /// The structure's most recent profiled solve (present when the
    /// engine also runs the deep profiler): realized critical path and
    /// the work/wait split — stall-structure evidence the policy and
    /// operators can consult alongside the variant telemetry.
    profile: Option<ProfileSummary>,
}

/// The adaptive half of an engine (present when built with
/// [`crate::EngineBuilder::adaptive`]).
pub(crate) struct AdaptiveRuntime {
    policy: PromotionPolicy,
    telemetry: VariantTelemetry,
    /// ns-per-model-unit from host calibration, when the engine measured
    /// (or restored) one — the preferred refinement anchor.
    unit_ns_hint: Option<f64>,
    structures: Mutex<HashMap<PatternFingerprint, Structure>>,
    repricings: AtomicU64,
    trials: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    baseline_probes: AtomicU64,
    fallbacks: AtomicU64,
}

impl AdaptiveRuntime {
    pub(crate) fn new(
        config: AdaptiveConfig,
        shards: usize,
        calibration: Option<&StoredCalibration>,
    ) -> Self {
        Self {
            policy: PromotionPolicy::new(config),
            telemetry: VariantTelemetry::new(shards),
            unit_ns_hint: calibration.map(|c| c.unit_ns),
            structures: Mutex::new(HashMap::new()),
            repricings: AtomicU64::new(0),
            trials: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            baseline_probes: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> AdaptiveStats {
        AdaptiveStats {
            repricings: self.repricings.load(Ordering::Relaxed),
            trials: self.trials.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            baseline_probes: self.baseline_probes.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn telemetry_totals(&self) -> TelemetryTotals {
        self.telemetry.totals()
    }

    pub(crate) fn telemetry_entries(
        &self,
    ) -> Vec<(PatternFingerprint, VariantKind, TelemetryEntry)> {
        self.telemetry.entries()
    }

    pub(crate) fn telemetry_of(
        &self,
        fingerprint: &PatternFingerprint,
        kind: VariantKind,
    ) -> Option<TelemetryEntry> {
        self.telemetry.get(fingerprint, kind)
    }

    /// Restores persisted telemetry (warm start). Returns records taken.
    pub(crate) fn restore_telemetry(&self, records: &[doacross_plan::StoredTelemetry]) -> usize {
        records
            .iter()
            .filter_map(TelemetryEntry::from_stored)
            .filter(|(fp, kind, entry)| self.telemetry.restore(*fp, *kind, *entry))
            .count()
    }

    /// Captures telemetry into a store snapshot.
    pub(crate) fn snapshot_telemetry(&self, store: &mut doacross_plan::PlanStore) {
        for (fp, kind, entry) in self.telemetry.entries() {
            store.push_telemetry(entry.to_stored(fp, kind));
        }
    }

    /// Drops adaptive state for an invalidated structure: its new
    /// generation starts with a clean slate (fresh trial budget, no
    /// rejections) because invalidation means the *caller* asserts the
    /// old observations no longer describe the structure.
    pub(crate) fn forget(&self, fingerprint: &PatternFingerprint) {
        self.structures.lock().remove(fingerprint);
        self.telemetry.forget(fingerprint);
    }

    /// Folds one profiled solve's summary into the structure's evidence
    /// ledger — the profiler's stall attribution (wait fraction, realized
    /// critical path) rides alongside the variant telemetry, queryable
    /// via [`crate::Engine::profile_evidence`]. Called by the engine
    /// right after a successful harvest, before the policy hook runs.
    pub(crate) fn observe_profile(&self, plan: &Arc<ExecutionPlan>, summary: ProfileSummary) {
        let mut structures = self.structures.lock();
        structures.entry(*plan.fingerprint()).or_default().profile = Some(summary);
    }

    /// The latest profile summary recorded for `fingerprint`, if any.
    pub(crate) fn profile_evidence(
        &self,
        fingerprint: &PatternFingerprint,
    ) -> Option<ProfileSummary> {
        self.structures
            .lock()
            .get(fingerprint)
            .and_then(|s| s.profile)
    }

    /// The post-execute hook (see module docs). `y` is the solved output
    /// — used only as value material for the baseline probe's scratch
    /// copy; the probe's timing is value-independent.
    pub(crate) fn after_solve<L: DoacrossLoop + ?Sized>(
        &self,
        inner: &EngineInner,
        loop_: &L,
        y: &[f64],
        plan: &Arc<ExecutionPlan>,
        stats: &RunStats,
    ) {
        let fingerprint = *plan.fingerprint();
        let kind = VariantKind::from(plan.variant());
        let statics = inner.planner.costs();
        let census = plan.census();

        // 1. Record the solve. Barrier crossings come straight from the
        // run's own count (the wavefront executor reports `levels − 1`;
        // every other variant reports 0).
        let split = pricing::breakdown(plan, statics);
        let barriers = stats.barrier_crossings;
        self.telemetry.record(
            &fingerprint,
            kind,
            SolveSample {
                ns: stats.total.as_nanos().min(u64::MAX as u128) as u64,
                wait_polls: stats.wait_polls,
                barriers,
                terms: census.total_terms,
                pred_units: split.pred_units,
                work_units: split.work_units,
            },
        );

        // 2. Let the policy look at the updated ledger. The structure map
        // is one engine-wide mutex: the common path holds it for a lookup
        // and a counter bump; the rare trial-start additionally holds it
        // across one plan build, which is the same order of work a cache
        // miss performs under its shard lock. The sequential baseline
        // probe — a full solve — is deliberately run with the lock
        // RELEASED, so a large structure's probe never stalls other
        // tenants' bookkeeping; the policy re-checks its state when the
        // lock is re-taken, so a racing evaluation degrades to a no-op.
        // Trace events decided under the structure lock are emitted after
        // it is released: a sink is user code, and one that re-enters the
        // engine (say, `invalidate` on a demotion) must not deadlock on
        // the lock we would still hold.
        let mut decision_event: Option<TraceEvent> = None;
        let wants_evaluation = {
            let mut structures = self.structures.lock();
            let structure = structures.entry(fingerprint).or_default();
            let Some(current_entry) = self.telemetry.get(&fingerprint, kind) else {
                return; // unreachable: just recorded
            };
            let incumbent_entry = structure
                .policy
                .trial()
                .and_then(|t| self.telemetry.get(&fingerprint, t.incumbent));
            let has_baseline = kind == VariantKind::Sequential
                || self
                    .telemetry
                    .get(&fingerprint, VariantKind::Sequential)
                    .is_some();

            match self.policy.on_solve(
                &mut structure.policy,
                kind,
                &current_entry,
                incumbent_entry.as_ref(),
                has_baseline,
            ) {
                Action::Keep => None,
                Action::Commit(trial) => {
                    structure.incumbent = None;
                    self.policy
                        .complete_trial(&mut structure.policy, trial, true);
                    self.promotions.fetch_add(1, Ordering::Relaxed);
                    if inner.obs.enabled() {
                        decision_event = Some(TraceEvent::TrialCommitted {
                            fp: plan.fingerprint().into(),
                            variant: kind.into(),
                        });
                    }
                    None
                }
                Action::Demote(trial) => {
                    if let Some(incumbent) = structure.incumbent.take() {
                        inner.cache.swap_plan(incumbent);
                    }
                    self.policy
                        .complete_trial(&mut structure.policy, trial, false);
                    self.demotions.fetch_add(1, Ordering::Relaxed);
                    if inner.obs.enabled() {
                        decision_event = Some(TraceEvent::TrialDemoted {
                            fp: plan.fingerprint().into(),
                            variant: kind.into(),
                        });
                    }
                    None
                }
                Action::Evaluate { probe_baseline } => Some(probe_baseline),
            }
        };
        if let Some(event) = decision_event {
            inner.obs.emit(event);
        }
        if let Some(probe_baseline) = wants_evaluation {
            if probe_baseline {
                self.probe_baseline(inner, loop_, y, plan);
            }
            let mut events = Vec::new();
            {
                let mut structures = self.structures.lock();
                let structure = structures.entry(fingerprint).or_default();
                self.evaluate(inner, loop_, plan, kind, structure, &mut events);
            }
            for event in events {
                inner.obs.emit(event);
            }
        }
    }

    /// Times one sequential pass of the structure on a scratch copy of
    /// `y` and records it as a `Sequential` observation — the anchor that
    /// lets refinement convert nanoseconds to model units honestly (the
    /// sequential loop performs zero synchronization). This is the
    /// paper's own `T_seq` measurement, taken live.
    fn probe_baseline<L: DoacrossLoop + ?Sized>(
        &self,
        inner: &EngineInner,
        loop_: &L,
        y: &[f64],
        plan: &Arc<ExecutionPlan>,
    ) {
        let census = plan.census();
        let mut scratch = y.to_vec();
        let start = Instant::now();
        run_sequential(loop_, &mut scratch);
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        std::hint::black_box(&scratch);
        let units = inner
            .planner
            .costs()
            .sequential_time(census.iterations, census.total_terms as usize);
        self.telemetry.record(
            plan.fingerprint(),
            VariantKind::Sequential,
            SolveSample {
                ns,
                wait_polls: 0,
                barriers: 0,
                terms: census.total_terms,
                pred_units: units,
                work_units: units,
            },
        );
        self.baseline_probes.fetch_add(1, Ordering::Relaxed);
        if inner.obs.enabled() {
            inner.obs.emit(TraceEvent::BaselineProbed {
                fp: plan.fingerprint().into(),
                ns,
            });
        }
    }

    /// Feeds the sequential telemetry sample from a fault-driven
    /// sequential fallback ([`crate::FallbackPolicy::SequentialRetry`]).
    /// The demoted parallel attempt produced no completed-solve sample,
    /// but the replay is a genuine sequential measurement — recording it
    /// anchors refinement exactly like a baseline probe, so a structure
    /// that keeps faulting re-prices toward the variant that actually
    /// delivers answers.
    pub(crate) fn record_fallback(&self, inner: &EngineInner, plan: &Arc<ExecutionPlan>, ns: u64) {
        let census = plan.census();
        let units = inner
            .planner
            .costs()
            .sequential_time(census.iterations, census.total_terms as usize);
        self.telemetry.record(
            plan.fingerprint(),
            VariantKind::Sequential,
            SolveSample {
                ns,
                wait_polls: 0,
                barriers: 0,
                terms: census.total_terms,
                pred_units: units,
                work_units: units,
            },
        );
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// One evaluation point: refine, re-price, and — if the policy
    /// proposes a challenger — build it with the refined model and swap
    /// it in as a trial. Runs under the structure lock; trace events go
    /// into `events` for the caller to emit after release.
    fn evaluate<L: DoacrossLoop + ?Sized>(
        &self,
        inner: &EngineInner,
        loop_: &L,
        plan: &Arc<ExecutionPlan>,
        kind: VariantKind,
        structure: &mut Structure,
        events: &mut Vec<TraceEvent>,
    ) {
        let statics = inner.planner.costs();
        self.repricings.fetch_add(1, Ordering::Relaxed);
        let refinement = refine(
            statics,
            &self.telemetry.entries(),
            plan.processors(),
            &RefinementConfig {
                confidence: self.policy.config().confidence,
                unit_ns_hint: self.unit_ns_hint,
            },
        );
        if !refinement.constants.has_evidence() {
            return;
        }
        let refined_model = refinement.model(statics);
        // Approximation note: for a previously-promoted plan the stored
        // candidate prices were computed under the refined model of that
        // evaluation, not `statics`; the inversion then recovers slightly
        // shifted stall sums. The measured commit/demote gate downstream
        // means a shifted proposal can waste a trial, never keep a wrong
        // plan.
        let refined_costs = pricing::reprice(plan, statics, &refined_model);
        let static_price = plan.costs().of(plan.variant()).unwrap_or(f64::INFINITY);
        let Some(refined_price) = pricing::price_of(&refined_costs, kind) else {
            return;
        };
        let proposal = self.policy.propose(
            &mut structure.policy,
            kind,
            static_price,
            refined_price,
            |k| pricing::price_of(&refined_costs, k),
        );
        let Some(_) = proposal else { return };
        // A proposal means the refined price disagreed with the static
        // one enough to consider acting: the divergence event, whether or
        // not a trial follows.
        if inner.obs.enabled() {
            events.push(TraceEvent::Divergence {
                fp: plan.fingerprint().into(),
                variant: kind.into(),
                static_price,
                refined_price,
            });
        }
        if !self.policy.may_trial(&structure.policy) {
            return;
        }
        // Failpoint: an injected trial fault behaves exactly like a
        // failed challenger build — the incumbent keeps running and the
        // trial is simply not started.
        if failpoint::enabled() {
            failpoint::maybe_delay(FAILPOINT_TRIAL);
            if failpoint::fire_saturate(FAILPOINT_TRIAL) {
                return;
            }
        }
        // Build the challenger with the refined model: same census path,
        // same validation, same artifacts as any cold plan build.
        let built = match Planner::with_costs(refined_model).plan_with_fingerprint(
            inner.pools.primary(),
            loop_,
            *plan.fingerprint(),
        ) {
            Ok(built) => built,
            Err(_) => return, // never trade a working plan for a failed build
        };
        let built_kind = VariantKind::from(built.variant());
        if built_kind == kind {
            return; // full replan agreed with the running variant: settled
        }
        if structure.policy.rejected().contains(&built_kind) {
            return; // the full replan landed on a measured loser
        }
        // Promotion gate: a challenger must prove its synchronization
        // schedule sound against the live pattern before it can replace a
        // working plan. Release builds skip the planner's debug_assert, so
        // this is the production-path check — an unsound challenger is
        // dropped (and the failure traced), never trialed.
        let verdict = built.verify_against(loop_);
        if inner.obs.enabled() {
            events.push(TraceEvent::PlanVerified {
                fp: built.fingerprint().into(),
                variant: built.variant().into(),
                sound: verdict.is_ok(),
            });
            // The verify ring holds the latest verdict per fingerprint —
            // a challenger's verification is as load-bearing as an
            // explicit `verify_plan` call, so it lands there too.
            inner
                .obs
                .record_verification(crate::engine::verify_record(&built, verdict.as_ref().ok()));
        }
        if verdict.is_err() {
            return;
        }
        if self
            .policy
            .begin_trial(&mut structure.policy, built_kind, kind)
        {
            structure.incumbent = Some(Arc::clone(plan));
            inner.cache.swap_plan(Arc::new(built));
            self.trials.fetch_add(1, Ordering::Relaxed);
            if inner.obs.enabled() {
                events.push(TraceEvent::TrialStarted {
                    fp: plan.fingerprint().into(),
                    challenger: built_kind.into(),
                    incumbent: kind.into(),
                });
            }
        }
    }
}

impl std::fmt::Debug for AdaptiveRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveRuntime")
            .field("stats", &self.stats())
            .field("telemetry", &self.telemetry)
            .finish()
    }
}
