//! Property-based link between static acceptance and dynamic truth: for
//! random index patterns, a schedule the verifier accepts executes
//! bit-identically to the sequential oracle on the real executors, and a
//! schedule it rejects is pinned to a dependence edge that actually exists
//! in the pattern — across all five Table 1 execution structures
//! (doacross flags, linear fast path, reordered claims, blocked
//! strip-mining, wavefront levels; sequential is the oracle itself).

use doacross_core::{
    seq::run_sequential, AccessPattern, BlockedDoacross, Doacross, IndirectLoop, LevelSchedule,
    LinearDoacross, LinearSubscript, PreparedInspection, WavefrontDoacross, MAXINT,
};
use doacross_par::{Schedule, ThreadPool};
use doacross_verify::{verify_pattern, DependenceEdge, SoundnessViolation, SyncSchedule};
use proptest::prelude::*;

/// Last-writer truth map: `writers[e]` = last iteration writing `e`, or
/// `MAXINT` when unwritten (the unique writer for injective patterns).
fn truth_writers<P: AccessPattern + ?Sized>(p: &P) -> Vec<i64> {
    let mut writers = vec![MAXINT; p.data_len()];
    for i in 0..p.iterations() {
        writers[p.lhs(i)] = i as i64;
    }
    writers
}

/// Honest level schedule derived from the truth map (injective patterns).
fn honest_wavefront<P: AccessPattern + ?Sized>(p: &P) -> LevelSchedule {
    let writers = truth_writers(p);
    let n = p.iterations();
    let mut levels = vec![0usize; n];
    let mut term_offsets = Vec::with_capacity(n + 1);
    let mut classes = Vec::new();
    term_offsets.push(0);
    let mut nlevels = 1;
    for i in 0..n {
        let mut lvl = 1;
        for j in 0..p.terms(i) {
            let e = p.term_element(i, j);
            let w = writers[e];
            classes.push(if w == MAXINT || w as usize > i {
                1 // OldValue
            } else if (w as usize) == i {
                2 // Accumulator
            } else {
                lvl = lvl.max(levels[w as usize] + 1);
                0 // NewValue
            });
        }
        levels[i] = lvl;
        nlevels = nlevels.max(lvl);
        term_offsets.push(classes.len());
    }
    LevelSchedule::from_levels(&levels, nlevels, term_offsets, classes)
}

/// Stable level-sorted claim order (the `doconsider` reordering).
fn level_order<P: AccessPattern + ?Sized>(p: &P) -> Vec<usize> {
    let writers = truth_writers(p);
    let n = p.iterations();
    let mut levels = vec![1usize; n];
    for i in 0..n {
        for j in 0..p.terms(i) {
            let w = writers[p.term_element(i, j)];
            if w != MAXINT && (w as usize) < i {
                levels[i] = levels[i].max(levels[w as usize] + 1);
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| levels[i]);
    order
}

fn oracle<P: AccessPattern + doacross_core::DoacrossLoop + ?Sized>(p: &P, y0: &[f64]) -> Vec<f64> {
    let mut y = y0.to_vec();
    run_sequential(p, &mut y);
    y
}

/// An arbitrary injective loop: lhs is a shuffled prefix of the data
/// space, rhs references are unconstrained, coefficients deterministic.
fn arb_injective(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (1..=max_n)
        .prop_flat_map(move |n| {
            let data_len = 2 * n + 1;
            let lhs = Just((0..data_len).collect::<Vec<usize>>())
                .prop_shuffle()
                .prop_map(move |perm| perm[..n].to_vec());
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..4), n..=n);
            let y0 = proptest::collection::vec(-2.0..2.0f64, data_len..=data_len);
            (lhs, rhs, y0)
        })
        .prop_map(|(lhs, rhs, y0)| (build_loop(y0.len(), lhs, rhs), y0))
}

/// An arbitrary possibly-duplicating loop (non-injective lhs allowed).
fn arb_any(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>)> {
    (2..=max_n)
        .prop_flat_map(move |n| {
            let data_len = n + 2;
            let lhs = proptest::collection::vec(0..data_len, n..=n);
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..3), n..=n);
            let y0 = proptest::collection::vec(-1.0..1.0f64, data_len..=data_len);
            (lhs, rhs, y0)
        })
        .prop_map(|(lhs, rhs, y0)| (build_loop(y0.len(), lhs, rhs), y0))
}

/// An arbitrary linear-subscript loop: `lhs(i) = c·i + d`.
fn arb_linear(max_n: usize) -> impl Strategy<Value = (IndirectLoop, Vec<f64>, usize, usize)> {
    (1..=max_n, 1..3usize, 0..3usize)
        .prop_flat_map(move |(n, c, d)| {
            let data_len = c * (n - 1) + d + 2;
            let lhs: Vec<usize> = (0..n).map(|i| c * i + d).collect();
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..3), n..=n);
            let y0 = proptest::collection::vec(-1.0..1.0f64, data_len..=data_len);
            (Just(lhs), rhs, y0, Just(c), Just(d))
        })
        .prop_map(|(lhs, rhs, y0, c, d)| (build_loop(y0.len(), lhs, rhs), y0, c, d))
}

fn build_loop(data_len: usize, lhs: Vec<usize>, rhs: Vec<Vec<usize>>) -> IndirectLoop {
    let coeff: Vec<Vec<f64>> = rhs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            r.iter()
                .enumerate()
                .map(|(j, _)| 0.25 + ((i + j) % 3) as f64 * 0.125)
                .collect()
        })
        .collect();
    IndirectLoop::new(data_len, lhs, rhs, coeff).expect("strategy generates valid loops")
}

/// Is `edge` a dependence that genuinely exists in the pattern?
fn edge_is_real<P: AccessPattern + ?Sized>(p: &P, edge: &DependenceEdge) -> bool {
    let reads = |i: usize, e: usize| (0..p.terms(i)).any(|j| p.term_element(i, j) == e);
    match *edge {
        DependenceEdge::Flow {
            element,
            writer,
            reader,
        } => writer < reader && p.lhs(writer) == element && reads(reader, element),
        DependenceEdge::Anti {
            element,
            reader,
            writer,
        } => reader < writer && p.lhs(writer) == element && reads(reader, element),
        DependenceEdge::Output {
            element,
            first,
            second,
        } => first < second && p.lhs(first) == element && p.lhs(second) == element,
        DependenceEdge::Intra { element, iteration } => {
            p.lhs(iteration) == element && reads(iteration, element)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// For injective patterns: the honest schedule of every variant is
    /// accepted, and the matching real executor reproduces the oracle.
    #[test]
    fn accepted_schedules_execute_like_the_oracle((loop_, y0) in arb_injective(24),
                                                  block_size in 1..8usize) {
        let pool = ThreadPool::new(3);
        let expect = oracle(&loop_, &y0);
        let data_len = loop_.data_len();
        let n = loop_.iterations();

        // Doacross (natural flag claims): inspector artifact.
        let prepared = PreparedInspection::inspect(&pool, Schedule::default(), &loop_, true)
            .expect("injective pattern inspects cleanly");
        verify_pattern(&loop_, &SyncSchedule::FlagsNatural { writers: &prepared })
            .expect("honest natural schedule is sound");
        let mut y = y0.clone();
        Doacross::new(data_len).run_planned(&pool, &loop_, &mut y, &prepared, None)
            .expect("planned run");
        prop_assert_eq!(&y, &expect, "doacross");

        // Reordered (level-sorted claim order).
        let order = level_order(&loop_);
        verify_pattern(&loop_, &SyncSchedule::FlagsOrdered { writers: &prepared, order: &order })
            .expect("topological order is sound");
        let mut y = y0.clone();
        Doacross::new(data_len).run_planned(&pool, &loop_, &mut y, &prepared, Some(&order))
            .expect("reordered run");
        prop_assert_eq!(&y, &expect, "reordered");

        // Wavefront (level schedule).
        let schedule = honest_wavefront(&loop_);
        verify_pattern(&loop_, &SyncSchedule::Wavefront { schedule: &schedule })
            .expect("honest level schedule is sound");
        let mut y = y0.clone();
        WavefrontDoacross::new(data_len).run(&pool, &loop_, &mut y, &schedule)
            .expect("wavefront run");
        prop_assert_eq!(&y, &expect, "wavefront");

        // Blocked: any block size is sound for an injective pattern.
        let bs = block_size.min(n);
        verify_pattern(&loop_, &SyncSchedule::Blocked { block_size: bs })
            .expect("injective patterns never share a block between duplicate writes");
        let mut y = y0.clone();
        BlockedDoacross::new(bs).expect("valid block size")
            .run(&pool, &loop_, &mut y)
            .expect("blocked run");
        prop_assert_eq!(&y, &expect, "blocked");

        // Sequential is the oracle by definition.
        verify_pattern(&loop_, &SyncSchedule::Sequential).expect("always sound");
    }

    /// Linear-subscript patterns: the true `(c, d)` is accepted and the
    /// inspector-free executor matches the oracle; a wrong subscript is
    /// rejected with a mismatch naming a real iteration.
    #[test]
    fn linear_subscripts_accept_truth_and_reject_lies((loop_, y0, c, d) in arb_linear(24)) {
        let pool = ThreadPool::new(3);
        let expect = oracle(&loop_, &y0);
        let subscript = LinearSubscript::new(c, d);
        verify_pattern(&loop_, &SyncSchedule::FlagsLinear { subscript })
            .expect("the true subscript is sound");
        let mut y = y0.clone();
        LinearDoacross::new(loop_.data_len()).run(&pool, &loop_, subscript, &mut y)
            .expect("linear run");
        prop_assert_eq!(&y, &expect, "linear");

        // Lie about the stride: rejected, pinned to a real iteration
        // (unless the loop is too short to witness the difference).
        let wrong = LinearSubscript::new(c + 1, d);
        if loop_.iterations() > 1 {
            let violation = verify_pattern(&loop_, &SyncSchedule::FlagsLinear { subscript: wrong })
                .expect_err("a wrong stride must be rejected");
            prop_assert!(
                matches!(&violation,
                    SoundnessViolation::SubscriptMismatch { iteration, .. }
                        if *iteration < loop_.iterations())
                    || matches!(&violation, SoundnessViolation::OutOfBounds { .. }),
                "unexpected violation: {violation}"
            );
        }
    }

    /// Non-injective patterns: flag-based schedules are rejected with a
    /// real output dependence; blocked schedules are accepted exactly when
    /// no duplicate pair shares a block — and then execute like the
    /// oracle.
    #[test]
    fn duplicate_writers_split_blocked_from_flagged((loop_, y0) in arb_any(20)) {
        let pool = ThreadPool::new(3);
        let n = loop_.iterations();
        // Closest pair of same-element writers (by iteration distance).
        let mut min_gap = usize::MAX;
        let mut pair = (0usize, 0usize);
        let mut last = vec![usize::MAX; loop_.data_len()];
        for i in 0..n {
            let e = loop_.lhs(i);
            if last[e] != usize::MAX && i - last[e] < min_gap {
                min_gap = i - last[e];
                pair = (last[e], i);
            }
            last[e] = i;
        }
        if min_gap == usize::MAX {
            // Injective after all: covered by the other property.
            return Ok(());
        }

        let writers = truth_writers(&loop_);
        let prepared = PreparedInspection::from_writer_map(n, &writers)
            .expect("truth map is well-formed");
        let violation = verify_pattern(&loop_, &SyncSchedule::FlagsNatural { writers: &prepared })
            .expect_err("duplicate writers cannot share one flag generation");
        if let SoundnessViolation::UncoveredOutput { edge } = &violation {
            prop_assert!(edge_is_real(&loop_, edge), "fabricated edge: {edge}");
        }

        // A block size at or under the gap keeps duplicates apart.
        let bs = min_gap.min(n);
        verify_pattern(&loop_, &SyncSchedule::Blocked { block_size: bs })
            .expect("blocks no larger than the write gap are sound");
        let expect = oracle(&loop_, &y0);
        let mut y = y0.clone();
        BlockedDoacross::new(bs).expect("valid block size")
            .run(&pool, &loop_, &mut y)
            .expect("blocked run");
        prop_assert_eq!(&y, &expect, "blocked with duplicates");

        // Block boundaries are aligned, so `min_gap + 1` need not merge
        // the pair — but a first block reaching past it must (block 0
        // holds every iteration up to and including the later write).
        let violation = verify_pattern(&loop_, &SyncSchedule::Blocked { block_size: pair.1 + 1 })
            .expect_err("a block spanning a duplicate pair is unsound");
        match &violation {
            SoundnessViolation::DuplicateWriteInBlock { edge, .. } => {
                prop_assert!(edge_is_real(&loop_, edge), "fabricated edge: {edge}");
            }
            other => prop_assert!(false, "unexpected violation: {other}"),
        }
    }

    /// Random writer-map corruption: when the verifier accepts the mutant
    /// the executor still matches the oracle (the corruption was benign —
    /// it touched no classified reference); when it rejects, the violation
    /// names a dependence that genuinely exists.
    #[test]
    fn writer_map_corruption_is_benign_iff_accepted((loop_, y0) in arb_injective(20),
                                                    slot in 0..64usize,
                                                    coin in 0..2usize) {
        let to_maxint = coin == 0;
        let pool = ThreadPool::new(3);
        let n = loop_.iterations();
        let mut writers = truth_writers(&loop_);
        let slot = slot % writers.len();
        let mutated = if to_maxint {
            writers[slot] != MAXINT && { writers[slot] = MAXINT; true }
        } else {
            // Remap to a different (possibly bogus) iteration.
            let new = (slot % n) as i64;
            writers[slot] != new && { writers[slot] = new; true }
        };
        prop_assume!(mutated);
        let prepared = PreparedInspection::from_writer_map(n, &writers)
            .expect("entries stay in range");
        match verify_pattern(&loop_, &SyncSchedule::FlagsNatural { writers: &prepared }) {
            Ok(_) => {
                // Accepted ⇒ behaviorally identical: run it for real.
                let expect = oracle(&loop_, &y0);
                let mut y = y0.clone();
                Doacross::new(loop_.data_len())
                    .run_planned(&pool, &loop_, &mut y, &prepared, None)
                    .expect("accepted mutant executes");
                prop_assert_eq!(&y, &expect, "accepted mutant must match the oracle");
            }
            Err(violation) => {
                // The corruption touched exactly one map entry, so the
                // violation must be pinned to that element (the edge mixes
                // claimed-writer and true-pattern facts, so it need not
                // exist verbatim in the pattern — but its element must be
                // the corrupted one).
                let element = match &violation {
                    SoundnessViolation::UncoveredFlow { edge }
                    | SoundnessViolation::UncoveredAnti { edge }
                    | SoundnessViolation::UncoveredOutput { edge }
                    | SoundnessViolation::UncoveredIntra { edge } => Some(match *edge {
                        DependenceEdge::Flow { element, .. }
                        | DependenceEdge::Anti { element, .. }
                        | DependenceEdge::Output { element, .. }
                        | DependenceEdge::Intra { element, .. } => element,
                    }),
                    SoundnessViolation::PhantomWait { element, .. } => Some(*element),
                    _ => None,
                };
                if let Some(element) = element {
                    prop_assert_eq!(element, slot, "violation strayed from the corrupted slot: {}", violation);
                }
            }
        }
    }
}
