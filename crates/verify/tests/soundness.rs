//! The mutation-kill battery: every seeded schedule corruption class must
//! be caught with a structured violation naming the uncovered dependence
//! edge, and every honest schedule must verify sound.

use doacross_core::{
    AccessPattern, IndirectLoop, LevelSchedule, LinearSubscript, PreparedInspection, MAXINT,
};
use doacross_verify::{
    verify_artifacts, verify_pattern, CensusFacts, DependenceEdge, SoundnessViolation, SyncSchedule,
};

// ---------------------------------------------------------------------------
// Fixtures and honest-schedule derivation (independent of the plan layer).
// ---------------------------------------------------------------------------

/// Last-writer map exactly as the inspector fills it.
fn truth_writers<P: AccessPattern + ?Sized>(p: &P) -> Vec<i64> {
    let mut w = vec![MAXINT; p.data_len()];
    for i in 0..p.iterations() {
        w[p.lhs(i)] = i as i64;
    }
    w
}

fn prepared<P: AccessPattern + ?Sized>(p: &P) -> PreparedInspection {
    PreparedInspection::from_writer_map(p.iterations(), &truth_writers(p)).expect("valid map")
}

/// Honest wavefront artifacts: 1-based levels, per-reference operand
/// classes in term order (for injective patterns).
fn honest_wavefront<P: AccessPattern + ?Sized>(p: &P) -> LevelSchedule {
    let writers = truth_writers(p);
    let n = p.iterations();
    let mut levels = vec![0usize; n];
    let mut term_offsets = Vec::with_capacity(n + 1);
    let mut classes = Vec::new();
    term_offsets.push(0);
    let mut nlevels = 1;
    for i in 0..n {
        let mut lvl = 1;
        for j in 0..p.terms(i) {
            let e = p.term_element(i, j);
            let w = writers[e];
            classes.push(if w == MAXINT || w as usize > i {
                1 // OldValue
            } else if (w as usize) == i {
                2 // Accumulator
            } else {
                lvl = lvl.max(levels[w as usize] + 1);
                0 // NewValue
            });
        }
        levels[i] = lvl;
        nlevels = nlevels.max(lvl);
        term_offsets.push(classes.len());
    }
    LevelSchedule::from_levels(&levels, nlevels, term_offsets, classes)
}

/// Rebuilds a wavefront schedule with one mutation applied to the level
/// assignment or the class stream.
fn mutate_wavefront(
    p: &impl AccessPattern,
    mutate_levels: impl Fn(&mut Vec<usize>),
    mutate_classes: impl Fn(&mut Vec<u8>),
) -> LevelSchedule {
    let honest = honest_wavefront(p);
    let n = p.iterations();
    let mut levels = vec![0usize; n];
    for l in 0..honest.level_count() {
        for &i in honest.level_iterations(l) {
            levels[i] = l + 1;
        }
    }
    let mut classes = honest.classes().to_vec();
    mutate_levels(&mut levels);
    mutate_classes(&mut classes);
    let nlevels = levels.iter().copied().max().unwrap_or(1);
    LevelSchedule::from_levels(&levels, nlevels, honest.term_offsets().to_vec(), classes)
}

/// A chain: iteration `i` writes `y[i]` and reads `y[i-1]` — one flow edge
/// per adjacent pair.
fn chain(n: usize) -> IndirectLoop {
    let a: Vec<usize> = (0..n).collect();
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
        .collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
    IndirectLoop::new(n, a, rhs, coeff).expect("valid chain")
}

/// One of everything: flow, anti, intra, and unwritten references over an
/// injective left-hand side (6 iterations, data space 8, elements 6 and 7
/// never written).
fn mixed() -> IndirectLoop {
    let a: Vec<usize> = (0..6).collect();
    let rhs: Vec<Vec<usize>> = vec![
        vec![],
        vec![0],          // flow: 0 -> 1 on y[0]
        vec![2],          // intra
        vec![4],          // anti: writer 4 > reader 3
        vec![6],          // unwritten
        vec![0, 4, 5, 7], // flow, flow, intra, unwritten
    ];
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.25; r.len()]).collect();
    IndirectLoop::new(8, a, rhs, coeff).expect("valid mixed")
}

/// Non-injective: iterations 0 and 2 both write `y[0]` (gap 2).
fn duplicate_writes() -> IndirectLoop {
    IndirectLoop::new(
        3,
        vec![0, 1, 0, 2],
        vec![vec![], vec![0], vec![1], vec![0]],
        vec![vec![], vec![1.0], vec![1.0], vec![1.0]],
    )
    .expect("valid duplicate-write loop")
}

// ---------------------------------------------------------------------------
// Honest schedules verify sound.
// ---------------------------------------------------------------------------

#[test]
fn honest_doacross_is_sound() {
    let l = mixed();
    let w = prepared(&l);
    let report = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).expect("sound");
    assert_eq!(report.references, 8);
    assert_eq!(report.flow_edges, 3);
    assert_eq!(report.anti_edges, 1);
    assert_eq!(report.intra_refs, 2);
    assert_eq!(report.unwritten_refs, 2);
}

#[test]
fn honest_ordered_and_wavefront_are_sound() {
    let l = mixed();
    let w = prepared(&l);
    // Any topological order works; this one interleaves independent
    // iterations ahead of dependent ones.
    let order = vec![4, 2, 0, 3, 1, 5];
    verify_pattern(
        &l,
        &SyncSchedule::FlagsOrdered {
            writers: &w,
            order: &order,
        },
    )
    .expect("topological order is sound");
    let ls = honest_wavefront(&l);
    verify_pattern(&l, &SyncSchedule::Wavefront { schedule: &ls }).expect("honest levels sound");
}

#[test]
fn deepened_but_consistent_levels_stay_sound() {
    // Exact minimality is not a soundness requirement: pushing an
    // iteration to a deeper level only adds synchronization.
    let l = chain(4);
    let ls = mutate_wavefront(&l, |levels| levels[3] = 7, |_| {});
    verify_pattern(&l, &SyncSchedule::Wavefront { schedule: &ls }).expect("deeper is still sound");
}

#[test]
fn honest_linear_is_sound() {
    let n = 5;
    let a: Vec<usize> = (0..n).map(|i| 2 * i + 1).collect();
    let rhs: Vec<Vec<usize>> = (0..n)
        .map(|i| if i == 0 { vec![] } else { vec![2 * i - 1] })
        .collect();
    let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![1.0; r.len()]).collect();
    let l = IndirectLoop::new(2 * n, a, rhs, coeff).unwrap();
    let subscript = LinearSubscript::new(2, 1);
    verify_pattern(&l, &SyncSchedule::FlagsLinear { subscript }).expect("linear sound");
}

#[test]
fn sequential_and_blocked_tolerate_duplicate_writes() {
    let l = duplicate_writes();
    verify_pattern(&l, &SyncSchedule::Sequential).expect("sequential always sound");
    let report = verify_pattern(&l, &SyncSchedule::Blocked { block_size: 2 })
        .expect("blocks separate the duplicate writes");
    assert_eq!(report.output_pairs, 1);
}

// ---------------------------------------------------------------------------
// Mutation kills. Each corruption class must produce the exact structured
// violation, naming the uncovered dependence edge.
// ---------------------------------------------------------------------------

/// Mutation 1 — dropped flag: the writer map forgets that iteration 0
/// produces y[0], so reader 1 would consume a stale value.
#[test]
fn kills_dropped_flag() {
    let l = chain(4);
    let mut writers = truth_writers(&l);
    writers[0] = MAXINT;
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredFlow {
            edge: DependenceEdge::Flow {
                element: 0,
                writer: 0,
                reader: 1
            }
        }
    );
}

/// Mutation 2 — flow misrouted to the accumulator: the map claims the
/// reader itself writes the element it actually receives from iteration 0.
#[test]
fn kills_flow_redirected_to_self() {
    let l = chain(4);
    let mut writers = truth_writers(&l);
    writers[0] = 1; // reader 1's reference to y[0] now classifies as intra
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredFlow {
            edge: DependenceEdge::Flow {
                element: 0,
                writer: 0,
                reader: 1
            }
        }
    );
}

/// Mutation 3 — inverted antidependence: y[4] is written by iteration 4,
/// read (old value) by iteration 3; the corrupt map claims an earlier
/// writer, making reader 3 wait for — and consume — the overwritten value.
#[test]
fn kills_inverted_antidependence() {
    let l = mixed();
    let mut writers = truth_writers(&l);
    writers[4] = 1;
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredAnti {
            edge: DependenceEdge::Anti {
                element: 4,
                reader: 3,
                writer: 4
            }
        }
    );
}

/// Mutation 4 — phantom wait: the map claims y[6] (which no iteration
/// writes) is produced by iteration 0, so reader 4 waits on a flag that
/// can never fire.
#[test]
fn kills_phantom_wait() {
    let l = mixed();
    let mut writers = truth_writers(&l);
    writers[6] = 0;
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::PhantomWait {
            element: 6,
            reader: 4
        }
    );
}

/// Mutation 5 — intra-iteration reference misrouted: y[2] is iteration 2's
/// own output, but the map forgets the write, so the executor reads the
/// old array instead of the accumulator.
#[test]
fn kills_misrouted_intra() {
    let l = mixed();
    let mut writers = truth_writers(&l);
    writers[2] = MAXINT;
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredIntra {
            edge: DependenceEdge::Intra {
                element: 2,
                iteration: 2
            }
        }
    );
}

/// Mutation 6 — duplicate writes under flat flags: per-element ready flags
/// fire once, so a non-injective left-hand side is inexpressible.
#[test]
fn kills_duplicate_writes_under_flat_flags() {
    let l = duplicate_writes();
    let writers = truth_writers(&l);
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err = verify_pattern(&l, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredOutput {
            edge: DependenceEdge::Output {
                element: 0,
                first: 0,
                second: 2
            }
        }
    );
}

/// Mutation 7 — claim-order inversion: reversing the doconsider order puts
/// every reader ahead of its writer; the executor would livelock.
#[test]
fn kills_claim_order_inversion() {
    let l = chain(4);
    let w = prepared(&l);
    let order = vec![3, 2, 1, 0];
    let err = verify_pattern(
        &l,
        &SyncSchedule::FlagsOrdered {
            writers: &w,
            order: &order,
        },
    )
    .unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::ClaimOrderInversion {
            edge: DependenceEdge::Flow {
                element: 0,
                writer: 0,
                reader: 1
            },
            writer_position: 3,
            reader_position: 2,
        }
    );
}

/// Mutation 8 — order with a repeated entry is not a permutation.
#[test]
fn kills_non_permutation_order() {
    let l = chain(4);
    let w = prepared(&l);
    let order = vec![0, 1, 1, 3];
    let err = verify_pattern(
        &l,
        &SyncSchedule::FlagsOrdered {
            writers: &w,
            order: &order,
        },
    )
    .unwrap_err();
    assert_eq!(err, SoundnessViolation::OrderNotPermutation { entry: 1 });
}

/// Mutation 9 — wrong linear subscript: the declared line `a(i) = 2i`
/// disagrees with the pattern's actual `a(i) = 2i + 1`, so the arithmetic
/// oracle answers for the wrong element.
#[test]
fn kills_subscript_mismatch() {
    let n = 4;
    let a: Vec<usize> = (0..n).map(|i| 2 * i + 1).collect();
    let l = IndirectLoop::new(2 * n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
    let subscript = LinearSubscript::new(2, 0);
    let err = verify_pattern(&l, &SyncSchedule::FlagsLinear { subscript }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::SubscriptMismatch {
            iteration: 0,
            expected: 0,
            got: 1
        }
    );
}

/// Mutation 10 — reordered level: swapping the chain's first two levels
/// schedules the writer at (not before) its reader's level, so no barrier
/// separates the flow edge.
#[test]
fn kills_level_reorder() {
    let l = chain(4);
    let ls = mutate_wavefront(
        &l,
        |levels| {
            levels.swap(0, 1); // writer 0 now at level 2, reader 1 at level 1
        },
        |_| {},
    );
    let err = verify_pattern(&l, &SyncSchedule::Wavefront { schedule: &ls }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::LevelOrderViolation {
            edge: DependenceEdge::Flow {
                element: 0,
                writer: 0,
                reader: 1
            },
            writer_level: 2,
            reader_level: 1,
        }
    );
}

/// Mutation 11 — same-level flow edge: flattening the chain into one level
/// (a "doall" claim) leaves every flow edge unseparated.
#[test]
fn kills_flattened_levels() {
    let l = chain(3);
    let ls = mutate_wavefront(&l, |levels| levels.iter_mut().for_each(|l| *l = 1), |_| {});
    let err = verify_pattern(&l, &SyncSchedule::Wavefront { schedule: &ls }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::LevelOrderViolation {
            edge: DependenceEdge::Flow {
                element: 0,
                writer: 0,
                reader: 1
            },
            writer_level: 1,
            reader_level: 1,
        }
    );
}

/// Mutation 12 — flow class byte flipped to old-value: the wavefront
/// executor would read the stale original array instead of the shadow.
#[test]
fn kills_flipped_flow_class() {
    let l = chain(3);
    // Reference 0 of iteration 1 is the chain's first flow edge.
    let ls = mutate_wavefront(&l, |_| {}, |classes| classes[0] = 1);
    let err = verify_pattern(&l, &SyncSchedule::Wavefront { schedule: &ls }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredFlow {
            edge: DependenceEdge::Flow {
                element: 0,
                writer: 0,
                reader: 1
            }
        }
    );
}

/// Mutation 13 — anti class byte flipped to new-value: reader 3 would pull
/// iteration 4's overwrite out of the shadow array.
#[test]
fn kills_flipped_anti_class() {
    let l = mixed();
    let honest = honest_wavefront(&l);
    // Iteration 3's single reference (to y[4]) is an antidependence.
    let anti_pos = honest.term_offsets()[3];
    let ls = mutate_wavefront(&l, |_| {}, |classes| classes[anti_pos] = 0);
    let err = verify_pattern(&l, &SyncSchedule::Wavefront { schedule: &ls }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::UncoveredAnti {
            edge: DependenceEdge::Anti {
                element: 4,
                reader: 3,
                writer: 4
            }
        }
    );
}

/// Mutation 14 — off-by-one block boundary: growing the block size from 2
/// to 3 pulls both writes to y[0] (iterations 0 and 2) into block 0, which
/// the flat per-block flags cannot order.
#[test]
fn kills_block_boundary_off_by_one() {
    let l = duplicate_writes();
    let err = verify_pattern(&l, &SyncSchedule::Blocked { block_size: 3 }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::DuplicateWriteInBlock {
            edge: DependenceEdge::Output {
                element: 0,
                first: 0,
                second: 2
            },
            block: 0,
            block_size: 3,
        }
    );
}

/// Out-of-bounds subscripts are rejected before any coverage reasoning —
/// needs a raw pattern because `IndirectLoop::new` validates bounds.
#[test]
fn rejects_out_of_bounds_subscript() {
    struct Raw;
    impl AccessPattern for Raw {
        fn iterations(&self) -> usize {
            2
        }
        fn data_len(&self) -> usize {
            2
        }
        fn lhs(&self, i: usize) -> usize {
            if i == 1 {
                9
            } else {
                0
            }
        }
        fn terms(&self, _: usize) -> usize {
            0
        }
        fn term_element(&self, _: usize, _: usize) -> usize {
            unreachable!()
        }
    }
    let err = verify_pattern(&Raw, &SyncSchedule::Sequential).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::OutOfBounds {
            iteration: 1,
            element: 9,
            data_len: 2
        }
    );
}

// ---------------------------------------------------------------------------
// Artifact mode (the pattern-free persist-load checks).
// ---------------------------------------------------------------------------

fn mixed_facts() -> CensusFacts {
    CensusFacts {
        iterations: 6,
        data_len: 8,
        total_terms: 8,
        true_deps: 3,
        anti_deps: 1,
        intra: 2,
        unwritten: 2,
        injective: true,
        min_duplicate_write_gap: None,
    }
}

#[test]
fn artifact_mode_accepts_honest_schedules() {
    let l = mixed();
    let w = prepared(&l);
    let facts = mixed_facts();
    verify_artifacts(&facts, &SyncSchedule::FlagsNatural { writers: &w }).expect("sound");
    let ls = honest_wavefront(&l);
    verify_artifacts(&facts, &SyncSchedule::Wavefront { schedule: &ls }).expect("sound");
}

/// Mutation 15 — block size exceeding the census's duplicate-write gap:
/// provable unsound without the index arrays.
#[test]
fn artifact_mode_kills_block_exceeding_write_gap() {
    let facts = CensusFacts {
        iterations: 4,
        data_len: 3,
        total_terms: 3,
        injective: false,
        min_duplicate_write_gap: Some(2),
        ..Default::default()
    };
    verify_artifacts(&facts, &SyncSchedule::Blocked { block_size: 2 }).expect("gap respected");
    let err = verify_artifacts(&facts, &SyncSchedule::Blocked { block_size: 3 }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::BlockExceedsWriteGap {
            block_size: 3,
            min_gap: 2
        }
    );
}

/// Mutation 16 — a flag variant shipped with a non-injective census.
#[test]
fn artifact_mode_kills_flags_on_non_injective_census() {
    let l = mixed();
    let w = prepared(&l);
    let facts = CensusFacts {
        injective: false,
        min_duplicate_write_gap: Some(1),
        ..mixed_facts()
    };
    let err = verify_artifacts(&facts, &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::RequiresInjective {
            variant: "doacross"
        }
    );
}

/// Mutation 17 — writer map missing an entry: an injective pattern's map
/// is a bijection, so 5 entries for 6 iterations is corruption.
#[test]
fn artifact_mode_kills_non_bijective_writer_map() {
    let l = mixed();
    let mut writers = truth_writers(&l);
    writers[3] = MAXINT;
    let w = PreparedInspection::from_writer_map(l.iterations(), &writers).unwrap();
    let err =
        verify_artifacts(&mixed_facts(), &SyncSchedule::FlagsNatural { writers: &w }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::ArtifactMismatch {
            what: "writer map entries",
            expected: 6,
            got: 5
        }
    );
}

/// Mutation 18 — wavefront class counts disagreeing with the census.
#[test]
fn artifact_mode_kills_class_count_mismatch() {
    let l = mixed();
    let ls = honest_wavefront(&l);
    let facts = CensusFacts {
        true_deps: 4,
        anti_deps: 0,
        ..mixed_facts()
    };
    let err = verify_artifacts(&facts, &SyncSchedule::Wavefront { schedule: &ls }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::ArtifactMismatch {
            what: "new-value class count",
            expected: 4,
            got: 3
        }
    );
}

/// Mutation 19 — linear subscript running off the data space.
#[test]
fn artifact_mode_kills_linear_out_of_bounds() {
    let facts = CensusFacts {
        iterations: 10,
        data_len: 15,
        total_terms: 10,
        unwritten: 10,
        injective: true,
        ..Default::default()
    };
    let subscript = LinearSubscript::new(2, 0);
    let err = verify_artifacts(&facts, &SyncSchedule::FlagsLinear { subscript }).unwrap_err();
    assert_eq!(
        err,
        SoundnessViolation::OutOfBounds {
            iteration: 9,
            element: 18,
            data_len: 15
        }
    );
}

/// Every violation renders a human-readable description naming the edge.
#[test]
fn violations_display_their_edges() {
    let v = SoundnessViolation::UncoveredFlow {
        edge: DependenceEdge::Flow {
            element: 7,
            writer: 2,
            reader: 5,
        },
    };
    let text = v.to_string();
    assert!(text.contains("y[7]"), "{text}");
    assert!(text.contains("writer 2"), "{text}");
    assert!(text.contains("reader 5"), "{text}");
}
