//! # doacross-verify — static plan-soundness verification
//!
//! The paper's premise is that preprocessing extracts a dependence
//! structure making the parallel execution *provably* equivalent to the
//! sequential loop. This crate supplies the proof checker: given a
//! pattern's index arrays and a plan's synchronization schedule, it
//! re-derives every flow, anti, output, and intra-iteration dependence and
//! statically shows the schedule covers each one — or reports the first
//! uncovered [`DependenceEdge`] as a structured [`SoundnessViolation`].
//!
//! It is *translation validation*, not trusted-builder reasoning: the
//! verifier shares no code with the planner's census/schedule construction
//! (it re-derives the writer map itself from the `AccessPattern`), so a
//! bug, a corrupted persisted store, or a bad adaptive promotion each get
//! caught by an independent check.
//!
//! ## Dependence-coverage rules per variant
//!
//! The executor resolves each right-hand-side reference `y[e]` in
//! iteration `i` by comparing the schedule's claimed writer `w(e)` against
//! `i` (paper Figure 5): `w < i` → wait on `ready[e]`, read the new value;
//! `w == i` → read the iteration's own accumulator; `w > i` or unwritten →
//! read the old value. Flags are indexed by *element*, so a schedule is
//! sound exactly when every reference's claimed three-way outcome matches
//! the outcome the true last-writer map implies, plus each variant's
//! ordering obligation:
//!
//! | Variant (`SyncSchedule`) | Flow (true) deps | Anti deps | Output deps | Ordering obligation |
//! |---|---|---|---|---|
//! | `Sequential` | program order | program order | program order | — |
//! | `FlagsNatural` (doacross) | per-element flag: claimed class must be *new value* | claimed class must be *old value* | inexpressible — lhs must be injective | natural claim order covers `w < i` by construction |
//! | `FlagsLinear` (linear) | as doacross, writer derived from `a(i) = c·i + d` | as doacross | lhs injective (`c ≥ 1` ⇒ automatic) | `lhs(i) ≡ c·i + d` must hold exactly |
//! | `FlagsOrdered` (reordered) | as doacross | as doacross | lhs must be injective | claim order must be a permutation *and* topological: `pos[w] < pos[i]` for every flow edge, else livelock |
//! | `Blocked` | cross-block: sequential block order + copy-back; in-block: the per-block inspector re-derives them | same | tolerated *across* blocks only — two writes must never share a block | `block_size ≥ 1` |
//! | `Wavefront` | level barrier: `level(w) < level(i)` strictly, and the stored operand class must be *new value* | class must be *old value* | inexpressible — lhs must be injective | per-iteration class stream must match the pattern's reference count |
//!
//! A reference to an element no iteration writes must be classified *old
//! value* everywhere; claiming it *new* is a [`SoundnessViolation::PhantomWait`]
//! (the flag can never fire — guaranteed deadlock).
//!
//! ## Two modes
//!
//! * [`verify_pattern`] — the full check, used when the index arrays are
//!   in hand: plan build (`debug_assert!`-gated), adaptive promotion
//!   (a trial plan must verify before it is swapped in), and
//!   `Engine::verify_plan()`.
//! * [`verify_artifacts`] — the pattern-free check persisted-plan loading
//!   runs: writer-map bijectivity, claim-order permutation, block size vs
//!   the census's minimum duplicate-write gap, wavefront class counts vs
//!   the census — everything provable from the artifacts alone.
//!
//! The crate deliberately depends only on `doacross-core`:
//! `doacross-plan` sits *above* it and projects `ExecutionPlan` into
//! [`SyncSchedule`] on its side, the same layering `doacross-obs` uses.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod schedule;
mod verifier;
mod violation;

pub use schedule::{CensusFacts, SyncSchedule};
pub use verifier::{verify_artifacts, verify_pattern};
pub use violation::{DependenceEdge, SoundnessReport, SoundnessViolation};
