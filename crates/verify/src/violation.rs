//! The verifier's structured verdicts: dependence edges, violations, and
//! the soundness report a passing plan earns.

/// One dependence edge implied by a pattern's index arrays — the unit of
/// coverage the verifier reasons about. Every violation that stems from an
/// uncovered dependence names its edge with one of these, so a failing
/// verdict is actionable: it points at the exact pair of iterations whose
/// ordering the schedule fails to enforce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependenceEdge {
    /// Flow (true) dependence: `writer` produces `element` before `reader`
    /// consumes it. The schedule must make `reader` observe the new value.
    Flow {
        /// The shared element.
        element: usize,
        /// The iteration that writes it.
        writer: usize,
        /// The later iteration that reads it.
        reader: usize,
    },
    /// Antidependence: `reader` consumes the *old* value of `element`,
    /// which `writer` (a later iteration) overwrites. The schedule must
    /// make `reader` observe the old value.
    Anti {
        /// The shared element.
        element: usize,
        /// The earlier iteration that must read the old value.
        reader: usize,
        /// The later iteration that overwrites it.
        writer: usize,
    },
    /// Output dependence: two iterations write the same element; the later
    /// write must win.
    Output {
        /// The shared element.
        element: usize,
        /// The earlier writer.
        first: usize,
        /// The later writer, whose value must win.
        second: usize,
    },
    /// Intra-iteration reference: `iteration` reads its own output
    /// element, which the executor services from the register accumulator.
    Intra {
        /// The element the iteration both writes and reads.
        element: usize,
        /// The iteration.
        iteration: usize,
    },
}

impl std::fmt::Display for DependenceEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DependenceEdge::Flow {
                element,
                writer,
                reader,
            } => write!(
                f,
                "flow dep on y[{element}]: writer {writer} -> reader {reader}"
            ),
            DependenceEdge::Anti {
                element,
                reader,
                writer,
            } => write!(
                f,
                "anti dep on y[{element}]: reader {reader} -> writer {writer}"
            ),
            DependenceEdge::Output {
                element,
                first,
                second,
            } => write!(
                f,
                "output dep on y[{element}]: writers {first} and {second}"
            ),
            DependenceEdge::Intra { element, iteration } => {
                write!(
                    f,
                    "intra-iteration ref to y[{element}] in iteration {iteration}"
                )
            }
        }
    }
}

/// The first reason a synchronization schedule fails to cover the
/// dependences its pattern implies. Each variant names the exact edge (or
/// artifact inconsistency) so callers can log, reject, and debug without
/// re-deriving anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoundnessViolation {
    /// The schedule describes a different shape (iteration count, data
    /// space, reference count) than the pattern or census it is checked
    /// against.
    ShapeMismatch {
        /// Which dimension disagrees.
        what: &'static str,
        /// The pattern/census side of the disagreement.
        expected: usize,
        /// The schedule side.
        got: usize,
    },
    /// A subscript lands outside the declared data space; no schedule can
    /// cover a dependence on memory the loop does not own.
    OutOfBounds {
        /// The iteration holding the offending subscript.
        iteration: usize,
        /// The out-of-range element.
        element: usize,
        /// The declared data-space size.
        data_len: usize,
    },
    /// A flow dependence the schedule leaves unsynchronized: the reader is
    /// classified to read the old value (or its own accumulator) although
    /// an earlier iteration writes the element — the "dropped flag"
    /// failure mode.
    UncoveredFlow {
        /// The uncovered flow edge.
        edge: DependenceEdge,
    },
    /// An antidependence the schedule inverts: the reader is classified to
    /// wait for (and read) the new value although the write happens in a
    /// *later* iteration.
    UncoveredAnti {
        /// The inverted anti edge.
        edge: DependenceEdge,
    },
    /// An output dependence no flat flag schedule can express: two
    /// iterations write the same element under a variant whose per-element
    /// flags fire exactly once.
    UncoveredOutput {
        /// The inexpressible output edge.
        edge: DependenceEdge,
    },
    /// An intra-iteration reference misrouted away from the accumulator.
    UncoveredIntra {
        /// The misrouted intra-iteration reference.
        edge: DependenceEdge,
    },
    /// The schedule makes an iteration wait on an element no iteration
    /// writes: the ready flag can never fire — guaranteed deadlock.
    PhantomWait {
        /// The element whose flag can never fire.
        element: usize,
        /// The iteration that would wait forever.
        reader: usize,
    },
    /// A doconsider claim order that places a reader before its writer:
    /// the flag-based executor livelocks once workers saturate.
    ClaimOrderInversion {
        /// The flow edge the order inverts.
        edge: DependenceEdge,
        /// Where the order claims the writer.
        writer_position: usize,
        /// Where the order claims the reader (earlier — the bug).
        reader_position: usize,
    },
    /// The claim order is not a permutation of the iteration space.
    OrderNotPermutation {
        /// The duplicate or out-of-range order entry.
        entry: usize,
    },
    /// Wavefront: a flow dependence not separated by a level barrier — the
    /// "reordered level" failure mode (writer scheduled at or after the
    /// reader's level).
    LevelOrderViolation {
        /// The flow edge the levels fail to separate.
        edge: DependenceEdge,
        /// The writer's level (1-based).
        writer_level: usize,
        /// The reader's level — not strictly later, hence the violation.
        reader_level: usize,
    },
    /// Blocked: two writes to one element land in the same block — the
    /// "off-by-one block boundary" failure mode (the per-block inspector
    /// would reject the block at run time).
    DuplicateWriteInBlock {
        /// The output edge landing inside one block.
        edge: DependenceEdge,
        /// Which block.
        block: usize,
        /// The block size that failed to separate the writes.
        block_size: usize,
    },
    /// Blocked, artifact mode: the block size exceeds the census's minimum
    /// duplicate-write gap, so some block must contain a duplicate write.
    BlockExceedsWriteGap {
        /// The plan's block size.
        block_size: usize,
        /// The census's minimum duplicate-write gap it exceeds.
        min_gap: usize,
    },
    /// Linear: the pattern's left-hand side disagrees with the declared
    /// subscript `a(i) = c·i + d`, so the arithmetic oracle answers for
    /// the wrong element.
    SubscriptMismatch {
        /// The iteration where `lhs` departs from the line.
        iteration: usize,
        /// `c·i + d`.
        expected: usize,
        /// The actual `lhs(i)`.
        got: usize,
    },
    /// A schedule artifact is internally inconsistent with the census it
    /// shipped with (counts that no single classification pass could have
    /// produced).
    ArtifactMismatch {
        /// Which artifact is inconsistent.
        what: &'static str,
        /// The value the census implies.
        expected: u64,
        /// The value the artifact carries.
        got: u64,
    },
    /// The variant's synchronization schedule presumes an injective
    /// left-hand side, but the pattern (or census) has duplicate writes.
    RequiresInjective {
        /// The variant making the presumption.
        variant: &'static str,
    },
}

impl std::fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SoundnessViolation::ShapeMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "schedule shape mismatch: {what} expected {expected}, got {got}"
            ),
            SoundnessViolation::OutOfBounds {
                iteration,
                element,
                data_len,
            } => write!(
                f,
                "iteration {iteration} references element {element} outside data space {data_len}"
            ),
            SoundnessViolation::UncoveredFlow { edge } => {
                write!(f, "uncovered {edge}: reader would consume a stale value")
            }
            SoundnessViolation::UncoveredAnti { edge } => {
                write!(
                    f,
                    "uncovered {edge}: reader would consume the overwritten value"
                )
            }
            SoundnessViolation::UncoveredOutput { edge } => {
                write!(f, "uncovered {edge}: flat flags fire once per element")
            }
            SoundnessViolation::UncoveredIntra { edge } => {
                write!(
                    f,
                    "uncovered {edge}: reference misrouted away from the accumulator"
                )
            }
            SoundnessViolation::PhantomWait { element, reader } => write!(
                f,
                "iteration {reader} waits on y[{element}], which no iteration writes: deadlock"
            ),
            SoundnessViolation::ClaimOrderInversion {
                edge,
                writer_position,
                reader_position,
            } => write!(
                f,
                "claim order inverts {edge}: writer claimed at position {writer_position}, \
                 reader at {reader_position}"
            ),
            SoundnessViolation::OrderNotPermutation { entry } => {
                write!(f, "claim order is not a permutation (entry {entry})")
            }
            SoundnessViolation::LevelOrderViolation {
                edge,
                writer_level,
                reader_level,
            } => write!(
                f,
                "no level barrier covers {edge}: writer at level {writer_level}, \
                 reader at level {reader_level}"
            ),
            SoundnessViolation::DuplicateWriteInBlock {
                edge,
                block,
                block_size,
            } => write!(
                f,
                "{edge} falls inside block {block} (block size {block_size})"
            ),
            SoundnessViolation::BlockExceedsWriteGap {
                block_size,
                min_gap,
            } => write!(
                f,
                "block size {block_size} exceeds the minimum duplicate-write gap {min_gap}"
            ),
            SoundnessViolation::SubscriptMismatch {
                iteration,
                expected,
                got,
            } => write!(
                f,
                "lhs({iteration}) = {got} disagrees with the declared linear subscript \
                 (expected {expected})"
            ),
            SoundnessViolation::ArtifactMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "artifact inconsistency: {what} expected {expected}, got {got}"
            ),
            SoundnessViolation::RequiresInjective { variant } => write!(
                f,
                "{variant} schedule requires an injective left-hand side, \
                 but the pattern has duplicate writes"
            ),
        }
    }
}

impl std::error::Error for SoundnessViolation {}

/// What a passing verification proved: the dependence census the verifier
/// re-derived from the index arrays, every edge of which the schedule was
/// shown to cover.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoundnessReport {
    /// Iterations of the verified pattern.
    pub iterations: usize,
    /// Data-space size of the verified pattern.
    pub data_len: usize,
    /// Right-hand-side references checked.
    pub references: u64,
    /// Flow (true) dependence edges the schedule covers.
    pub flow_edges: u64,
    /// Antidependence edges the schedule covers.
    pub anti_edges: u64,
    /// Intra-iteration references routed to the accumulator.
    pub intra_refs: u64,
    /// References to elements no iteration writes.
    pub unwritten_refs: u64,
    /// Output-dependence pairs (adjacent writes to one element) covered —
    /// nonzero only for the blocked variant.
    pub output_pairs: u64,
}

impl std::fmt::Display for SoundnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sound: {} iterations, {} references ({} flow, {} anti, {} intra, \
             {} unwritten, {} output pairs)",
            self.iterations,
            self.references,
            self.flow_edges,
            self.anti_edges,
            self.intra_refs,
            self.unwritten_refs,
            self.output_pairs,
        )
    }
}
