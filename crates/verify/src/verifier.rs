//! The soundness verifier: translation validation of synchronization
//! schedules against the dependences a pattern's index arrays imply.
//!
//! [`verify_pattern`] is the full check (pattern in hand): it re-derives
//! the last-writer map and walks every right-hand-side reference,
//! comparing the dependence class the executor *will* act on (from the
//! schedule's oracle, claim order, or level/class artifacts) against the
//! class the index arrays *imply* — reporting the first uncovered edge.
//! [`verify_artifacts`] is the pattern-free check persistence runs at load
//! time: everything provable from the schedule artifacts and the census
//! alone (injectivity prerequisites, writer-map bijectivity, block size vs
//! duplicate-write gap, class counts).

use crate::schedule::{CensusFacts, SyncSchedule};
use crate::violation::{DependenceEdge, SoundnessReport, SoundnessViolation};
use doacross_core::{AccessPattern, LinearWriter, OperandClass, WriterOracle, MAXINT};

/// How the executor will treat one right-hand-side reference — the
/// behavioral collapse of the writer comparison: `w < i` waits and reads
/// the new value, `w == i` reads the accumulator, `w > i` and unwritten
/// both read the old value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefClass {
    New,
    Old,
    Accumulator,
}

#[inline]
fn classify(writer: i64, reader: usize) -> RefClass {
    if writer == MAXINT {
        RefClass::Old
    } else {
        match (writer as usize).cmp(&reader) {
            std::cmp::Ordering::Less => RefClass::New,
            std::cmp::Ordering::Equal => RefClass::Accumulator,
            std::cmp::Ordering::Greater => RefClass::Old,
        }
    }
}

/// The violation for a reference whose schedule class disagrees with the
/// class the index arrays imply, anchored on the implied dependence edge.
fn class_violation(
    truth_writer: i64,
    claimed: RefClass,
    element: usize,
    reader: usize,
) -> SoundnessViolation {
    match classify(truth_writer, reader) {
        RefClass::New => SoundnessViolation::UncoveredFlow {
            edge: DependenceEdge::Flow {
                element,
                writer: truth_writer as usize,
                reader,
            },
        },
        RefClass::Accumulator => SoundnessViolation::UncoveredIntra {
            edge: DependenceEdge::Intra {
                element,
                iteration: reader,
            },
        },
        RefClass::Old if truth_writer != MAXINT => SoundnessViolation::UncoveredAnti {
            edge: DependenceEdge::Anti {
                element,
                reader,
                writer: truth_writer as usize,
            },
        },
        RefClass::Old => match claimed {
            // The schedule waits for (or reads the shadow of) an element
            // that is never produced.
            RefClass::New => SoundnessViolation::PhantomWait { element, reader },
            _ => SoundnessViolation::UncoveredIntra {
                edge: DependenceEdge::Intra {
                    element,
                    iteration: reader,
                },
            },
        },
    }
}

/// Statically proves that `schedule` covers every flow, anti, and output
/// dependence `pattern`'s index arrays imply, or reports the first
/// uncovered dependence edge. See the crate docs for the coverage rule of
/// each variant.
///
/// Cost: O(data space + references) — the same order as one inspector
/// pass, so the check is affordable at plan-build time.
pub fn verify_pattern<P: AccessPattern + ?Sized>(
    pattern: &P,
    schedule: &SyncSchedule<'_>,
) -> Result<SoundnessReport, SoundnessViolation> {
    let n = pattern.iterations();
    let data_len = pattern.data_len();
    let mut report = SoundnessReport {
        iterations: n,
        data_len,
        ..Default::default()
    };

    // Per-variant shape prerequisites, before any O(n) work.
    let mut positions: Vec<usize> = Vec::new();
    match schedule {
        SyncSchedule::Sequential => {}
        SyncSchedule::FlagsNatural { writers } | SyncSchedule::FlagsOrdered { writers, .. } => {
            if writers.iterations() != n {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "writer map iterations",
                    expected: n,
                    got: writers.iterations(),
                });
            }
            if writers.data_len() != data_len {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "writer map data space",
                    expected: data_len,
                    got: writers.data_len(),
                });
            }
            if let SyncSchedule::FlagsOrdered { order, .. } = schedule {
                if order.len() != n {
                    return Err(SoundnessViolation::ShapeMismatch {
                        what: "claim order length",
                        expected: n,
                        got: order.len(),
                    });
                }
                positions = vec![usize::MAX; n];
                for (k, &i) in order.iter().enumerate() {
                    if i >= n || positions[i] != usize::MAX {
                        return Err(SoundnessViolation::OrderNotPermutation { entry: i });
                    }
                    positions[i] = k;
                }
            }
        }
        SyncSchedule::FlagsLinear { subscript } => {
            if subscript.c == 0 {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "linear stride",
                    expected: 1,
                    got: 0,
                });
            }
        }
        SyncSchedule::Blocked { block_size } => {
            if *block_size == 0 {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "block size",
                    expected: 1,
                    got: 0,
                });
            }
        }
        SyncSchedule::Wavefront { schedule } => {
            if schedule.iterations() != n {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "level schedule iterations",
                    expected: n,
                    got: schedule.iterations(),
                });
            }
        }
    }

    // Ground truth, pass 1: the last-writer map exactly as the inspector
    // fills it, plus the duplicate-write (output-dependence) structure.
    let mut truth = vec![MAXINT; data_len];
    for i in 0..n {
        let a = pattern.lhs(i);
        if a >= data_len {
            return Err(SoundnessViolation::OutOfBounds {
                iteration: i,
                element: a,
                data_len,
            });
        }
        if let SyncSchedule::FlagsLinear { subscript } = schedule {
            let expected = subscript.at(i);
            if a != expected {
                return Err(SoundnessViolation::SubscriptMismatch {
                    iteration: i,
                    expected,
                    got: a,
                });
            }
        }
        let prev = truth[a];
        if prev != MAXINT {
            let edge = DependenceEdge::Output {
                element: a,
                first: prev as usize,
                second: i,
            };
            match schedule {
                SyncSchedule::Sequential => report.output_pairs += 1,
                SyncSchedule::Blocked { block_size } => {
                    if prev as usize / block_size == i / block_size {
                        return Err(SoundnessViolation::DuplicateWriteInBlock {
                            edge,
                            block: i / block_size,
                            block_size: *block_size,
                        });
                    }
                    report.output_pairs += 1;
                }
                // Flat flags fire once per element; the wavefront's level
                // DAG has one producer per element. Neither can order two
                // writes.
                _ => return Err(SoundnessViolation::UncoveredOutput { edge }),
            }
        }
        truth[a] = i as i64;
    }

    // Wavefront artifacts: the per-iteration level (1-based, from the CSR
    // buckets) and the class stream, both needed in the reference walk.
    let mut levels: Vec<usize> = Vec::new();
    if let SyncSchedule::Wavefront { schedule } = schedule {
        levels = vec![0usize; n];
        for l in 0..schedule.level_count() {
            for &i in schedule.level_iterations(l) {
                levels[i] = l + 1;
            }
        }
    }

    // The linear oracle is constructed once (its per-query cost is a
    // divide, not a map lookup).
    let linear_oracle = match schedule {
        SyncSchedule::FlagsLinear { subscript } => {
            Some(LinearWriter::new(subscript.c, subscript.d, n))
        }
        _ => None,
    };

    // Ground truth, pass 2: walk every reference and check the schedule
    // covers the dependence it implies.
    for i in 0..n {
        let terms = pattern.terms(i);
        if let SyncSchedule::Wavefront { schedule } = schedule {
            let to = schedule.term_offsets();
            let declared = to[i + 1] - to[i];
            if declared != terms {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "iteration reference count",
                    expected: terms,
                    got: declared,
                });
            }
        }
        for j in 0..terms {
            let e = pattern.term_element(i, j);
            if e >= data_len {
                return Err(SoundnessViolation::OutOfBounds {
                    iteration: i,
                    element: e,
                    data_len,
                });
            }
            report.references += 1;
            let w = truth[e];
            let truth_class = classify(w, i);
            match truth_class {
                RefClass::New => report.flow_edges += 1,
                RefClass::Accumulator => report.intra_refs += 1,
                RefClass::Old if w != MAXINT => report.anti_edges += 1,
                RefClass::Old => report.unwritten_refs += 1,
            }

            let claimed = match schedule {
                // Program order (sequential) and the per-block inspector
                // (blocked) re-derive the classification from the index
                // arrays at run time; there is no prebuilt class to
                // disagree with.
                SyncSchedule::Sequential | SyncSchedule::Blocked { .. } => continue,
                SyncSchedule::FlagsNatural { writers }
                | SyncSchedule::FlagsOrdered { writers, .. } => classify(writers.writer(e), i),
                SyncSchedule::FlagsLinear { .. } => {
                    // The subscript was proven to match `lhs` above, so the
                    // arithmetic oracle necessarily agrees with the truth
                    // map; the classification is re-checked anyway so a
                    // future oracle change cannot silently decouple them.
                    let oracle = linear_oracle.as_ref().expect("constructed for this arm");
                    classify(oracle.writer(e), i)
                }
                SyncSchedule::Wavefront { schedule } => {
                    let byte = schedule.classes()[schedule.term_offsets()[i] + j];
                    match OperandClass::from_u8(byte) {
                        Some(OperandClass::NewValue) => RefClass::New,
                        Some(OperandClass::OldValue) => RefClass::Old,
                        Some(OperandClass::Accumulator) => RefClass::Accumulator,
                        None => {
                            return Err(SoundnessViolation::ArtifactMismatch {
                                what: "operand class byte",
                                expected: OperandClass::Accumulator as u64,
                                got: byte as u64,
                            })
                        }
                    }
                }
            };

            if claimed != truth_class {
                return Err(class_violation(w, claimed, e, i));
            }

            // The class matches; now the *ordering* obligations.
            if truth_class == RefClass::New {
                let w = w as usize;
                match schedule {
                    // Progress: the executor claims iterations in the
                    // doconsider order, so a reader claimed before its
                    // writer livelocks once workers saturate.
                    SyncSchedule::FlagsOrdered { .. } if positions[w] > positions[i] => {
                        return Err(SoundnessViolation::ClaimOrderInversion {
                            edge: DependenceEdge::Flow {
                                element: e,
                                writer: w,
                                reader: i,
                            },
                            writer_position: positions[w],
                            reader_position: positions[i],
                        });
                    }
                    // Coverage: only a strictly earlier level is
                    // separated from the reader by a barrier.
                    SyncSchedule::Wavefront { .. } if levels[w] >= levels[i] => {
                        return Err(SoundnessViolation::LevelOrderViolation {
                            edge: DependenceEdge::Flow {
                                element: e,
                                writer: w,
                                reader: i,
                            },
                            writer_level: levels[w],
                            reader_level: levels[i],
                        });
                    }
                    // Natural claim order covers w < i by construction.
                    _ => {}
                }
            }
        }
    }

    Ok(report)
}

/// The pattern-free half: everything provable from the schedule artifacts
/// and the census alone. This is what persisted-plan loading runs — the
/// index arrays are not in the store, but a schedule that fails *these*
/// checks can not be sound for any pattern matching the census.
pub fn verify_artifacts(
    facts: &CensusFacts,
    schedule: &SyncSchedule<'_>,
) -> Result<(), SoundnessViolation> {
    let classified = facts.true_deps + facts.anti_deps + facts.intra + facts.unwritten;
    // The blocked variant is selected precisely when the census could not
    // classify (non-injective lhs), so its census legitimately carries
    // zero classified references; every other variant's census comes from
    // the full classification pass.
    if !matches!(
        schedule,
        SyncSchedule::Blocked { .. } | SyncSchedule::Sequential
    ) && classified != facts.total_terms
    {
        return Err(SoundnessViolation::ArtifactMismatch {
            what: "census reference classification",
            expected: facts.total_terms,
            got: classified,
        });
    }
    if schedule.requires_injective() && !facts.injective {
        return Err(SoundnessViolation::RequiresInjective {
            variant: schedule.variant_name(),
        });
    }
    match schedule {
        SyncSchedule::Sequential => {}
        SyncSchedule::FlagsNatural { writers } | SyncSchedule::FlagsOrdered { writers, .. } => {
            if writers.iterations() != facts.iterations {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "writer map iterations",
                    expected: facts.iterations,
                    got: writers.iterations(),
                });
            }
            if writers.data_len() != facts.data_len {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "writer map data space",
                    expected: facts.data_len,
                    got: writers.data_len(),
                });
            }
            // An injective pattern's writer map is a bijection between
            // iterations and written elements: exactly `iterations`
            // entries, no iteration appearing twice.
            let mut seen = vec![false; facts.iterations];
            let mut written = 0usize;
            for e in 0..facts.data_len {
                let w = writers.writer(e);
                if w == MAXINT {
                    continue;
                }
                written += 1;
                if w < 0
                    || w as usize >= facts.iterations
                    || std::mem::replace(&mut seen[w as usize], true)
                {
                    return Err(SoundnessViolation::ArtifactMismatch {
                        what: "writer map bijectivity",
                        expected: facts.iterations as u64,
                        got: w.max(0) as u64,
                    });
                }
            }
            if written != facts.iterations {
                return Err(SoundnessViolation::ArtifactMismatch {
                    what: "writer map entries",
                    expected: facts.iterations as u64,
                    got: written as u64,
                });
            }
            if let SyncSchedule::FlagsOrdered { order, .. } = schedule {
                if order.len() != facts.iterations {
                    return Err(SoundnessViolation::ShapeMismatch {
                        what: "claim order length",
                        expected: facts.iterations,
                        got: order.len(),
                    });
                }
                let mut seen = vec![false; facts.iterations];
                for &i in order.iter() {
                    if i >= facts.iterations || std::mem::replace(&mut seen[i], true) {
                        return Err(SoundnessViolation::OrderNotPermutation { entry: i });
                    }
                }
            }
        }
        SyncSchedule::FlagsLinear { subscript } => {
            if subscript.c == 0 {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "linear stride",
                    expected: 1,
                    got: 0,
                });
            }
            if facts.iterations > 0 {
                let last = subscript.c * (facts.iterations - 1) + subscript.d;
                if last >= facts.data_len {
                    return Err(SoundnessViolation::OutOfBounds {
                        iteration: facts.iterations - 1,
                        element: last,
                        data_len: facts.data_len,
                    });
                }
            }
        }
        SyncSchedule::Blocked { block_size } => {
            if *block_size == 0 {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "block size",
                    expected: 1,
                    got: 0,
                });
            }
            if !facts.injective {
                let Some(gap) = facts.min_duplicate_write_gap else {
                    return Err(SoundnessViolation::ArtifactMismatch {
                        what: "duplicate-write gap of a non-injective census",
                        expected: 1,
                        got: 0,
                    });
                };
                // Two writes to one element `gap` iterations apart land in
                // one block once the block spans more than `gap`
                // iterations — the off-by-one-boundary failure mode,
                // caught without the index arrays.
                if *block_size > gap {
                    return Err(SoundnessViolation::BlockExceedsWriteGap {
                        block_size: *block_size,
                        min_gap: gap,
                    });
                }
            }
        }
        SyncSchedule::Wavefront { schedule } => {
            if schedule.iterations() != facts.iterations {
                return Err(SoundnessViolation::ShapeMismatch {
                    what: "level schedule iterations",
                    expected: facts.iterations,
                    got: schedule.iterations(),
                });
            }
            if schedule.total_terms() as u64 != facts.total_terms {
                return Err(SoundnessViolation::ArtifactMismatch {
                    what: "level schedule references",
                    expected: facts.total_terms,
                    got: schedule.total_terms() as u64,
                });
            }
            let (new, old, acc) = schedule.class_counts();
            if new != facts.true_deps {
                return Err(SoundnessViolation::ArtifactMismatch {
                    what: "new-value class count",
                    expected: facts.true_deps,
                    got: new,
                });
            }
            if old != facts.anti_deps + facts.unwritten {
                return Err(SoundnessViolation::ArtifactMismatch {
                    what: "old-value class count",
                    expected: facts.anti_deps + facts.unwritten,
                    got: old,
                });
            }
            if acc != facts.intra {
                return Err(SoundnessViolation::ArtifactMismatch {
                    what: "accumulator class count",
                    expected: facts.intra,
                    got: acc,
                });
            }
        }
    }
    Ok(())
}
