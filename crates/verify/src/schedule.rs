//! The verifier's view of a plan: the synchronization schedule alone.
//!
//! This crate sits *below* `doacross-plan` in the dependency graph (the
//! plan layer calls into it from plan build, persistence load, and
//! adaptive promotion), so it cannot name `ExecutionPlan` or
//! `PlanVariant`. Instead it verifies a [`SyncSchedule`] — the
//! synchronization-relevant artifacts of each variant, all of which are
//! `doacross-core` types. `doacross-plan` provides the lossless
//! `ExecutionPlan → SyncSchedule` projection on its side (the same
//! arrangement `doacross-obs` uses for its event vocabulary).

use doacross_core::{LevelSchedule, LinearSubscript, PreparedInspection};

/// The synchronization schedule of one executor variant, borrowed from a
/// plan's artifacts.
#[derive(Debug, Clone, Copy)]
pub enum SyncSchedule<'a> {
    /// Source order on one worker: every dependence is covered by program
    /// order.
    Sequential,
    /// The flat preprocessed doacross: per-element ready flags, natural
    /// (increasing) claim order, writer queries answered by the prebuilt
    /// inspector map.
    FlagsNatural {
        /// The prebuilt writer map (`iter(a(i)) = i`).
        writers: &'a PreparedInspection,
    },
    /// §2.3's linear-subscript doacross: per-element ready flags, natural
    /// claim order, writer queries answered arithmetically from
    /// `a(i) = c·i + d`.
    FlagsLinear {
        /// The declared left-hand-side subscript.
        subscript: LinearSubscript,
    },
    /// The flat doacross claiming iterations in a doconsider order: the
    /// flags are the same, but progress additionally requires the order to
    /// be topological over the flow dependences.
    FlagsOrdered {
        /// The prebuilt writer map.
        writers: &'a PreparedInspection,
        /// The claim order (must be a permutation of the iteration space).
        order: &'a [usize],
    },
    /// §2.3's strip-mined doacross: blocks of `block_size` contiguous
    /// iterations run as flat doacrosses with a per-block inspector;
    /// blocks execute sequentially with a copy-back in between, which
    /// covers every cross-block dependence.
    Blocked {
        /// Iterations per `L_outer` step.
        block_size: usize,
    },
    /// Level-scheduled wavefront: each level is a barrier-separated doall;
    /// flow dependences are covered iff the writer's level is strictly
    /// earlier, and every reference's operand class routes it to the right
    /// array (shadow / old / accumulator).
    Wavefront {
        /// The prebuilt level schedule (CSR levels + operand classes).
        schedule: &'a LevelSchedule,
    },
}

impl SyncSchedule<'_> {
    /// Short lowercase name of the schedule's variant family (matches the
    /// planner's `PlanVariant` display names).
    pub fn variant_name(&self) -> &'static str {
        match self {
            SyncSchedule::Sequential => "sequential",
            SyncSchedule::FlagsNatural { .. } => "doacross",
            SyncSchedule::FlagsLinear { .. } => "linear",
            SyncSchedule::FlagsOrdered { .. } => "reordered",
            SyncSchedule::Blocked { .. } => "blocked",
            SyncSchedule::Wavefront { .. } => "wavefront",
        }
    }

    /// Whether this schedule's executor presumes an injective left-hand
    /// side (every flat flag-based variant and the wavefront; the blocked
    /// variant tolerates duplicates across block boundaries, and the
    /// sequential loop tolerates anything).
    pub fn requires_injective(&self) -> bool {
        !matches!(
            self,
            SyncSchedule::Sequential | SyncSchedule::Blocked { .. }
        )
    }
}

/// The census facts artifact-mode verification runs on — a value-level
/// mirror of `doacross_plan::PlanCensus`'s schedule-relevant fields, owned
/// here for the same layering reason as [`SyncSchedule`]. The plan layer
/// converts on its side.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CensusFacts {
    /// Outer-loop iterations.
    pub iterations: usize,
    /// Data-space size.
    pub data_len: usize,
    /// Total right-hand-side references.
    pub total_terms: u64,
    /// References to elements written by an earlier iteration.
    pub true_deps: u64,
    /// References to elements written by a later iteration.
    pub anti_deps: u64,
    /// References to the iteration's own output element.
    pub intra: u64,
    /// References to elements no iteration writes.
    pub unwritten: u64,
    /// Whether the left-hand side is injective.
    pub injective: bool,
    /// For non-injective patterns: the smallest iteration gap between two
    /// writes to the same element.
    pub min_duplicate_write_gap: Option<usize>,
}
