//! Block 7-point operators — the SPE2/SPE5 matrix shapes.
//!
//! The appendix describes SPE2 as "a block seven point operator with 6x6
//! blocks" on a 6×6×5 grid (thermal steam-injection simulation, 6 unknowns
//! per grid point → 1080 equations) and SPE5 as a block seven point
//! operator with 3×3 blocks on a 16×23×3 grid (black-oil model → 3312
//! equations). The original reservoir matrices are proprietary; these
//! generators reproduce the exact block sparsity structure with synthetic
//! coefficients, which preserves the triangular-solve dependence DAG the
//! paper's Table 1 exercises.

use crate::builder::TripletBuilder;
use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Builds a block 7-point operator on an `nx × ny × nz` grid with dense
/// `b × b` blocks: grid point `p` couples to itself and its six axis
/// neighbors, each coupling contributing a dense block. Scalar rows are
/// made strictly diagonally dominant.
pub fn block_seven_point(nx: usize, ny: usize, nz: usize, b: usize, seed: u64) -> CsrMatrix {
    assert!(b >= 1, "block size must be >= 1");
    let points = nx * ny * nz;
    let n = points * b;
    let mut rng = SmallRng::seed_from_u64(seed);
    let idx = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;

    // Seven blocks per interior point, b*b values each.
    let mut builder = TripletBuilder::with_capacity(n, n, points * 7 * b * b);
    // Off-diagonal magnitudes per scalar row, accumulated so the diagonal
    // can dominate them.
    let mut row_offdiag = vec![0.0f64; n];

    let couple = |builder: &mut TripletBuilder,
                  rng: &mut SmallRng,
                  row_offdiag: &mut [f64],
                  p: usize,
                  q: usize| {
        // Dense b×b coupling block between grid points p (rows) and q
        // (cols). Off-diagonal blocks are weaker than the diagonal block's
        // off-diagonal entries to mimic the banded reservoir operators.
        for r in 0..b {
            for c in 0..b {
                let row = p * b + r;
                let col = q * b + c;
                if row == col {
                    continue; // diagonal handled after accumulation
                }
                let v = -(0.5 + 0.5 * rng.gen::<f64>());
                row_offdiag[row] += v.abs();
                builder.push(row, col, v);
            }
        }
    };

    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                let p = idx(x, y, z);
                couple(&mut builder, &mut rng, &mut row_offdiag, p, p);
                if x > 0 {
                    couple(
                        &mut builder,
                        &mut rng,
                        &mut row_offdiag,
                        p,
                        idx(x - 1, y, z),
                    );
                }
                if x + 1 < nx {
                    couple(
                        &mut builder,
                        &mut rng,
                        &mut row_offdiag,
                        p,
                        idx(x + 1, y, z),
                    );
                }
                if y > 0 {
                    couple(
                        &mut builder,
                        &mut rng,
                        &mut row_offdiag,
                        p,
                        idx(x, y - 1, z),
                    );
                }
                if y + 1 < ny {
                    couple(
                        &mut builder,
                        &mut rng,
                        &mut row_offdiag,
                        p,
                        idx(x, y + 1, z),
                    );
                }
                if z > 0 {
                    couple(
                        &mut builder,
                        &mut rng,
                        &mut row_offdiag,
                        p,
                        idx(x, y, z - 1),
                    );
                }
                if z + 1 < nz {
                    couple(
                        &mut builder,
                        &mut rng,
                        &mut row_offdiag,
                        p,
                        idx(x, y, z + 1),
                    );
                }
            }
        }
    }
    for (row, &off) in row_offdiag.iter().enumerate() {
        builder.push(row, row, 1.0 + rng.gen::<f64>() + off);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spe2_shape() {
        // 6x6x5 grid, 6x6 blocks -> 1080 equations (paper appendix).
        let m = block_seven_point(6, 6, 5, 6, 1);
        assert_eq!(m.nrows(), 1080);
        assert_eq!(m.ncols(), 1080);
    }

    #[test]
    fn spe5_shape() {
        // 16x23x3 grid, 3x3 blocks -> 3312 equations (paper appendix).
        let m = block_seven_point(16, 23, 3, 3, 2);
        assert_eq!(m.nrows(), 3312);
    }

    #[test]
    fn block_structure_is_seven_point() {
        // 3x3x3 grid with 2x2 blocks: the center point couples to 7 points,
        // so each of its scalar rows holds 7 * 2 = 14 entries.
        let b = 2;
        let m = block_seven_point(3, 3, 3, b, 3);
        let center = 13; // (1,1,1) in a 3x3x3 grid
        for r in 0..b {
            let row = center * b + r;
            assert_eq!(m.row_cols(row).len(), 7 * b, "row {row}");
        }
        // A corner point couples to 4 points (itself + 3 neighbors).
        for r in 0..b {
            assert_eq!(m.row_cols(r).len(), 4 * b);
        }
    }

    #[test]
    fn rows_are_diagonally_dominant() {
        let m = block_seven_point(4, 3, 2, 3, 7);
        for i in 0..m.nrows() {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&j, &v) in m.row_cols(i).iter().zip(m.row_values(i)) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            assert!(diag > off, "row {i}: {diag} vs {off}");
        }
    }

    #[test]
    fn pattern_is_symmetric() {
        let m = block_seven_point(3, 2, 2, 2, 9);
        let t = m.transpose();
        for i in 0..m.nrows() {
            assert_eq!(m.row_cols(i), t.row_cols(i), "row {i}");
        }
    }

    #[test]
    fn block_size_one_matches_scalar_seven_point_pattern() {
        let blocked = block_seven_point(4, 3, 2, 1, 5);
        let scalar = crate::stencil::seven_point(4, 3, 2, 5);
        assert_eq!(blocked.nrows(), scalar.nrows());
        for i in 0..blocked.nrows() {
            assert_eq!(blocked.row_cols(i), scalar.row_cols(i), "row {i}");
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = block_seven_point(3, 3, 2, 2, 11);
        let b = block_seven_point(3, 3, 2, 2, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        let _ = block_seven_point(2, 2, 2, 0, 1);
    }
}
