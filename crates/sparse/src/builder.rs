//! Triplet (COO) accumulation and conversion to CSR.

use crate::csr::CsrMatrix;

/// Accumulates `(row, col, value)` triplets in any order and converts them
/// to a [`CsrMatrix`], summing duplicates — the standard assembly path for
/// stencil and finite-difference operators.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletBuilder {
    /// A builder for an `nrows × ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Pre-allocates room for `n` triplets.
    pub fn with_capacity(nrows: usize, ncols: usize, n: usize) -> Self {
        Self {
            nrows,
            ncols,
            entries: Vec::with_capacity(n),
        }
    }

    /// Number of accumulated triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been added.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`; duplicates are summed at build time.
    ///
    /// # Panics
    /// Panics if the position is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.nrows, "row {row} out of range ({})", self.nrows);
        assert!(col < self.ncols, "col {col} out of range ({})", self.ncols);
        self.entries.push((row, col, value));
    }

    /// Sorts, merges duplicates, and produces the CSR matrix.
    pub fn build(mut self) -> CsrMatrix {
        self.entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut row_counts = vec![0usize; self.nrows];
        let mut col_idx: Vec<usize> = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut last: Option<(usize, usize)> = None;
        for (r, c, v) in self.entries {
            if last == Some((r, c)) {
                *values.last_mut().expect("merge target exists") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_counts[r] += 1;
                last = Some((r, c));
            }
        }
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for r in 0..self.nrows {
            row_ptr[r + 1] = row_ptr[r] + row_counts[r];
        }
        CsrMatrix::from_parts(self.nrows, self.ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_any_order() {
        let mut b = TripletBuilder::new(2, 3);
        b.push(1, 2, 5.0);
        b.push(0, 0, 1.0);
        b.push(1, 0, 4.0);
        b.push(0, 2, 3.0);
        let m = b.build();
        assert_eq!(m.to_dense(), vec![vec![1.0, 0.0, 3.0], vec![4.0, 0.0, 5.0]]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(0, 1, 2.5);
        b.push(1, 1, 1.0);
        b.push(0, 1, 0.5);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), Some(4.0));
        assert_eq!(m.get(1, 1), Some(1.0));
    }

    #[test]
    fn duplicate_in_different_rows_not_merged() {
        let mut b = TripletBuilder::new(2, 2);
        b.push(0, 1, 1.0);
        b.push(1, 1, 2.0);
        let m = b.build();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), Some(1.0));
        assert_eq!(m.get(1, 1), Some(2.0));
    }

    #[test]
    fn empty_builder_yields_empty_matrix() {
        let m = TripletBuilder::new(3, 3).build();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        TripletBuilder::new(1, 1).push(0, 1, 1.0);
    }

    #[test]
    fn capacity_and_len() {
        let mut b = TripletBuilder::with_capacity(4, 4, 10);
        assert!(b.is_empty());
        b.push(0, 0, 1.0);
        assert_eq!(b.len(), 1);
    }
}
