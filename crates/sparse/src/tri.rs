//! The sparse triangular system of the paper's Figure 7.
//!
//! ```fortran
//! S1  do i = 1, n
//!         y(i) = rhs(i)
//!         do j = low(i), high(i)
//!             y(i) = y(i) - a(j) * y(column(j))
//!         end do
//!     end do
//! ```
//!
//! [`TriangularMatrix`] stores exactly the `low/high/column/a` arrays of
//! that loop: the strictly-lower part of a *unit* lower-triangular matrix
//! in CSR layout (`low(i) = row_ptr[i]`, `high(i) = row_ptr[i+1] - 1`).
//! The unit diagonal is implicit — ILU(0)'s `L` factor has exactly this
//! shape, which is why no division appears in the loop.

use crate::csr::CsrMatrix;

/// A unit lower-triangular matrix stored as its strictly-lower part in CSR
/// layout. See the module docs for the Figure 7 correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct TriangularMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl TriangularMatrix {
    /// Wraps a strictly-lower CSR matrix (as produced by
    /// [`crate::ilu::ilu0`]) as a unit lower-triangular system.
    ///
    /// # Panics
    /// Panics if the matrix is not square or any entry has `col >= row`.
    pub fn from_strict_lower(m: &CsrMatrix) -> Self {
        assert_eq!(m.nrows(), m.ncols(), "triangular matrix must be square");
        for i in 0..m.nrows() {
            for &j in m.row_cols(i) {
                assert!(j < i, "entry ({i},{j}) is not strictly lower");
            }
        }
        Self {
            n: m.nrows(),
            row_ptr: m.row_ptr().to_vec(),
            col_idx: m.col_idx().to_vec(),
            values: m.values().to_vec(),
        }
    }

    /// Dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored (strictly-lower) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The paper's `low(i)` (0-based inclusive start of row `i`'s entries).
    #[inline]
    pub fn low(&self, i: usize) -> usize {
        self.row_ptr[i]
    }

    /// One past the paper's `high(i)` (0-based exclusive end).
    #[inline]
    pub fn high(&self, i: usize) -> usize {
        self.row_ptr[i + 1]
    }

    /// The paper's `column` array.
    #[inline]
    pub fn column(&self) -> &[usize] {
        &self.col_idx
    }

    /// The paper's `a` array.
    #[inline]
    pub fn coeff(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `i` (all `< i`).
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Coefficients of row `i`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Sequential forward substitution (the Figure 7 loop verbatim):
    /// returns `y` with `L y = rhs`.
    pub fn forward_solve(&self, rhs: &[f64]) -> Vec<f64> {
        assert_eq!(rhs.len(), self.n, "rhs length mismatch");
        let mut y = vec![0.0; self.n];
        for i in 0..self.n {
            let mut acc = rhs[i];
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc -= self.values[p] * y[self.col_idx[p]];
            }
            y[i] = acc;
        }
        y
    }

    /// Multiplies `L x` (unit diagonal included): used to manufacture
    /// right-hand sides with known solutions.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "x length mismatch");
        let mut out = x.to_vec();
        #[allow(clippy::needless_range_loop)] // row index mirrors CSR layout
        for i in 0..self.n {
            for p in self.row_ptr[i]..self.row_ptr[i + 1] {
                out[i] += self.values[p] * x[self.col_idx[p]];
            }
        }
        out
    }

    /// The length of the longest chain of rows linked by direct
    /// dependencies (row `i` depends on row `j` when `L_ij != 0`) — the
    /// critical path of the forward solve, in rows. A lower bound on
    /// parallel solve time in units of row work.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![1usize; self.n];
        let mut max = if self.n == 0 { 0 } else { 1 };
        for i in 0..self.n {
            for &j in self.row_cols(i) {
                depth[i] = depth[i].max(depth[j] + 1);
            }
            max = max.max(depth[i]);
        }
        max
    }
}

/// An upper-triangular matrix with an explicit (non-unit) diagonal, stored
/// as diagonal + strictly-upper CSR — the shape of ILU(0)'s `U` factor and
/// of the backward-substitution half of a preconditioner application.
#[derive(Debug, Clone, PartialEq)]
pub struct UpperTriangularMatrix {
    n: usize,
    diag: Vec<f64>,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl UpperTriangularMatrix {
    /// Splits an upper-triangular CSR matrix (diagonal included, as
    /// produced by [`crate::ilu::ilu0`]) into diagonal + strictly-upper
    /// storage.
    ///
    /// # Panics
    /// Panics if the matrix is not square, has an entry below the
    /// diagonal, is missing a diagonal entry, or has a zero diagonal.
    pub fn from_upper(m: &CsrMatrix) -> Self {
        assert_eq!(
            m.nrows(),
            m.ncols(),
            "upper triangular matrix must be square"
        );
        let n = m.nrows();
        let mut diag = vec![0.0f64; n];
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(m.nnz().saturating_sub(n));
        let mut values = Vec::with_capacity(m.nnz().saturating_sub(n));
        for i in 0..n {
            let mut saw_diag = false;
            for (&j, &v) in m.row_cols(i).iter().zip(m.row_values(i)) {
                assert!(j >= i, "entry ({i},{j}) is below the diagonal");
                if j == i {
                    assert!(v != 0.0, "zero diagonal at row {i}");
                    diag[i] = v;
                    saw_diag = true;
                } else {
                    col_idx.push(j);
                    values.push(v);
                    row_ptr[i + 1] += 1;
                }
            }
            assert!(saw_diag, "row {i} has no diagonal entry");
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            n,
            diag,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Dimension `n`.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of strictly-upper stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The diagonal.
    #[inline]
    pub fn diag(&self) -> &[f64] {
        &self.diag
    }

    /// Column indices of row `i`'s strictly-upper entries (all `> i`).
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Coefficients of row `i`'s strictly-upper entries.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Sequential backward substitution: returns `x` with `U x = rhs`.
    pub fn backward_solve(&self, rhs: &[f64]) -> Vec<f64> {
        assert_eq!(rhs.len(), self.n, "rhs length mismatch");
        let mut x = vec![0.0; self.n];
        for i in (0..self.n).rev() {
            let mut acc = rhs[i];
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                acc -= v * x[j];
            }
            x[i] = acc / self.diag[i];
        }
        x
    }

    /// Multiplies `U x` (diagonal included): for manufacturing solutions.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "x length mismatch");
        let mut out: Vec<f64> = (0..self.n).map(|i| self.diag[i] * x[i]).collect();
        #[allow(clippy::needless_range_loop)] // row index mirrors CSR layout
        for i in 0..self.n {
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                out[i] += v * x[j];
            }
        }
        out
    }

    /// Longest chain of rows linked by direct dependencies in the backward
    /// solve (row `i` depends on row `j > i` when `U_ij != 0`).
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![1usize; self.n];
        let mut max = if self.n == 0 { 0 } else { 1 };
        for i in (0..self.n).rev() {
            for &j in self.row_cols(i) {
                depth[i] = depth[i].max(depth[j] + 1);
            }
            max = max.max(depth[i]);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{forward_solve_unit, max_diff};
    use crate::ilu::ilu0;
    use crate::stencil::five_point;

    fn small_tri() -> TriangularMatrix {
        // L = [[1,0,0],[0.5,1,0],[0.25,-1,1]] (strict lower stored)
        let m = CsrMatrix::from_parts(3, 3, vec![0, 0, 1, 3], vec![0, 0, 1], vec![0.5, 0.25, -1.0]);
        TriangularMatrix::from_strict_lower(&m)
    }

    #[test]
    fn figure7_arrays_are_exposed() {
        let t = small_tri();
        assert_eq!(t.n(), 3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.low(2), 1);
        assert_eq!(t.high(2), 3);
        assert_eq!(t.column(), &[0, 0, 1]);
        assert_eq!(t.row_cols(2), &[0, 1]);
        assert_eq!(t.row_values(1), &[0.5]);
    }

    #[test]
    fn forward_solve_matches_dense_reference() {
        let t = small_tri();
        let dense = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.5, 1.0, 0.0],
            vec![0.25, -1.0, 1.0],
        ];
        let rhs = vec![2.0, 1.0, -3.0];
        let got = t.forward_solve(&rhs);
        let expect = forward_solve_unit(&dense, &rhs);
        assert!(max_diff(&got, &expect) < 1e-14);
    }

    #[test]
    fn matvec_then_solve_round_trips() {
        let a = five_point(8, 8, 21);
        let t = TriangularMatrix::from_strict_lower(&ilu0(&a).l);
        let x: Vec<f64> = (0..t.n()).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect();
        let rhs = t.matvec(&x);
        let got = t.forward_solve(&rhs);
        assert!(max_diff(&got, &x) < 1e-10);
    }

    #[test]
    fn critical_path_of_chain_is_n() {
        // Bidiagonal: row i depends on row i-1 -> critical path = n.
        let m = CsrMatrix::from_parts(
            4,
            4,
            vec![0, 0, 1, 2, 3],
            vec![0, 1, 2],
            vec![1.0, 1.0, 1.0],
        );
        let t = TriangularMatrix::from_strict_lower(&m);
        assert_eq!(t.critical_path_len(), 4);
    }

    #[test]
    fn critical_path_of_diagonal_is_one() {
        let m = CsrMatrix::from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]);
        let t = TriangularMatrix::from_strict_lower(&m);
        assert_eq!(t.critical_path_len(), 1);
        assert_eq!(t.forward_solve(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "not strictly lower")]
    fn diagonal_entry_rejected() {
        let m = CsrMatrix::from_parts(2, 2, vec![0, 1, 1], vec![0], vec![1.0]);
        let _ = TriangularMatrix::from_strict_lower(&m);
    }

    #[test]
    fn empty_system() {
        let m = CsrMatrix::from_parts(0, 0, vec![0], vec![], vec![]);
        let t = TriangularMatrix::from_strict_lower(&m);
        assert_eq!(t.n(), 0);
        assert_eq!(t.critical_path_len(), 0);
        assert!(t.forward_solve(&[]).is_empty());
    }

    #[test]
    fn upper_from_ilu_round_trips() {
        let a = five_point(7, 6, 23);
        let u = UpperTriangularMatrix::from_upper(&ilu0(&a).u);
        assert_eq!(u.n(), 42);
        assert!(u.nnz() > 0);
        let x: Vec<f64> = (0..u.n()).map(|i| 0.25 + (i % 4) as f64).collect();
        let rhs = u.matvec(&x);
        let got = u.backward_solve(&rhs);
        assert!(max_diff(&got, &x) < 1e-9);
    }

    #[test]
    fn upper_matches_dense_backward_solve() {
        let a = five_point(5, 5, 29);
        let f = ilu0(&a);
        let u = UpperTriangularMatrix::from_upper(&f.u);
        let rhs: Vec<f64> = (0..u.n()).map(|i| (i % 3) as f64 - 1.0).collect();
        let expect = crate::dense::backward_solve(&f.u.to_dense(), &rhs);
        let got = u.backward_solve(&rhs);
        assert!(max_diff(&got, &expect) < 1e-10);
    }

    #[test]
    fn upper_critical_path_of_reverse_chain() {
        // Upper bidiagonal: row i depends on i+1 -> path n.
        let m = CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 4, 5],
            vec![0, 1, 1, 2, 2],
            vec![2.0, 1.0, 2.0, 1.0, 2.0],
        );
        let u = UpperTriangularMatrix::from_upper(&m);
        assert_eq!(u.critical_path_len(), 3);
        assert_eq!(u.diag(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "below the diagonal")]
    fn upper_rejects_lower_entries() {
        let m = CsrMatrix::from_parts(2, 2, vec![0, 1, 3], vec![0, 0, 1], vec![1.0; 3]);
        let _ = UpperTriangularMatrix::from_upper(&m);
    }

    #[test]
    #[should_panic(expected = "zero diagonal")]
    fn upper_rejects_zero_diagonal() {
        let m = CsrMatrix::from_parts(1, 1, vec![0, 1], vec![0], vec![0.0]);
        let _ = UpperTriangularMatrix::from_upper(&m);
    }
}
