//! Small dense-vector kernels shared by solvers and benches.

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Max-norm of `a − b`.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
    }
}
