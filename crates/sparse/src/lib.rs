//! # doacross-sparse — sparse-matrix substrate for the Table 1 workloads
//!
//! The paper's §3.2 evaluates the preprocessed doacross on sparse
//! triangular systems "derived from incompletely factored matrices obtained
//! from a variety of discretized partial differential equations", with the
//! appendix naming five systems:
//!
//! | name  | discretization                    | grid      | unknowns |
//! |-------|-----------------------------------|-----------|----------|
//! | SPE2  | block 7-point, 6×6 blocks         | 6×6×5     | 1080     |
//! | SPE5  | block 7-point, 3×3 blocks         | 16×23×3   | 3312     |
//! | 5-PT  | 5-point central difference        | 63×63     | 3969     |
//! | 7-PT  | 7-point central difference        | 20×20×20  | 8000     |
//! | 9-PT  | 9-point box scheme                | 63×63     | 3969     |
//!
//! This crate rebuilds that pipeline from scratch: CSR storage
//! ([`CsrMatrix`]), the stencil operators ([`stencil`], [`block`]), ILU(0)
//! incomplete factorization ([`ilu`]), and the [`tri::TriangularMatrix`]
//! shape consumed by the Figure 7 solve loop. The original SPE matrices are
//! proprietary reservoir-simulation data; we regenerate structurally
//! identical operators with deterministic, diagonally dominant synthetic
//! coefficients — the dependence structure of the triangular solve (the
//! thing the paper measures) is a function of the sparsity pattern only.

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod block;
pub mod builder;
pub mod csr;
pub mod dense;
pub mod ilu;
pub mod io;
pub mod problems;
pub mod spmv;
pub mod stencil;
pub mod tri;
pub mod vec_ops;

pub use block::block_seven_point;
pub use builder::TripletBuilder;
pub use csr::CsrMatrix;
pub use ilu::{ilu0, IluFactors};
pub use problems::{table1_problems, Problem, ProblemKind, TriSystem};
pub use stencil::{five_point, nine_point, seven_point};
pub use tri::{TriangularMatrix, UpperTriangularMatrix};
