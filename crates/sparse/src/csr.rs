//! Compressed sparse row storage.

/// A sparse matrix in CSR form: row `i`'s nonzeros live at positions
/// `row_ptr[i] .. row_ptr[i+1]` of `col_idx`/`values`, with column indices
/// strictly increasing within each row.
///
/// This is the FORTRAN `low(i)/high(i)/column(j)/a(j)` layout of the
/// paper's Figure 7, modernized: `low(i) = row_ptr[i]`,
/// `high(i) = row_ptr[i+1] - 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the invariants
    /// (monotone `row_ptr`, sorted strictly-increasing columns per row,
    /// in-range indices, consistent lengths).
    ///
    /// # Panics
    /// Panics with a descriptive message if any invariant fails — matrix
    /// construction is a setup-time operation, so the cost of full
    /// validation is acceptable and the failure mode should be loud.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows + 1,
            "row_ptr must have nrows+1 entries"
        );
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        assert_eq!(
            col_idx.len(),
            values.len(),
            "col_idx/values length mismatch"
        );
        for i in 0..nrows {
            assert!(row_ptr[i] <= row_ptr[i + 1], "row_ptr must be monotone");
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for w in row.windows(2) {
                assert!(w[0] < w[1], "row {i}: columns must strictly increase");
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "row {i}: column {last} out of range");
            }
        }
        Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Self::from_parts(n, n, (0..=n).collect(), (0..n).collect(), vec![1.0; n])
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// All values, row-major.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices of row `i`.
    #[inline]
    pub fn row_cols(&self, i: usize) -> &[usize] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Values of row `i`.
    #[inline]
    pub fn row_values(&self, i: usize) -> &[f64] {
        &self.values[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// The stored value at `(i, j)`, or `None` if the position is not in
    /// the pattern. Binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        let cols = self.row_cols(i);
        cols.binary_search(&j)
            .ok()
            .map(|k| self.values[self.row_ptr[i] + k])
    }

    /// Whether every stored entry satisfies `col <= row` (lower
    /// triangular pattern).
    pub fn is_lower_triangular(&self) -> bool {
        (0..self.nrows).all(|i| self.row_cols(i).iter().all(|&j| j <= i))
    }

    /// Whether every stored entry satisfies `col >= row` (upper
    /// triangular pattern).
    pub fn is_upper_triangular(&self) -> bool {
        (0..self.nrows).all(|i| self.row_cols(i).iter().all(|&j| j >= i))
    }

    /// Dense copy (row-major `nrows × ncols`); for tests and small
    /// reference computations only.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut out = vec![vec![0.0; self.ncols]; self.nrows];
        #[allow(clippy::needless_range_loop)] // row index mirrors CSR layout
        for i in 0..self.nrows {
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                out[i][j] = v;
            }
        }
        out
    }

    /// Transpose (CSR of the transposed matrix), via counting sort — O(nnz).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            counts[j + 1] += 1;
        }
        for k in 0..self.ncols {
            counts[k + 1] += counts[k];
        }
        let row_ptr_t = counts.clone();
        let mut cursor = counts;
        let mut col_idx_t = vec![0usize; self.nnz()];
        let mut values_t = vec![0.0f64; self.nnz()];
        for i in 0..self.nrows {
            for (&j, &v) in self.row_cols(i).iter().zip(self.row_values(i)) {
                let slot = cursor[j];
                cursor[j] += 1;
                col_idx_t[slot] = i;
                values_t[slot] = v;
            }
        }
        CsrMatrix::from_parts(self.ncols, self.nrows, row_ptr_t, col_idx_t, values_t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// [[1, 2, 0], [0, 3, 0], [4, 0, 5]]
    fn sample() -> CsrMatrix {
        CsrMatrix::from_parts(
            3,
            3,
            vec![0, 2, 3, 5],
            vec![0, 1, 1, 0, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0],
        )
    }

    #[test]
    fn basic_queries() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row_cols(0), &[0, 1]);
        assert_eq!(m.row_values(2), &[4.0, 5.0]);
        assert_eq!(m.get(0, 1), Some(2.0));
        assert_eq!(m.get(1, 0), None);
        assert_eq!(m.get(2, 2), Some(5.0));
    }

    #[test]
    fn to_dense_round_trip() {
        let d = sample().to_dense();
        assert_eq!(
            d,
            vec![
                vec![1.0, 2.0, 0.0],
                vec![0.0, 3.0, 0.0],
                vec![4.0, 0.0, 5.0]
            ]
        );
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        let d = m.to_dense();
        let dt = t.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(d[i][j], dt[j][i], "({i},{j})");
            }
        }
        // Double transpose is the identity.
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn identity_properties() {
        let i5 = CsrMatrix::identity(5);
        assert_eq!(i5.nnz(), 5);
        assert!(i5.is_lower_triangular());
        assert!(i5.is_upper_triangular());
        for k in 0..5 {
            assert_eq!(i5.get(k, k), Some(1.0));
        }
    }

    #[test]
    fn triangularity_checks() {
        let lower = CsrMatrix::from_parts(3, 3, vec![0, 1, 3, 4], vec![0, 0, 1, 2], vec![1.0; 4]);
        assert!(lower.is_lower_triangular());
        assert!(!lower.is_upper_triangular());
        assert!(!sample().is_lower_triangular());
    }

    #[test]
    #[should_panic(expected = "columns must strictly increase")]
    fn duplicate_columns_rejected() {
        let _ = CsrMatrix::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_column_rejected() {
        let _ = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![2], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn inconsistent_row_ptr_rejected() {
        let _ = CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    fn empty_matrix() {
        let m = CsrMatrix::from_parts(0, 0, vec![0], vec![], vec![]);
        assert_eq!(m.nnz(), 0);
        assert!(m.is_lower_triangular());
        let t = m.transpose();
        assert_eq!(t.nrows(), 0);
    }
}
