//! Matrix Market (coordinate format) I/O.
//!
//! The paper's SPE matrices came from external reservoir simulations; a
//! downstream user of this library will likewise want to feed real systems
//! in. This module reads and writes the MatrixMarket exchange format
//! (`%%MatrixMarket matrix coordinate real general`), the de-facto standard
//! for sparse test matrices, with no dependencies beyond std.

use crate::builder::TripletBuilder;
use crate::csr::CsrMatrix;
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MmError::Io(e) => Some(e),
            MmError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a `matrix coordinate real general` (or `symmetric`) Matrix Market
/// stream into a [`CsrMatrix`]. Symmetric inputs are expanded (mirror
/// entries added for off-diagonal positions); duplicate entries are summed,
/// as the format specifies for assembled matrices.
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CsrMatrix, MmError> {
    let mut lines = reader.lines();

    // Header.
    let header = lines.next().ok_or_else(|| parse_err("empty input"))??;
    let h: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_lowercase())
        .collect();
    if h.len() < 5 || h[0] != "%%matrixmarket" || h[1] != "matrix" {
        return Err(parse_err(format!("bad header line: {header:?}")));
    }
    if h[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    if h[3] != "real" && h[3] != "integer" {
        return Err(parse_err(format!("unsupported field type {:?}", h[3])));
    }
    let symmetric = match h[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry {other:?}"))),
    };

    // Size line (after comments).
    let mut size_line = None;
    for line in lines.by_ref() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some(line);
        break;
    }
    let size_line = size_line.ok_or_else(|| parse_err("missing size line"))?;
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| parse_err(format!("bad size token {t:?}")))
        })
        .collect::<Result<_, _>>()?;
    let [nrows, ncols, nnz] = dims[..] else {
        return Err(parse_err(format!(
            "size line needs 3 fields: {size_line:?}"
        )));
    };

    let mut builder = TripletBuilder::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let r: usize = it
            .next()
            .ok_or_else(|| parse_err("missing row index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad row index in {t:?}")))?;
        let c: usize = it
            .next()
            .ok_or_else(|| parse_err("missing column index"))?
            .parse()
            .map_err(|_| parse_err(format!("bad column index in {t:?}")))?;
        let v: f64 = match it.next() {
            Some(tok) => tok
                .parse()
                .map_err(|_| parse_err(format!("bad value in {t:?}")))?,
            None => return Err(parse_err(format!("missing value in {t:?}"))),
        };
        if r == 0 || c == 0 || r > nrows || c > ncols {
            return Err(parse_err(format!(
                "entry ({r},{c}) outside 1..={nrows} x 1..={ncols}"
            )));
        }
        builder.push(r - 1, c - 1, v);
        if symmetric && r != c {
            builder.push(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!(
            "size line promised {nnz} entries, found {seen}"
        )));
    }
    Ok(builder.build())
}

/// Writes `m` as `matrix coordinate real general` Matrix Market.
pub fn write_matrix_market<W: Write>(m: &CsrMatrix, mut writer: W) -> Result<(), MmError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(
        writer,
        "% written by preprocessed-doacross (doacross-sparse)"
    )?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for i in 0..m.nrows() {
        for (&j, &v) in m.row_cols(i).iter().zip(m.row_values(i)) {
            writeln!(writer, "{} {} {:.17e}", i + 1, j + 1, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stencil::five_point;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<CsrMatrix, MmError> {
        read_matrix_market(BufReader::new(text.as_bytes()))
    }

    #[test]
    fn reads_general_coordinate() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 4\n\
             1 1 2.0\n\
             2 2 3.0\n\
             3 1 -1.0\n\
             3 3 4.0\n",
        )
        .unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.get(0, 0), Some(2.0));
        assert_eq!(m.get(2, 0), Some(-1.0));
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn expands_symmetric_inputs() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             2 2 2\n\
             1 1 5.0\n\
             2 1 1.5\n",
        )
        .unwrap();
        assert_eq!(m.nnz(), 3, "mirror entry added");
        assert_eq!(m.get(0, 1), Some(1.5));
        assert_eq!(m.get(1, 0), Some(1.5));
    }

    #[test]
    fn round_trips_a_stencil_matrix() {
        let a = five_point(6, 7, 99);
        let mut buf = Vec::new();
        write_matrix_market(&a, &mut buf).unwrap();
        let b = read_matrix_market(BufReader::new(&buf[..])).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse("").is_err());
        assert!(parse("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err());
        assert!(
            parse("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n").is_err()
        );
        assert!(
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n").is_err(),
            "out-of-range index"
        );
        assert!(
            parse("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n").is_err(),
            "entry count mismatch"
        );
        assert!(
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n").is_err(),
            "missing value"
        );
    }

    #[test]
    fn error_display_and_source() {
        let err = parse("").unwrap_err();
        assert!(err.to_string().contains("parse error"));
        let io_err = MmError::from(std::io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        use std::error::Error;
        assert!(io_err.source().is_some());
    }
}
