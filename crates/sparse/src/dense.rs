//! Small dense linear-algebra reference routines (tests and validation
//! only — everything here is O(n²) or worse and allocates freely).

/// Dense matrix–vector product `A x`.
pub fn matvec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
    a.iter()
        .map(|row| row.iter().zip(x).map(|(aij, xj)| aij * xj).sum())
        .collect()
}

/// Dense matrix product `A B`.
pub fn matmul(a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = a.len();
    let m = if b.is_empty() { 0 } else { b[0].len() };
    let k = b.len();
    let mut out = vec![vec![0.0; m]; n];
    for i in 0..n {
        for l in 0..k {
            let ail = a[i][l];
            if ail == 0.0 {
                continue;
            }
            for j in 0..m {
                out[i][j] += ail * b[l][j];
            }
        }
    }
    out
}

/// Forward substitution for a dense *unit* lower-triangular `L`:
/// solves `L y = rhs` (diagonal assumed 1 and not read).
pub fn forward_solve_unit(l: &[Vec<f64>], rhs: &[f64]) -> Vec<f64> {
    let n = l.len();
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = rhs[i];
        for j in 0..i {
            acc -= l[i][j] * y[j];
        }
        y[i] = acc;
    }
    y
}

/// Backward substitution for a dense upper-triangular `U`: solves
/// `U x = rhs`.
///
/// # Panics
/// Panics if a diagonal entry is exactly zero.
pub fn backward_solve(u: &[Vec<f64>], rhs: &[f64]) -> Vec<f64> {
    let n = u.len();
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = rhs[i];
        for j in i + 1..n {
            acc -= u[i][j] * x[j];
        }
        assert!(u[i][i] != 0.0, "zero diagonal at {i}");
        x[i] = acc / u[i][i];
    }
    x
}

/// Max-norm of the difference of two vectors.
pub fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let i = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(matvec(&i, &[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let b = vec![vec![5.0, 6.0], vec![7.0, 8.0]];
        assert_eq!(matmul(&a, &b), vec![vec![19.0, 22.0], vec![43.0, 50.0]]);
    }

    #[test]
    fn forward_solve_inverts_multiplication() {
        let l = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.5, 1.0, 0.0],
            vec![0.25, -1.0, 1.0],
        ];
        let y_true = vec![2.0, -1.0, 3.0];
        let rhs = matvec(&l, &y_true);
        let y = forward_solve_unit(&l, &rhs);
        assert!(max_diff(&y, &y_true) < 1e-12);
    }

    #[test]
    fn backward_solve_inverts_multiplication() {
        let u = vec![
            vec![2.0, 1.0, -1.0],
            vec![0.0, 3.0, 0.5],
            vec![0.0, 0.0, 4.0],
        ];
        let x_true = vec![1.0, -2.0, 0.5];
        let rhs = matvec(&u, &x_true);
        let x = backward_solve(&u, &rhs);
        assert!(max_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn max_diff_basics() {
        assert_eq!(max_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_diff(&[], &[]), 0.0);
    }
}
