//! ILU(0): incomplete LU factorization with zero fill-in.
//!
//! The paper's triangular systems "arise from incompletely factored
//! matrices obtained from a variety of discretized partial differential
//! equations" (§3.2, citing Baxter et al. 1988). ILU(0) computes `L` and
//! `U` factors restricted to the sparsity pattern of `A`: for every stored
//! position `(i,j)` of `A`, `(L·U)_{ij} = A_{ij}`, while positions outside
//! the pattern are simply dropped. `L` is unit lower triangular — exactly
//! the shape the Figure 7 solve loop consumes.

use crate::csr::CsrMatrix;

/// The result of [`ilu0`]: `A ≈ L·U` with `L` unit lower triangular
/// (diagonal implicit, not stored) and `U` upper triangular including the
/// diagonal. Both share `A`'s pattern split at the diagonal.
#[derive(Debug, Clone)]
pub struct IluFactors {
    /// Strictly-lower part; unit diagonal implied.
    pub l: CsrMatrix,
    /// Upper part including the diagonal.
    pub u: CsrMatrix,
}

/// Computes the ILU(0) factorization of a square matrix whose every row
/// contains a diagonal entry.
///
/// The algorithm is the standard in-place IKJ sweep restricted to the
/// pattern: for each row `i`, for each stored `k < i` in ascending order,
/// `a_ik /= u_kk`, then `a_ij -= a_ik · u_kj` for every stored `j > k` of
/// row `i` that is also stored in row `k`.
///
/// # Panics
/// Panics if the matrix is not square, a row is missing its diagonal, or a
/// pivot becomes zero (cannot happen for the diagonally dominant operators
/// this crate generates).
pub fn ilu0(a: &CsrMatrix) -> IluFactors {
    assert_eq!(a.nrows(), a.ncols(), "ILU(0) requires a square matrix");
    let n = a.nrows();
    let mut values = a.values().to_vec();
    let row_ptr = a.row_ptr();
    let col_idx = a.col_idx();

    // Position of each row's diagonal in the value array.
    let mut diag_pos = vec![usize::MAX; n];
    #[allow(clippy::needless_range_loop)] // CSR position arithmetic
    for i in 0..n {
        for p in row_ptr[i]..row_ptr[i + 1] {
            if col_idx[p] == i {
                diag_pos[i] = p;
                break;
            }
        }
        assert!(diag_pos[i] != usize::MAX, "row {i} has no diagonal entry");
    }

    // Dense scatter buffer marking, for the current row k being consumed,
    // the value position of each column present in row k's upper part.
    let mut upper_pos: Vec<usize> = vec![usize::MAX; n];

    for i in 0..n {
        let row = row_ptr[i]..row_ptr[i + 1];
        for p in row.clone() {
            let k = col_idx[p];
            if k >= i {
                break; // columns ascend; done with the lower part
            }
            // a_ik := a_ik / u_kk
            let pivot = values[diag_pos[k]];
            assert!(pivot != 0.0, "zero pivot at row {k}");
            values[p] /= pivot;
            let lik = values[p];

            // Scatter row k's upper entries (j > k), then update row i.
            for q in diag_pos[k] + 1..row_ptr[k + 1] {
                upper_pos[col_idx[q]] = q;
            }
            for pj in p + 1..row.end {
                let j = col_idx[pj];
                let q = upper_pos[j];
                if q != usize::MAX {
                    values[pj] -= lik * values[q];
                }
            }
            for q in diag_pos[k] + 1..row_ptr[k + 1] {
                upper_pos[col_idx[q]] = usize::MAX;
            }
        }
    }

    // Split into strict-lower L and upper (incl. diagonal) U.
    let mut l_rp = vec![0usize; n + 1];
    let mut u_rp = vec![0usize; n + 1];
    let mut l_ci = Vec::new();
    let mut u_ci = Vec::new();
    let mut l_v = Vec::new();
    let mut u_v = Vec::new();
    for i in 0..n {
        for p in row_ptr[i]..row_ptr[i + 1] {
            let j = col_idx[p];
            if j < i {
                l_ci.push(j);
                l_v.push(values[p]);
                l_rp[i + 1] += 1;
            } else {
                u_ci.push(j);
                u_v.push(values[p]);
                u_rp[i + 1] += 1;
            }
        }
    }
    for i in 0..n {
        l_rp[i + 1] += l_rp[i];
        u_rp[i + 1] += u_rp[i];
    }
    IluFactors {
        l: CsrMatrix::from_parts(n, n, l_rp, l_ci, l_v),
        u: CsrMatrix::from_parts(n, n, u_rp, u_ci, u_v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::matmul;
    use crate::stencil::{five_point, nine_point, seven_point};

    /// Checks the defining ILU(0) property: (L·U)_{ij} == A_{ij} for every
    /// stored position (i,j) of A.
    fn assert_ilu0_property(a: &CsrMatrix, tol: f64) {
        let f = ilu0(a);
        assert!(f.l.is_lower_triangular());
        assert!(f.u.is_upper_triangular());
        // Dense L with unit diagonal.
        let n = a.nrows();
        let mut ld = f.l.to_dense();
        for (i, row) in ld.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let ud = f.u.to_dense();
        let prod = matmul(&ld, &ud);
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for (&j, &aij) in a.row_cols(i).iter().zip(a.row_values(i)) {
                let err = (prod[i][j] - aij).abs();
                assert!(
                    err <= tol * (1.0 + aij.abs()),
                    "(LU)[{i}][{j}] = {} vs A = {aij}",
                    prod[i][j]
                );
            }
        }
    }

    #[test]
    fn ilu0_exact_on_pattern_for_five_point() {
        let a = five_point(6, 5, 3);
        assert_ilu0_property(&a, 1e-12);
    }

    #[test]
    fn ilu0_exact_on_pattern_for_seven_point() {
        let a = seven_point(4, 3, 3, 4);
        assert_ilu0_property(&a, 1e-12);
    }

    #[test]
    fn ilu0_exact_on_pattern_for_nine_point() {
        let a = nine_point(5, 5, 5);
        assert_ilu0_property(&a, 1e-12);
    }

    #[test]
    fn ilu0_exact_on_pattern_for_block_operator() {
        let a = crate::block::block_seven_point(3, 2, 2, 2, 6);
        assert_ilu0_property(&a, 1e-12);
    }

    #[test]
    fn ilu0_is_exact_lu_for_tridiagonal() {
        // A tridiagonal matrix has no fill-in, so ILU(0) == LU and
        // L·U == A everywhere, not just on the pattern.
        let a = five_point(6, 1, 9); // 1D chain = tridiagonal
        let f = ilu0(&a);
        let n = a.nrows();
        let mut ld = f.l.to_dense();
        for (i, row) in ld.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let prod = matmul(&ld, &f.u.to_dense());
        let ad = a.to_dense();
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (prod[i][j] - ad[i][j]).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    prod[i][j],
                    ad[i][j]
                );
            }
        }
    }

    #[test]
    fn l_pattern_is_strict_lower_of_a() {
        let a = five_point(5, 4, 8);
        let f = ilu0(&a);
        for i in 0..a.nrows() {
            let expect: Vec<usize> = a.row_cols(i).iter().copied().filter(|&j| j < i).collect();
            assert_eq!(f.l.row_cols(i), &expect[..], "row {i}");
        }
    }

    #[test]
    fn identity_factors_trivially() {
        let a = CsrMatrix::identity(4);
        let f = ilu0(&a);
        assert_eq!(f.l.nnz(), 0);
        assert_eq!(f.u.nnz(), 4);
        for i in 0..4 {
            assert_eq!(f.u.get(i, i), Some(1.0));
        }
    }

    #[test]
    #[should_panic(expected = "no diagonal entry")]
    fn missing_diagonal_rejected() {
        let a = CsrMatrix::from_parts(2, 2, vec![0, 1, 2], vec![1, 0], vec![1.0, 1.0]);
        let _ = ilu0(&a);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let a = CsrMatrix::from_parts(1, 2, vec![0, 1], vec![0], vec![1.0]);
        let _ = ilu0(&a);
    }
}
