//! The five Table 1 test problems, generated end to end.
//!
//! Each [`Problem`] builds the appendix's discretization, runs ILU(0), and
//! exposes the unit lower-triangular factor as a [`TriSystem`] with a
//! manufactured right-hand side whose exact solution is known — the same
//! pipeline the paper used (incomplete factorizations for preconditioned
//! Krylov solvers, where the `L` and `U` solves dominate sequential time).

use crate::block::block_seven_point;
use crate::csr::CsrMatrix;
use crate::ilu::ilu0;
use crate::stencil::{five_point, nine_point, seven_point};
use crate::tri::TriangularMatrix;

/// Which Table 1 problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProblemKind {
    /// Thermal steam-injection simulation: block 7-point, 6×6×5 grid,
    /// 6×6 blocks, 1080 equations.
    Spe2,
    /// Black-oil model: block 7-point, 16×23×3 grid, 3×3 blocks,
    /// 3312 equations.
    Spe5,
    /// 5-point central difference on 63×63, 3969 equations.
    FivePt,
    /// 7-point central difference on 20×20×20, 8000 equations.
    SevenPt,
    /// 9-point box scheme on 63×63, 3969 equations.
    NinePt,
}

impl ProblemKind {
    /// The paper's name for the problem.
    pub fn name(&self) -> &'static str {
        match self {
            ProblemKind::Spe2 => "SPE2",
            ProblemKind::Spe5 => "SPE5",
            ProblemKind::FivePt => "5-PT",
            ProblemKind::SevenPt => "7-PT",
            ProblemKind::NinePt => "9-PT",
        }
    }

    /// Number of equations the appendix specifies.
    pub fn equations(&self) -> usize {
        match self {
            ProblemKind::Spe2 => 1080,
            ProblemKind::Spe5 => 3312,
            ProblemKind::FivePt => 3969,
            ProblemKind::SevenPt => 8000,
            ProblemKind::NinePt => 3969,
        }
    }

    /// All five, in Table 1 order.
    pub fn all() -> [ProblemKind; 5] {
        [
            ProblemKind::Spe2,
            ProblemKind::Spe5,
            ProblemKind::FivePt,
            ProblemKind::SevenPt,
            ProblemKind::NinePt,
        ]
    }

    /// Builds the discretized operator (deterministic for a given seed).
    pub fn matrix(&self, seed: u64) -> CsrMatrix {
        match self {
            ProblemKind::Spe2 => block_seven_point(6, 6, 5, 6, seed),
            ProblemKind::Spe5 => block_seven_point(16, 23, 3, 3, seed),
            ProblemKind::FivePt => five_point(63, 63, seed),
            ProblemKind::SevenPt => seven_point(20, 20, 20, seed),
            ProblemKind::NinePt => nine_point(63, 63, seed),
        }
    }
}

/// A fully assembled Table 1 problem: the PDE operator plus its name.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Which appendix entry this is.
    pub kind: ProblemKind,
    /// The discretized operator `A`.
    pub a: CsrMatrix,
}

impl Problem {
    /// Builds the problem with the workspace's default seed (fixed so every
    /// experiment and test sees identical systems).
    pub fn build(kind: ProblemKind) -> Self {
        Self::build_seeded(kind, 0x5EED + kind.equations() as u64)
    }

    /// Builds with an explicit seed.
    pub fn build_seeded(kind: ProblemKind, seed: u64) -> Self {
        Self {
            kind,
            a: kind.matrix(seed),
        }
    }

    /// ILU(0)-factors the operator and packages the unit lower-triangular
    /// solve with a manufactured exact solution.
    pub fn triangular_system(&self) -> TriSystem {
        let factors = ilu0(&self.a);
        let l = TriangularMatrix::from_strict_lower(&factors.l);
        let n = l.n();
        let solution: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect();
        let rhs = l.matvec(&solution);
        TriSystem {
            kind: self.kind,
            l,
            rhs,
            solution,
        }
    }
}

/// A unit lower-triangular system `L y = rhs` with known solution — the
/// workload of the paper's Figure 7 loop and Table 1.
#[derive(Debug, Clone)]
pub struct TriSystem {
    /// Which Table 1 problem this came from.
    pub kind: ProblemKind,
    /// The unit lower-triangular factor.
    pub l: TriangularMatrix,
    /// Manufactured right-hand side.
    pub rhs: Vec<f64>,
    /// The exact solution `L⁻¹ rhs` (by construction).
    pub solution: Vec<f64>,
}

impl TriSystem {
    /// Dimension of the system.
    pub fn n(&self) -> usize {
        self.l.n()
    }
}

/// Builds all five Table 1 problems (deterministic).
pub fn table1_problems() -> Vec<Problem> {
    ProblemKind::all()
        .iter()
        .map(|&k| Problem::build(k))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vec_ops::max_abs_diff;

    #[test]
    fn sizes_match_the_appendix() {
        for kind in ProblemKind::all() {
            let p = Problem::build(kind);
            assert_eq!(
                p.a.nrows(),
                kind.equations(),
                "{} size mismatch",
                kind.name()
            );
        }
    }

    #[test]
    fn names_match_table1() {
        let names: Vec<&str> = ProblemKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["SPE2", "SPE5", "5-PT", "7-PT", "9-PT"]);
    }

    #[test]
    fn triangular_systems_solve_to_manufactured_solution() {
        // Use the two small problems to keep test time modest; the large
        // ones are covered by integration tests.
        for kind in [ProblemKind::Spe2, ProblemKind::FivePt] {
            let sys = Problem::build(kind).triangular_system();
            let y = sys.l.forward_solve(&sys.rhs);
            let err = max_abs_diff(&y, &sys.solution);
            assert!(err < 1e-8, "{}: err {err}", kind.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Problem::build(ProblemKind::Spe2);
        let b = Problem::build(ProblemKind::Spe2);
        assert_eq!(a.a, b.a);
    }

    #[test]
    fn triangular_structure_is_nontrivial() {
        let sys = Problem::build(ProblemKind::Spe2).triangular_system();
        assert!(sys.l.nnz() > 0);
        let cp = sys.l.critical_path_len();
        assert!(cp > 1, "must have cross-row dependencies");
        assert!(cp <= sys.n(), "critical path bounded by n");
    }
}
