//! Sparse matrix–vector products (sequential reference kernels).

use crate::csr::CsrMatrix;

/// `y = A x` for a CSR matrix.
///
/// # Panics
/// Panics if `x.len() != a.ncols()`.
pub fn csr_matvec(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), a.ncols(), "x length mismatch");
    let mut y = vec![0.0; a.nrows()];
    #[allow(clippy::needless_range_loop)] // row index mirrors CSR layout
    for i in 0..a.nrows() {
        let mut acc = 0.0;
        for (&j, &v) in a.row_cols(i).iter().zip(a.row_values(i)) {
            acc += v * x[j];
        }
        y[i] = acc;
    }
    y
}

/// Residual max-norm `‖A x − b‖_∞`.
pub fn residual_inf_norm(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
    csr_matvec(a, x)
        .iter()
        .zip(b)
        .map(|(ax, bi)| (ax - bi).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::matvec;
    use crate::stencil::nine_point;

    #[test]
    fn csr_matvec_matches_dense() {
        let a = nine_point(5, 4, 17);
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
        let sparse = csr_matvec(&a, &x);
        let dense = matvec(&a.to_dense(), &x);
        for (s, d) in sparse.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_matvec() {
        let i = CsrMatrix::identity(3);
        assert_eq!(csr_matvec(&i, &[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn residual_zero_for_exact_solution() {
        let i = CsrMatrix::identity(3);
        assert_eq!(
            residual_inf_norm(&i, &[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]),
            0.0
        );
        assert_eq!(
            residual_inf_norm(&i, &[1.0, 2.0, 3.0], &[1.0, 2.0, 4.0]),
            1.0
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_x_length_panics() {
        let i = CsrMatrix::identity(3);
        let _ = csr_matvec(&i, &[1.0]);
    }
}
