//! Finite-difference stencil operators on regular grids.
//!
//! Generators for the scalar Table 1 problems: the 5-point central
//! difference (2D), 7-point central difference (3D), and 9-point box
//! scheme (2D) of the paper's appendix. Grid points are numbered in natural
//! (lexicographic) order. Coefficients are synthetic but deterministic
//! (seeded [`SmallRng`]) and rows are made strictly diagonally dominant so
//! the ILU(0) factorization downstream is well defined; the triangular
//! solve's *dependence structure* — what the paper measures — depends only
//! on the sparsity pattern.

use crate::builder::TripletBuilder;
use crate::csr::CsrMatrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Assembles a matrix from an adjacency enumeration: `neighbors(p)` yields
/// the off-diagonal columns of row `p`. Off-diagonal values are drawn from
/// `-(1.0 + 0.25·u)` with `u ∈ [0,1)`, and the diagonal is set to
/// `1.0 + u + Σ|off-diagonal|`, making every row strictly dominant.
fn assemble<F, I>(n: usize, seed: u64, neighbors: F) -> CsrMatrix
where
    F: Fn(usize) -> I,
    I: IntoIterator<Item = usize>,
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = TripletBuilder::with_capacity(n, n, n * 8);
    for p in 0..n {
        let mut offdiag_sum = 0.0;
        for q in neighbors(p) {
            debug_assert!(q < n && q != p);
            let v = -(1.0 + 0.25 * rng.gen::<f64>());
            offdiag_sum += v.abs();
            b.push(p, q, v);
        }
        b.push(p, p, 1.0 + rng.gen::<f64>() + offdiag_sum);
    }
    b.build()
}

/// 5-point central-difference operator on an `nx × ny` grid (the paper's
/// 5-PT problem uses 63×63 → 3969 equations).
pub fn five_point(nx: usize, ny: usize, seed: u64) -> CsrMatrix {
    let idx = move |x: usize, y: usize| y * nx + x;
    assemble(nx * ny, seed, move |p| {
        let (x, y) = (p % nx, p / nx);
        let mut out = Vec::with_capacity(4);
        if x > 0 {
            out.push(idx(x - 1, y));
        }
        if x + 1 < nx {
            out.push(idx(x + 1, y));
        }
        if y > 0 {
            out.push(idx(x, y - 1));
        }
        if y + 1 < ny {
            out.push(idx(x, y + 1));
        }
        out
    })
}

/// 7-point central-difference operator on an `nx × ny × nz` grid (the
/// paper's 7-PT problem uses 20×20×20 → 8000 equations).
pub fn seven_point(nx: usize, ny: usize, nz: usize, seed: u64) -> CsrMatrix {
    let idx = move |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    assemble(nx * ny * nz, seed, move |p| {
        let x = p % nx;
        let y = (p / nx) % ny;
        let z = p / (nx * ny);
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push(idx(x - 1, y, z));
        }
        if x + 1 < nx {
            out.push(idx(x + 1, y, z));
        }
        if y > 0 {
            out.push(idx(x, y - 1, z));
        }
        if y + 1 < ny {
            out.push(idx(x, y + 1, z));
        }
        if z > 0 {
            out.push(idx(x, y, z - 1));
        }
        if z + 1 < nz {
            out.push(idx(x, y, z + 1));
        }
        out
    })
}

/// 9-point box-scheme operator on an `nx × ny` grid: the 5-point cross plus
/// the four diagonal neighbors (the paper's 9-PT problem uses 63×63).
pub fn nine_point(nx: usize, ny: usize, seed: u64) -> CsrMatrix {
    let idx = move |x: usize, y: usize| y * nx + x;
    assemble(nx * ny, seed, move |p| {
        let (x, y) = (p % nx, p / nx);
        let mut out = Vec::with_capacity(8);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let xx = x as i64 + dx;
                let yy = y as i64 + dy;
                if xx >= 0 && (xx as usize) < nx && yy >= 0 && (yy as usize) < ny {
                    out.push(idx(xx as usize, yy as usize));
                }
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row_is_dominant(m: &CsrMatrix, i: usize) -> bool {
        let mut diag = 0.0;
        let mut off = 0.0;
        for (&j, &v) in m.row_cols(i).iter().zip(m.row_values(i)) {
            if j == i {
                diag = v.abs();
            } else {
                off += v.abs();
            }
        }
        diag > off
    }

    #[test]
    fn five_point_shape_and_pattern() {
        let m = five_point(4, 3, 1);
        assert_eq!(m.nrows(), 12);
        // Interior point (1,1) = index 5 has 4 neighbors + diagonal.
        assert_eq!(m.row_cols(5), &[1, 4, 5, 6, 9]);
        // Corner (0,0) has 2 neighbors + diagonal.
        assert_eq!(m.row_cols(0), &[0, 1, 4]);
        // nnz = 5*interior + boundary adjustments; count edges: horizontal
        // 3 per row x 3 rows x 2 directions + vertical 4 x 2 x 2 = ...
        // simpler invariant: symmetric pattern.
        let t = m.transpose();
        for i in 0..m.nrows() {
            assert_eq!(m.row_cols(i), t.row_cols(i), "pattern symmetric");
        }
    }

    #[test]
    fn seven_point_shape() {
        let m = seven_point(3, 3, 3, 2);
        assert_eq!(m.nrows(), 27);
        // Center point (1,1,1) = 13 has 6 neighbors + diagonal.
        assert_eq!(m.row_cols(13).len(), 7);
        // Corner has 3 neighbors + diagonal.
        assert_eq!(m.row_cols(0).len(), 4);
    }

    #[test]
    fn nine_point_shape() {
        let m = nine_point(4, 4, 3);
        assert_eq!(m.nrows(), 16);
        // Interior point (1,1) = 5 has 8 neighbors + diagonal.
        assert_eq!(m.row_cols(5).len(), 9);
        // Corner has 3 neighbors + diagonal.
        assert_eq!(m.row_cols(0).len(), 4);
    }

    #[test]
    fn all_stencils_are_diagonally_dominant() {
        for m in [
            five_point(7, 5, 11),
            seven_point(4, 3, 5, 12),
            nine_point(6, 6, 13),
        ] {
            for i in 0..m.nrows() {
                assert!(row_is_dominant(&m, i), "row {i}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = five_point(10, 10, 42);
        let b = five_point(10, 10, 42);
        assert_eq!(a, b);
        let c = five_point(10, 10, 43);
        assert_ne!(a.values(), c.values(), "different seed, different values");
        assert_eq!(a.col_idx(), c.col_idx(), "same pattern regardless of seed");
    }

    #[test]
    fn paper_sizes() {
        assert_eq!(five_point(63, 63, 0).nrows(), 3969);
        assert_eq!(nine_point(63, 63, 0).nrows(), 3969);
        // 7-PT at 20^3 = 8000 is built in the problems module; a smaller
        // instance checks the arithmetic here.
        assert_eq!(seven_point(20, 20, 20, 0).nrows(), 8000);
    }

    #[test]
    fn degenerate_grids() {
        // 1xN grids degenerate to tridiagonal chains.
        let m = five_point(5, 1, 7);
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.row_cols(2), &[1, 2, 3]);
        let m1 = five_point(1, 1, 7);
        assert_eq!(m1.nnz(), 1);
    }
}
