//! Interleaving-checker models of `doacross-par`'s synchronization
//! protocols: the executor's per-element ready-flag handoff (paper Fig. 5,
//! statement S4 — the protocol `WaitStrategy::wait_until` polls and the
//! workers' release stores complete) and the sense-reversing
//! [`SpinBarrier`](doacross_par::SpinBarrier) used between wavefront
//! levels.
//!
//! Each model restates the production algorithm in `interleave`'s shim
//! types and is checked across thread schedules; the mutation tests then
//! corrupt the protocol the specific ways a refactor plausibly would
//! (weaken an ordering, drop a store, reorder the barrier's reset past its
//! gate) and prove the checker reports each corruption with the right
//! failure kind — so a green checker run carries information.

use interleave::{
    check, check_random, spin_until, AtomicU64, AtomicUsize, Config, Failure, FailureKind,
    Ordering, Report, Shared,
};

// ---------------------------------------------------------------------------
// Ready-flag handoff: writer completes y[e] then raises ready[e]; a reader
// with a NewValue operand polls ready[e] before loading y[e].
// ---------------------------------------------------------------------------

struct ReadyFlag {
    y: Shared<f64>,
    ready: AtomicU64,
}

fn ready_flag() -> ReadyFlag {
    ReadyFlag {
        y: Shared::named("y[e]", 0.0),
        ready: AtomicU64::new(0),
    }
}

fn writer(m: &ReadyFlag, ordering: Ordering, raise_flag: bool) {
    m.y.write(2.5);
    if raise_flag {
        m.ready.store(1, ordering);
    }
}

fn reader(m: &ReadyFlag) -> f64 {
    // The executor's S4 busy-wait: WaitStrategy only varies *how* the
    // false polls are spent, never the exit condition, so one blocking
    // poll models every strategy.
    spin_until(|| m.ready.load(Ordering::Acquire) == 1);
    m.y.read()
}

#[test]
fn ready_flag_protocol_is_sound_across_all_interleavings() {
    let report: Report = check(
        &Config::default(),
        ready_flag,
        &[
            &|m: &ReadyFlag| writer(m, Ordering::Release, true),
            &|m: &ReadyFlag| assert_eq!(reader(m), 2.5),
        ],
    )
    .expect("release store / acquire poll covers the flow dependence");
    assert!(report.exhaustive, "the handoff model must be exhaustible");
}

#[test]
fn mutation_relaxed_ready_store_is_a_data_race() {
    let failure: Failure = check(
        &Config::default(),
        ready_flag,
        &[
            &|m: &ReadyFlag| writer(m, Ordering::Relaxed, true),
            &|m: &ReadyFlag| {
                let _ = reader(m);
            },
        ],
    )
    .expect_err("a relaxed flag store publishes nothing");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("y[e]")),
        "{failure}"
    );
    assert!(!failure.schedule.is_empty(), "counterexample must replay");
}

#[test]
fn mutation_dropped_ready_store_is_a_deadlock() {
    let failure = check(
        &Config::default(),
        ready_flag,
        &[
            &|m: &ReadyFlag| writer(m, Ordering::Release, false),
            &|m: &ReadyFlag| {
                let _ = reader(m);
            },
        ],
    )
    .expect_err("an unraised flag strands the waiter");
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock { blocked } if blocked == &[1]),
        "{failure}"
    );
}

// ---------------------------------------------------------------------------
// Sense-reversing spin barrier: the model mirrors `SpinBarrier::wait`
// (count AcqRel arrival, last arriver resets count *then* bumps the
// generation with a release store; spinners acquire the generation).
// ---------------------------------------------------------------------------

const PARTICIPANTS: usize = 2;

struct Barrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    slots: [Shared<u64>; PARTICIPANTS],
}

fn barrier() -> Barrier {
    Barrier {
        count: AtomicUsize::new(0),
        generation: AtomicUsize::new(0),
        slots: [Shared::named("slot[0]", 0), Shared::named("slot[1]", 0)],
    }
}

/// One `SpinBarrier::wait`. `gen_order` is the ordering of the leader's
/// generation bump; `reset_after_gate` reorders the count reset *after*
/// the generation bump (the mutation `SpinBarrier` documents it must
/// avoid).
fn barrier_wait(m: &Barrier, gen_order: Ordering, reset_after_gate: bool) -> bool {
    let gen = m.generation.load(Ordering::Acquire);
    let arrived = m.count.fetch_add(1, Ordering::AcqRel) + 1;
    if arrived == PARTICIPANTS {
        if reset_after_gate {
            m.generation.fetch_add(1, gen_order);
            m.count.store(0, Ordering::Relaxed);
        } else {
            m.count.store(0, Ordering::Relaxed);
            m.generation.fetch_add(1, gen_order);
        }
        return true;
    }
    spin_until(|| m.generation.load(Ordering::Acquire) != gen);
    false
}

/// A worker that publishes into its slot, waits, and reads the peer's
/// slot — the visibility contract wavefront levels rely on — for `phases`
/// consecutive generations. Like the production level loop (and
/// `SpinBarrier`'s own phase test), each phase takes the barrier twice:
/// once to publish the writes, once to retire the reads before the next
/// phase's writes land. (The checker found the read/next-write race when
/// this model had only one wait per phase.)
fn barrier_worker(
    m: &Barrier,
    tid: usize,
    phases: u64,
    gen_order: Ordering,
    reset_after_gate: bool,
) {
    for phase in 1..=phases {
        m.slots[tid].write(phase);
        barrier_wait(m, gen_order, reset_after_gate);
        let peer = m.slots[1 - tid].read();
        assert_eq!(
            peer, phase,
            "thread {tid}: peer write not visible after the barrier"
        );
        barrier_wait(m, gen_order, reset_after_gate);
    }
}

#[test]
fn spin_barrier_single_generation_is_sound_across_all_interleavings() {
    // One generation with no successor phase: write, wait, read. Small
    // enough to exhaust the schedule space completely.
    let report = check(
        &Config::default(),
        barrier,
        &[
            &|m: &Barrier| {
                m.slots[0].write(1);
                barrier_wait(m, Ordering::Release, false);
                assert_eq!(m.slots[1].read(), 1);
            },
            &|m: &Barrier| {
                m.slots[1].write(1);
                barrier_wait(m, Ordering::Release, false);
                assert_eq!(m.slots[0].read(), 1);
            },
        ],
    )
    .expect("one barrier generation orders the pre-barrier writes");
    assert!(report.exhaustive);
}

#[test]
fn spin_barrier_generation_reuse_is_sound() {
    // Two generations exercise the count reset and sense reversal. The
    // schedule space is too large to exhaust cheaply, so explore a capped
    // DFS frontier plus a seeded random sample.
    let cfg = Config {
        max_executions: 3_000,
        random_iterations: 1_500,
        ..Config::default()
    };
    check(
        &cfg,
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 2, Ordering::Release, false),
            &|m: &Barrier| barrier_worker(m, 1, 2, Ordering::Release, false),
        ],
    )
    .expect("reused generations stay sound (bounded DFS)");
    check_random(
        &cfg,
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 2, Ordering::Release, false),
            &|m: &Barrier| barrier_worker(m, 1, 2, Ordering::Release, false),
        ],
    )
    .expect("reused generations stay sound (random sample)");
}

#[test]
fn mutation_relaxed_generation_bump_is_a_data_race() {
    let failure = check(
        &Config::default(),
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 1, Ordering::Relaxed, false),
            &|m: &Barrier| barrier_worker(m, 1, 1, Ordering::Relaxed, false),
        ],
    )
    .expect_err("a relaxed gate publishes nothing across the barrier");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("slot")),
        "{failure}"
    );
}

#[test]
fn mutation_count_reset_after_gate_deadlocks_the_next_generation() {
    // With the reset reordered past the generation bump, an eager peer can
    // re-arrive before the reset, have its arrival clobbered to zero, and
    // leave both threads spinning on a generation nobody can bump.
    let failure = check(
        &Config {
            max_executions: 20_000,
            ..Config::default()
        },
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 2, Ordering::Release, true),
            &|m: &Barrier| barrier_worker(m, 1, 2, Ordering::Release, true),
        ],
    )
    .expect_err("the clobbered arrival must strand a generation");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "{failure}"
    );
}

// ---------------------------------------------------------------------------
// Poison-aware flag wait: a faulting writer deposits its partial progress,
// then publishes the region poison word (`RegionPoison`'s first-cause CAS in
// production; a single release store here) — and never raises the ready
// flag. A poison-aware waiter polls the flag AND the poison word, harvests
// the deposit, and aborts; a dead writer can no longer strand it.
// ---------------------------------------------------------------------------

struct PoisonedFlag {
    ready: AtomicU64,
    /// The region poison word: 0 = clean, nonzero = a packed `RegionFault`.
    poison: AtomicU64,
    /// The faulting worker's partial iteration count, deposited before the
    /// poison store (production: the counters-sink deposit before
    /// `abort_region`, which the partial `RunStats` are rebuilt from).
    partial: Shared<u64>,
}

fn poisoned_flag() -> PoisonedFlag {
    PoisonedFlag {
        ready: AtomicU64::new(0),
        poison: AtomicU64::new(0),
        partial: Shared::named("partial[w]", 0),
    }
}

/// A worker panicking mid-region: deposit what it got done, publish the
/// poison word, unwind — the ready flag is never raised.
fn faulting_writer(m: &PoisonedFlag, poison_order: Ordering) {
    m.partial.write(17);
    m.poison.store(1, poison_order);
}

/// The production wait loop with its poison poll: exits on the flag *or*
/// the poison word; on poison it harvests the deposit and aborts instead
/// of touching `y[e]`.
fn poison_aware_reader(m: &PoisonedFlag) -> Option<u64> {
    spin_until(|| m.ready.load(Ordering::Acquire) == 1 || m.poison.load(Ordering::Acquire) != 0);
    if m.poison.load(Ordering::Acquire) != 0 {
        return Some(m.partial.read());
    }
    None
}

#[test]
fn poisoned_flag_wait_always_terminates_and_harvests_the_deposit() {
    let report = check(
        &Config::default(),
        poisoned_flag,
        &[
            &|m: &PoisonedFlag| faulting_writer(m, Ordering::Release),
            &|m: &PoisonedFlag| {
                let harvested = poison_aware_reader(m)
                    .expect("the writer faulted, so the waiter must see poison");
                assert_eq!(harvested, 17, "deposit visible via the poison store");
            },
        ],
    )
    .expect("poison poll frees the waiter on every schedule");
    assert!(
        report.exhaustive,
        "the poisoned handoff must be exhaustible"
    );
}

#[test]
fn mutation_relaxed_poison_store_races_the_partial_deposit() {
    // Weakening the poison publication to Relaxed severs the deposit's
    // happens-before edge: the waiter can observe poison yet read the
    // partial counter concurrently with the faulting writer's store.
    let failure = check(
        &Config::default(),
        poisoned_flag,
        &[
            &|m: &PoisonedFlag| faulting_writer(m, Ordering::Relaxed),
            &|m: &PoisonedFlag| {
                let _ = poison_aware_reader(m);
            },
        ],
    )
    .expect_err("a relaxed poison store publishes no deposit");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("partial")),
        "{failure}"
    );
    assert!(!failure.schedule.is_empty(), "counterexample must replay");
}

#[test]
fn mutation_unchecked_wait_loop_deadlocks_on_a_faulted_writer() {
    // The pre-containment wait loop — flag only, no poison poll — is
    // exactly the hang this PR's protocol exists to prevent: the writer
    // died, the flag will never rise, the waiter spins forever.
    let failure = check(
        &Config::default(),
        poisoned_flag,
        &[
            &|m: &PoisonedFlag| faulting_writer(m, Ordering::Release),
            &|m: &PoisonedFlag| {
                spin_until(|| m.ready.load(Ordering::Acquire) == 1);
            },
        ],
    )
    .expect_err("an unchecked wait loop must strand the waiter");
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock { blocked } if blocked == &[1]),
        "{failure}"
    );
}

// ---------------------------------------------------------------------------
// Poison-aware barrier arrival: a participant that faults publishes poison
// instead of arriving; the spinners poll the generation AND the poison word
// (production: `SpinBarrier::wait`'s poison poll), so a lost arrival aborts
// the region instead of wedging every surviving level-mate.
// ---------------------------------------------------------------------------

struct PoisonedBarrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    poison: AtomicU64,
}

fn poisoned_barrier() -> PoisonedBarrier {
    PoisonedBarrier {
        count: AtomicUsize::new(0),
        generation: AtomicUsize::new(0),
        poison: AtomicU64::new(0),
    }
}

/// One poison-aware `SpinBarrier::wait` arrival. Returns `Err(())` when the
/// spin exit was the poison word rather than the generation bump.
fn poisoned_barrier_arrive(m: &PoisonedBarrier, poll_poison: bool) -> Result<bool, ()> {
    let gen = m.generation.load(Ordering::Acquire);
    let arrived = m.count.fetch_add(1, Ordering::AcqRel) + 1;
    if arrived == PARTICIPANTS {
        m.count.store(0, Ordering::Relaxed);
        m.generation.fetch_add(1, Ordering::Release);
        return Ok(true);
    }
    if poll_poison {
        spin_until(|| {
            m.generation.load(Ordering::Acquire) != gen || m.poison.load(Ordering::Acquire) != 0
        });
        if m.generation.load(Ordering::Acquire) == gen {
            return Err(());
        }
    } else {
        spin_until(|| m.generation.load(Ordering::Acquire) != gen);
    }
    Ok(false)
}

#[test]
fn poisoned_barrier_arrival_always_terminates() {
    // Thread 1 faults before its arrival; thread 0's arrival must resolve
    // on every schedule — either it aborts on poison, or (when the checker
    // schedules nothing in between) it keeps spinning until the poison
    // store lands and then aborts. It can never be the last arriver.
    let report = check(
        &Config::default(),
        poisoned_barrier,
        &[
            &|m: &PoisonedBarrier| {
                assert_eq!(
                    poisoned_barrier_arrive(m, true),
                    Err(()),
                    "with a faulted peer the arrival must abort, not release"
                );
            },
            &|m: &PoisonedBarrier| {
                m.poison.store(1, Ordering::Release);
            },
        ],
    )
    .expect("poison poll frees the barrier spinner on every schedule");
    assert!(
        report.exhaustive,
        "the poisoned arrival must be exhaustible"
    );
}

#[test]
fn mutation_unchecked_barrier_spin_deadlocks_on_a_faulted_peer() {
    let failure = check(
        &Config::default(),
        poisoned_barrier,
        &[
            &|m: &PoisonedBarrier| {
                let _ = poisoned_barrier_arrive(m, false);
            },
            &|m: &PoisonedBarrier| {
                m.poison.store(1, Ordering::Release);
            },
        ],
    )
    .expect_err("an unchecked generation spin must strand the arrival");
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock { blocked } if blocked == &[0]),
        "{failure}"
    );
}
