//! Interleaving-checker models of `doacross-par`'s synchronization
//! protocols: the executor's per-element ready-flag handoff (paper Fig. 5,
//! statement S4 — the protocol `WaitStrategy::wait_until` polls and the
//! workers' release stores complete) and the sense-reversing
//! [`SpinBarrier`](doacross_par::SpinBarrier) used between wavefront
//! levels.
//!
//! Each model restates the production algorithm in `interleave`'s shim
//! types and is checked across thread schedules; the mutation tests then
//! corrupt the protocol the specific ways a refactor plausibly would
//! (weaken an ordering, drop a store, reorder the barrier's reset past its
//! gate) and prove the checker reports each corruption with the right
//! failure kind — so a green checker run carries information.

use interleave::{
    check, check_random, spin_until, AtomicU64, AtomicUsize, Config, Failure, FailureKind,
    Ordering, Report, Shared,
};

// ---------------------------------------------------------------------------
// Ready-flag handoff: writer completes y[e] then raises ready[e]; a reader
// with a NewValue operand polls ready[e] before loading y[e].
// ---------------------------------------------------------------------------

struct ReadyFlag {
    y: Shared<f64>,
    ready: AtomicU64,
}

fn ready_flag() -> ReadyFlag {
    ReadyFlag {
        y: Shared::named("y[e]", 0.0),
        ready: AtomicU64::new(0),
    }
}

fn writer(m: &ReadyFlag, ordering: Ordering, raise_flag: bool) {
    m.y.write(2.5);
    if raise_flag {
        m.ready.store(1, ordering);
    }
}

fn reader(m: &ReadyFlag) -> f64 {
    // The executor's S4 busy-wait: WaitStrategy only varies *how* the
    // false polls are spent, never the exit condition, so one blocking
    // poll models every strategy.
    spin_until(|| m.ready.load(Ordering::Acquire) == 1);
    m.y.read()
}

#[test]
fn ready_flag_protocol_is_sound_across_all_interleavings() {
    let report: Report = check(
        &Config::default(),
        ready_flag,
        &[
            &|m: &ReadyFlag| writer(m, Ordering::Release, true),
            &|m: &ReadyFlag| assert_eq!(reader(m), 2.5),
        ],
    )
    .expect("release store / acquire poll covers the flow dependence");
    assert!(report.exhaustive, "the handoff model must be exhaustible");
}

#[test]
fn mutation_relaxed_ready_store_is_a_data_race() {
    let failure: Failure = check(
        &Config::default(),
        ready_flag,
        &[
            &|m: &ReadyFlag| writer(m, Ordering::Relaxed, true),
            &|m: &ReadyFlag| {
                let _ = reader(m);
            },
        ],
    )
    .expect_err("a relaxed flag store publishes nothing");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("y[e]")),
        "{failure}"
    );
    assert!(!failure.schedule.is_empty(), "counterexample must replay");
}

#[test]
fn mutation_dropped_ready_store_is_a_deadlock() {
    let failure = check(
        &Config::default(),
        ready_flag,
        &[
            &|m: &ReadyFlag| writer(m, Ordering::Release, false),
            &|m: &ReadyFlag| {
                let _ = reader(m);
            },
        ],
    )
    .expect_err("an unraised flag strands the waiter");
    assert!(
        matches!(&failure.kind, FailureKind::Deadlock { blocked } if blocked == &[1]),
        "{failure}"
    );
}

// ---------------------------------------------------------------------------
// Sense-reversing spin barrier: the model mirrors `SpinBarrier::wait`
// (count AcqRel arrival, last arriver resets count *then* bumps the
// generation with a release store; spinners acquire the generation).
// ---------------------------------------------------------------------------

const PARTICIPANTS: usize = 2;

struct Barrier {
    count: AtomicUsize,
    generation: AtomicUsize,
    slots: [Shared<u64>; PARTICIPANTS],
}

fn barrier() -> Barrier {
    Barrier {
        count: AtomicUsize::new(0),
        generation: AtomicUsize::new(0),
        slots: [Shared::named("slot[0]", 0), Shared::named("slot[1]", 0)],
    }
}

/// One `SpinBarrier::wait`. `gen_order` is the ordering of the leader's
/// generation bump; `reset_after_gate` reorders the count reset *after*
/// the generation bump (the mutation `SpinBarrier` documents it must
/// avoid).
fn barrier_wait(m: &Barrier, gen_order: Ordering, reset_after_gate: bool) -> bool {
    let gen = m.generation.load(Ordering::Acquire);
    let arrived = m.count.fetch_add(1, Ordering::AcqRel) + 1;
    if arrived == PARTICIPANTS {
        if reset_after_gate {
            m.generation.fetch_add(1, gen_order);
            m.count.store(0, Ordering::Relaxed);
        } else {
            m.count.store(0, Ordering::Relaxed);
            m.generation.fetch_add(1, gen_order);
        }
        return true;
    }
    spin_until(|| m.generation.load(Ordering::Acquire) != gen);
    false
}

/// A worker that publishes into its slot, waits, and reads the peer's
/// slot — the visibility contract wavefront levels rely on — for `phases`
/// consecutive generations. Like the production level loop (and
/// `SpinBarrier`'s own phase test), each phase takes the barrier twice:
/// once to publish the writes, once to retire the reads before the next
/// phase's writes land. (The checker found the read/next-write race when
/// this model had only one wait per phase.)
fn barrier_worker(
    m: &Barrier,
    tid: usize,
    phases: u64,
    gen_order: Ordering,
    reset_after_gate: bool,
) {
    for phase in 1..=phases {
        m.slots[tid].write(phase);
        barrier_wait(m, gen_order, reset_after_gate);
        let peer = m.slots[1 - tid].read();
        assert_eq!(
            peer, phase,
            "thread {tid}: peer write not visible after the barrier"
        );
        barrier_wait(m, gen_order, reset_after_gate);
    }
}

#[test]
fn spin_barrier_single_generation_is_sound_across_all_interleavings() {
    // One generation with no successor phase: write, wait, read. Small
    // enough to exhaust the schedule space completely.
    let report = check(
        &Config::default(),
        barrier,
        &[
            &|m: &Barrier| {
                m.slots[0].write(1);
                barrier_wait(m, Ordering::Release, false);
                assert_eq!(m.slots[1].read(), 1);
            },
            &|m: &Barrier| {
                m.slots[1].write(1);
                barrier_wait(m, Ordering::Release, false);
                assert_eq!(m.slots[0].read(), 1);
            },
        ],
    )
    .expect("one barrier generation orders the pre-barrier writes");
    assert!(report.exhaustive);
}

#[test]
fn spin_barrier_generation_reuse_is_sound() {
    // Two generations exercise the count reset and sense reversal. The
    // schedule space is too large to exhaust cheaply, so explore a capped
    // DFS frontier plus a seeded random sample.
    let cfg = Config {
        max_executions: 3_000,
        random_iterations: 1_500,
        ..Config::default()
    };
    check(
        &cfg,
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 2, Ordering::Release, false),
            &|m: &Barrier| barrier_worker(m, 1, 2, Ordering::Release, false),
        ],
    )
    .expect("reused generations stay sound (bounded DFS)");
    check_random(
        &cfg,
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 2, Ordering::Release, false),
            &|m: &Barrier| barrier_worker(m, 1, 2, Ordering::Release, false),
        ],
    )
    .expect("reused generations stay sound (random sample)");
}

#[test]
fn mutation_relaxed_generation_bump_is_a_data_race() {
    let failure = check(
        &Config::default(),
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 1, Ordering::Relaxed, false),
            &|m: &Barrier| barrier_worker(m, 1, 1, Ordering::Relaxed, false),
        ],
    )
    .expect_err("a relaxed gate publishes nothing across the barrier");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("slot")),
        "{failure}"
    );
}

#[test]
fn mutation_count_reset_after_gate_deadlocks_the_next_generation() {
    // With the reset reordered past the generation bump, an eager peer can
    // re-arrive before the reset, have its arrival clobbered to zero, and
    // leave both threads spinning on a generation nobody can bump.
    let failure = check(
        &Config {
            max_executions: 20_000,
            ..Config::default()
        },
        barrier,
        &[
            &|m: &Barrier| barrier_worker(m, 0, 2, Ordering::Release, true),
            &|m: &Barrier| barrier_worker(m, 1, 2, Ordering::Release, true),
        ],
    )
    .expect_err("the clobbered arrival must strand a generation");
    assert!(
        matches!(failure.kind, FailureKind::Deadlock { .. }),
        "{failure}"
    );
}
