//! Property-based tests of the parallel substrate: scheduling coverage,
//! reduction correctness, and wait-primitive behaviour under arbitrary
//! parameters.

use doacross_par::{parallel_for, parallel_reduce, schedule::block_range, Schedule, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::StaticBlock),
        Just(Schedule::StaticCyclic),
        (1usize..32).prop_map(|chunk| Schedule::Dynamic { chunk }),
        (1usize..16).prop_map(|min_chunk| Schedule::Guided { min_chunk }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn block_range_tiles_any_split(n in 0usize..10_000, p in 1usize..64) {
        let mut next = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        for w in 0..p {
            let r = block_range(n, p, w);
            prop_assert_eq!(r.start, next);
            next = r.end;
            min = min.min(r.len());
            max = max.max(r.len());
        }
        prop_assert_eq!(next, n);
        prop_assert!(max - min <= 1, "balanced within one iteration");
    }

    #[test]
    fn drive_covers_exactly_once_in_order(
        sched in arb_schedule(),
        n in 0usize..2_000,
        p in 1usize..9,
    ) {
        // Sequential drive of all workers: coverage and order must hold for
        // any interleaving, including this degenerate one.
        let counter = AtomicUsize::new(0);
        let mut seen = vec![0u8; n];
        let mut order_ok = true;
        for w in 0..p {
            let mut last: i64 = -1;
            sched.drive(w, p, n, &counter, |i| {
                seen[i] += 1;
                order_ok &= i as i64 > last;
                last = i as i64;
            });
        }
        prop_assert!(order_ok, "per-worker claim order must increase");
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn parallel_for_touches_every_index_exactly_once(
        sched in arb_schedule(),
        n in 0usize..5_000,
        p in 1usize..5,
    ) {
        let pool = ThreadPool::new(p);
        let hits: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        parallel_for(&pool, n, sched, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_matches_sequential_fold(
        sched in arb_schedule(),
        values in proptest::collection::vec(-100i64..100, 0..2_000),
        p in 1usize..5,
    ) {
        let pool = ThreadPool::new(p);
        let expect: i64 = values.iter().sum();
        let got = parallel_reduce(
            &pool,
            values.len(),
            sched,
            0i64,
            |i| values[i],
            |a, b| a + b,
        );
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn wait_until_counts_at_least_the_misses(threshold in 1u32..500) {
        use doacross_par::WaitStrategy;
        for strategy in [
            WaitStrategy::Spin,
            WaitStrategy::SpinYield { spins: 16 },
            WaitStrategy::Backoff { max_spin_batch: 8 },
        ] {
            let calls = AtomicU32::new(0);
            let misses = strategy.wait_until(|| {
                calls.fetch_add(1, Ordering::Relaxed) >= threshold
            });
            prop_assert!(misses >= threshold as u64, "{:?}", strategy);
        }
    }
}
