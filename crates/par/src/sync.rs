//! Low-level synchronization helpers: cache-line padding and a spin barrier.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads and aligns a value to 128 bytes so that two [`CachePadded`] values
/// never share a cache line (128 covers the 2×64-byte prefetch pairs on
/// modern x86 and the 128-byte lines on some ARM parts).
///
/// The doacross executor keeps per-worker counters (claimed iterations, wait
/// polls) in a `Vec<CachePadded<...>>` so that workers do not false-share.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-sized box.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

/// A sense-reversing spin barrier for a fixed set of participants.
///
/// Used by the level-scheduled triangular solver (`doacross-trisolve`): all
/// workers synchronize between wavefront levels without returning to the
/// pool's dispatch path. Spinners yield to the OS after a bounded number of
/// polls so the barrier also works when the pool is oversubscribed.
#[derive(Debug)]
pub struct SpinBarrier {
    /// Number of participants that must arrive before the barrier opens.
    total: usize,
    /// Arrivals in the current generation.
    count: AtomicUsize,
    /// Generation counter; bumped by the last arriver.
    generation: AtomicUsize,
}

/// Number of spin polls between `thread::yield_now` calls while blocked on
/// the barrier. Small enough that an oversubscribed writer thread is not
/// starved, large enough that the fast path stays in user space.
const BARRIER_SPINS_BEFORE_YIELD: u32 = 64;

impl SpinBarrier {
    /// Creates a barrier for `total` participants.
    ///
    /// # Panics
    /// Panics if `total == 0`.
    pub fn new(total: usize) -> Self {
        assert!(total > 0, "a barrier needs at least one participant");
        Self {
            total,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Blocks until all `total` participants have called `wait` in this
    /// generation. Returns `true` on exactly one participant per generation
    /// (the last arriver), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            // Reset before opening the gate: the release store on
            // `generation` orders the reset for every acquirer below.
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return true;
        }
        let mut polls: u32 = 0;
        while self.generation.load(Ordering::Acquire) == gen {
            polls = polls.wrapping_add(1);
            if polls.is_multiple_of(BARRIER_SPINS_BEFORE_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        false
    }

    /// [`Self::wait`], fault-aware: while spinning on the generation gate,
    /// also polls the region's poison word and (when a `deadline` is set)
    /// the clock every 1024 misses — a sibling that panics before
    /// arriving would otherwise strand every other participant at the
    /// barrier forever.
    ///
    /// `Err` abandons the arrival mid-generation: the barrier's count and
    /// generation are left torn and the barrier must not be reused — the
    /// region is being torn down and its scratch (this barrier included)
    /// must be discarded. The last arriver never spins, so a leader
    /// always returns `Ok(true)` even under poison; its caller's next
    /// guarded site observes the fault instead.
    pub fn wait_guarded(
        &self,
        poison: &crate::RegionPoison,
        deadline: Option<std::time::Instant>,
    ) -> Result<bool, crate::WaitAbort> {
        let gen = self.generation.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.total {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
            return Ok(true);
        }
        let mut polls: u32 = 0;
        let mut misses: u64 = 0;
        while self.generation.load(Ordering::Acquire) == gen {
            if let Some(fault) = poison.fault() {
                return Err(crate::WaitAbort::Poisoned(fault));
            }
            misses += 1;
            if let Some(deadline) = deadline {
                if misses.is_multiple_of(1024) && std::time::Instant::now() >= deadline {
                    return Err(crate::WaitAbort::DeadlineExpired);
                }
            }
            polls = polls.wrapping_add(1);
            if polls.is_multiple_of(BARRIER_SPINS_BEFORE_YIELD) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        Ok(false)
    }

    /// [`Self::wait_guarded`], timed: also reports the nanoseconds this
    /// participant spent at the barrier, so a profiler can attribute
    /// per-level barrier-wait time per worker. Unlike the flag wait's
    /// timed variant, the clock is read unconditionally — every arrival
    /// (the leader included, with a near-zero duration) yields exactly one
    /// measurement, so span counts reconcile with barrier crossings.
    pub fn wait_guarded_timed(
        &self,
        poison: &crate::RegionPoison,
        deadline: Option<std::time::Instant>,
    ) -> Result<(bool, u64), crate::WaitAbort> {
        let started = std::time::Instant::now();
        let leader = self.wait_guarded(poison, deadline)?;
        Ok((leader, started.elapsed().as_nanos() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn cache_padded_is_large_and_aligned() {
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }

    #[test]
    fn cache_padded_deref_round_trip() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn barrier_single_participant_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn barrier_zero_participants_panics() {
        let _ = SpinBarrier::new(0);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // Each thread increments a phase counter, waits, and checks that
        // every other increment from the phase is visible.
        const THREADS: usize = 4;
        const PHASES: usize = 25;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(
                            seen >= ((phase + 1) * THREADS) as u64,
                            "phase {phase}: saw {seen}"
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (THREADS * PHASES) as u64);
    }

    #[test]
    fn guarded_barrier_matches_plain_barrier_when_clean() {
        use crate::RegionPoison;
        const THREADS: usize = 4;
        const PHASES: usize = 25;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let poison = Arc::new(RegionPoison::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let poison = Arc::clone(&poison);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait_guarded(&poison, None).expect("clean region");
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(seen >= ((phase + 1) * THREADS) as u64);
                        barrier.wait_guarded(&poison, None).expect("clean region");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (THREADS * PHASES) as u64);
    }

    #[test]
    fn guarded_barrier_releases_spinners_when_a_sibling_poisons() {
        use crate::{RegionFault, RegionPoison, WaitAbort};
        // Three participants: two arrive, the third "panics" (poisons
        // without arriving). Both spinners must abort instead of hanging.
        let barrier = Arc::new(SpinBarrier::new(3));
        let poison = Arc::new(RegionPoison::new());
        let spinners: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let poison = Arc::clone(&poison);
                std::thread::spawn(move || barrier.wait_guarded(&poison, None))
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(5));
        poison.poison_worker(2);
        for s in spinners {
            let abort = s
                .join()
                .unwrap()
                .expect_err("a never-completing barrier must abort under poison");
            assert_eq!(
                abort,
                WaitAbort::Poisoned(RegionFault::WorkerPanicked { worker: 2 })
            );
        }
    }

    #[test]
    fn guarded_barrier_aborts_on_an_expired_deadline() {
        use crate::{RegionPoison, WaitAbort};
        let barrier = SpinBarrier::new(2);
        let poison = RegionPoison::new();
        let deadline = std::time::Instant::now() - std::time::Duration::from_millis(1);
        // Sole arriver of two: spins on the gate, must notice the expiry.
        let abort = barrier
            .wait_guarded(&poison, Some(deadline))
            .expect_err("an expired deadline must abort the barrier spin");
        assert_eq!(abort, WaitAbort::DeadlineExpired);
    }

    #[test]
    fn guarded_barrier_leader_passes_even_under_poison() {
        use crate::RegionPoison;
        let barrier = SpinBarrier::new(1);
        let poison = RegionPoison::new();
        poison.poison_worker(0);
        // The last arriver never spins; poison is the wait sites' concern.
        assert_eq!(barrier.wait_guarded(&poison, None), Ok(true));
    }

    #[test]
    fn timed_barrier_yields_one_measurement_per_arrival() {
        use crate::RegionPoison;
        const THREADS: usize = 4;
        const PHASES: usize = 10;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let poison = Arc::new(RegionPoison::new());
        let leaders = Arc::new(AtomicU64::new(0));
        let measured = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let poison = Arc::clone(&poison);
                let leaders = Arc::clone(&leaders);
                let measured = Arc::clone(&measured);
                std::thread::spawn(move || {
                    for _ in 0..PHASES {
                        let (leader, _ns) = barrier
                            .wait_guarded_timed(&poison, None)
                            .expect("clean region");
                        measured.fetch_add(1, Ordering::SeqCst);
                        if leader {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(measured.load(Ordering::SeqCst), (THREADS * PHASES) as u64);
        assert_eq!(leaders.load(Ordering::SeqCst), PHASES as u64);
    }

    #[test]
    fn barrier_exactly_one_leader_per_generation() {
        const THREADS: usize = 4;
        const PHASES: usize = 50;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..PHASES {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), PHASES as u64);
    }
}
