//! Iteration-to-processor assignment policies (`parallel do` scheduling).
//!
//! The Encore Multimax FORTRAN runtime self-scheduled `parallel do` loops:
//! every processor repeatedly grabbed the next unclaimed iteration from a
//! shared counter. [`Schedule::Dynamic`] with `chunk == 1` reproduces that
//! policy and is the default throughout the workspace
//! ([`Schedule::multimax`]). Static block/cyclic policies are included for
//! the ablation benches ("how much of the doacross overhead is scheduling,
//! how much is waiting?").
//!
//! Every policy enumerates each worker's iterations in **increasing global
//! order**; see the crate docs for why that guarantees deadlock-freedom for
//! backward (true-dependency) waiting.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Assignment of a loop's iterations `0..n` to `nworkers` workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Worker `w` executes one contiguous block of `≈ n / nworkers`
    /// iterations. Lowest scheduling overhead; worst for doacross loops with
    /// short-distance dependencies (all waits cross block boundaries late).
    StaticBlock,
    /// Worker `w` executes iterations `w, w + nworkers, w + 2·nworkers, …`.
    /// Good dependency overlap for short-distance dependencies.
    StaticCyclic,
    /// Self-scheduling off a shared counter, `chunk` iterations per grab.
    /// `chunk == 1` is the paper's Multimax policy.
    Dynamic {
        /// Iterations claimed per counter increment (≥ 1).
        chunk: usize,
    },
    /// Guided self-scheduling: grab `max(remaining / (2·nworkers),
    /// min_chunk)` iterations per visit to the counter.
    Guided {
        /// Smallest grab size (≥ 1).
        min_chunk: usize,
    },
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::multimax()
    }
}

impl Schedule {
    /// The paper's policy: one-iteration self-scheduling, as on the Encore
    /// Multimax/320.
    pub const fn multimax() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }

    /// Whether this policy needs the shared counter (dynamic policies).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, Schedule::Dynamic { .. } | Schedule::Guided { .. })
    }

    /// Enumerates, in increasing order, the iterations of `0..n` that worker
    /// `worker` (of `nworkers`) executes, invoking `body` on each.
    ///
    /// `counter` is the shared self-scheduling counter; it must start at 0
    /// and be shared by all workers of the same loop instance. Static
    /// policies ignore it.
    #[inline]
    pub fn drive<F: FnMut(usize)>(
        &self,
        worker: usize,
        nworkers: usize,
        n: usize,
        counter: &AtomicUsize,
        mut body: F,
    ) {
        debug_assert!(worker < nworkers, "worker {worker} of {nworkers}");
        match *self {
            Schedule::StaticBlock => {
                for i in block_range(n, nworkers, worker) {
                    body(i);
                }
            }
            Schedule::StaticCyclic => {
                let mut i = worker;
                while i < n {
                    body(i);
                    i += nworkers;
                }
            }
            Schedule::Dynamic { chunk } => {
                let chunk = chunk.max(1);
                loop {
                    let start = counter.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for i in start..end {
                        body(i);
                    }
                }
            }
            Schedule::Guided { min_chunk } => {
                let min_chunk = min_chunk.max(1);
                loop {
                    // Stale `claimed` only affects the grab size, never
                    // correctness: the fetch_add below is the claim.
                    let claimed = counter.load(Ordering::Relaxed);
                    if claimed >= n {
                        break;
                    }
                    let remaining = n - claimed;
                    let grab = (remaining / (2 * nworkers)).max(min_chunk);
                    let start = counter.fetch_add(grab, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + grab).min(n);
                    for i in start..end {
                        body(i);
                    }
                }
            }
        }
    }
}

/// The contiguous range of iterations worker `worker` receives under
/// [`Schedule::StaticBlock`]. The first `n % nworkers` workers receive one
/// extra iteration, so block sizes differ by at most one.
pub fn block_range(n: usize, nworkers: usize, worker: usize) -> Range<usize> {
    debug_assert!(worker < nworkers);
    let base = n / nworkers;
    let extra = n % nworkers;
    let start = worker * base + worker.min(extra);
    let len = base + usize::from(worker < extra);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_assignment(sched: Schedule, nworkers: usize, n: usize) -> Vec<Vec<usize>> {
        // Drive workers round-robin on one thread; dynamic policies still
        // interleave correctly because the counter is the only shared state.
        let counter = AtomicUsize::new(0);
        let mut out = vec![Vec::new(); nworkers];
        // For dynamic policies a sequential drive gives worker 0 everything,
        // which is a legal (if extreme) interleaving; coverage and order
        // invariants must hold regardless.
        for (w, bucket) in out.iter_mut().enumerate() {
            sched.drive(w, nworkers, n, &counter, |i| bucket.push(i));
        }
        out
    }

    fn assert_exact_coverage(assignment: &[Vec<usize>], n: usize) {
        let mut seen = vec![0u32; n];
        for bucket in assignment {
            for &i in bucket {
                seen[i] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every iteration must run exactly once: {seen:?}"
        );
    }

    fn assert_increasing(assignment: &[Vec<usize>]) {
        for bucket in assignment {
            assert!(
                bucket.windows(2).all(|w| w[0] < w[1]),
                "per-worker order must be increasing: {bucket:?}"
            );
        }
    }

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 7 },
            Schedule::Guided { min_chunk: 1 },
            Schedule::Guided { min_chunk: 4 },
        ]
    }

    #[test]
    fn every_schedule_covers_exactly_once_in_order() {
        for sched in all_schedules() {
            for &(nworkers, n) in &[
                (1usize, 0usize),
                (1, 17),
                (3, 17),
                (4, 4),
                (5, 3),
                (16, 100),
            ] {
                let a = collect_assignment(sched, nworkers, n);
                assert_exact_coverage(&a, n);
                assert_increasing(&a);
            }
        }
    }

    #[test]
    fn static_block_is_contiguous_and_balanced() {
        let a = collect_assignment(Schedule::StaticBlock, 4, 10);
        assert_eq!(a[0], vec![0, 1, 2]);
        assert_eq!(a[1], vec![3, 4, 5]);
        assert_eq!(a[2], vec![6, 7]);
        assert_eq!(a[3], vec![8, 9]);
    }

    #[test]
    fn static_cyclic_strides_by_worker_count() {
        let a = collect_assignment(Schedule::StaticCyclic, 3, 8);
        assert_eq!(a[0], vec![0, 3, 6]);
        assert_eq!(a[1], vec![1, 4, 7]);
        assert_eq!(a[2], vec![2, 5]);
    }

    #[test]
    fn block_range_partitions_exactly() {
        for &(n, p) in &[
            (0usize, 1usize),
            (1, 1),
            (10, 3),
            (10, 4),
            (3, 5),
            (100, 16),
        ] {
            let mut total = 0;
            let mut next = 0;
            for w in 0..p {
                let r = block_range(n, p, w);
                assert_eq!(r.start, next, "blocks must tile: n={n} p={p} w={w}");
                next = r.end;
                total += r.len();
            }
            assert_eq!(total, n);
            assert_eq!(next, n);
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        for &(n, p) in &[(10usize, 3usize), (17, 4), (1000, 16), (5, 7)] {
            let sizes: Vec<usize> = (0..p).map(|w| block_range(n, p, w).len()).collect();
            let min = *sizes.iter().min().unwrap();
            let max = *sizes.iter().max().unwrap();
            assert!(max - min <= 1, "n={n} p={p} sizes={sizes:?}");
        }
    }

    #[test]
    fn dynamic_chunk_zero_is_promoted_to_one() {
        // chunk=0 must not spin forever.
        let counter = AtomicUsize::new(0);
        let mut seen = Vec::new();
        Schedule::Dynamic { chunk: 0 }.drive(0, 1, 5, &counter, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn multimax_is_single_iteration_dynamic() {
        assert_eq!(Schedule::multimax(), Schedule::Dynamic { chunk: 1 });
        assert!(Schedule::multimax().is_dynamic());
        assert!(!Schedule::StaticBlock.is_dynamic());
    }

    #[test]
    fn dynamic_policies_share_work_across_concurrent_workers() {
        // Real-thread check: with 4 threads, a dynamic schedule must cover
        // all indices exactly once (the atomic counter is the arbiter).
        use std::sync::Mutex;
        const N: usize = 10_000;
        for sched in [
            Schedule::Dynamic { chunk: 3 },
            Schedule::Guided { min_chunk: 2 },
        ] {
            let counter = AtomicUsize::new(0);
            let hits = Mutex::new(vec![0u8; N]);
            std::thread::scope(|s| {
                for w in 0..4 {
                    let counter = &counter;
                    let hits = &hits;
                    s.spawn(move || {
                        let mut local = Vec::new();
                        sched.drive(w, 4, N, counter, |i| local.push(i));
                        let mut h = hits.lock().unwrap();
                        for i in local {
                            h[i] += 1;
                        }
                    });
                }
            });
            let h = hits.into_inner().unwrap();
            assert!(h.iter().all(|&c| c == 1), "{sched:?}");
        }
    }
}
