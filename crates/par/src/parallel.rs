//! `parallel do` loops: [`parallel_for`] and friends.
//!
//! These are the direct Rust counterparts of the paper's `parallel do i=1,N`
//! regions (Figures 2, 3 and 5): every pool worker enters the region,
//! iterations are distributed by a [`Schedule`], and the call returns when
//! all iterations have executed. The doacross executor itself lives in
//! `doacross-core`; it uses the same pool/schedule machinery but manages its
//! own per-iteration synchronization.

use crate::pool::ThreadPool;
use crate::schedule::Schedule;
use std::sync::atomic::AtomicUsize;
use std::sync::Mutex;

/// Runs `body(i)` for every `i` in `0..n`, distributing iterations over the
/// pool's workers according to `schedule`. Blocks until the loop completes.
///
/// Iterations must be independent (a *doall* in the paper's terminology);
/// for loops with cross-iteration dependencies use the doacross executor.
///
/// ```
/// use doacross_par::{parallel_for, Schedule, ThreadPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let sum = AtomicUsize::new(0);
/// parallel_for(&pool, 100, Schedule::multimax(), |i| {
///     sum.fetch_add(i, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
/// ```
pub fn parallel_for<F>(pool: &ThreadPool, n: usize, schedule: Schedule, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_for_with_id(pool, n, schedule, |_, i| body(i));
}

/// Like [`parallel_for`], but the body also receives the executing worker's
/// id — used by instrumented kernels that keep per-worker counters.
pub fn parallel_for_with_id<F>(pool: &ThreadPool, n: usize, schedule: Schedule, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if n == 0 {
        return;
    }
    let nworkers = pool.threads();
    let counter = AtomicUsize::new(0);
    pool.run(|worker| {
        schedule.drive(worker, nworkers, n, &counter, |i| body(worker, i));
    });
}

/// Parallel map-reduce over `0..n`: computes `map(i)` for every iteration
/// and folds the results with `reduce`, starting from `identity` on each
/// worker. `reduce` must be associative and commutative, and `identity`
/// must be its neutral element.
///
/// Used by the solvers for residual norms and by the benches for checksums.
pub fn parallel_reduce<T, M, R>(
    pool: &ThreadPool,
    n: usize,
    schedule: Schedule,
    identity: T,
    map: M,
    reduce: R,
) -> T
where
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync + Send,
{
    if n == 0 {
        return identity;
    }
    let nworkers = pool.threads();
    let counter = AtomicUsize::new(0);
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(nworkers));
    pool.run(|worker| {
        let mut acc = identity.clone();
        schedule.drive(worker, nworkers, n, &counter, |i| {
            acc = reduce(acc.clone(), map(i));
        });
        partials.lock().expect("partials mutex poisoned").push(acc);
    });
    partials
        .into_inner()
        .expect("partials mutex poisoned")
        .into_iter()
        .fold(identity, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedSlice;
    use std::sync::atomic::Ordering;

    fn all_schedules() -> Vec<Schedule> {
        vec![
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 16 },
            Schedule::Guided { min_chunk: 1 },
        ]
    }

    #[test]
    fn fills_disjoint_array_under_every_schedule() {
        let pool = ThreadPool::new(4);
        for sched in all_schedules() {
            let mut data = vec![0usize; 1000];
            let view = SharedSlice::new(&mut data);
            // SAFETY: `parallel_for` hands each `i` to exactly one
            // worker, and its join orders the writes before the reads.
            parallel_for(&pool, 1000, sched, |i| unsafe { view.write(i, 3 * i) });
            assert!(
                data.iter().enumerate().all(|(i, &v)| v == 3 * i),
                "{sched:?}"
            );
        }
    }

    #[test]
    fn zero_iterations_is_a_no_op() {
        let pool = ThreadPool::new(2);
        let touched = AtomicUsize::new(0);
        parallel_for(&pool, 0, Schedule::multimax(), |_| {
            touched.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(touched.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn worker_ids_are_in_range() {
        let pool = ThreadPool::new(3);
        parallel_for_with_id(&pool, 500, Schedule::multimax(), |w, _| {
            assert!(w < 3);
        });
    }

    #[test]
    fn reduce_sums_match_closed_form() {
        let pool = ThreadPool::new(4);
        for sched in all_schedules() {
            let sum = parallel_reduce(&pool, 1001, sched, 0u64, |i| i as u64, |a, b| a + b);
            assert_eq!(sum, 1000 * 1001 / 2, "{sched:?}");
        }
    }

    #[test]
    fn reduce_empty_returns_identity() {
        let pool = ThreadPool::new(2);
        let out = parallel_reduce(&pool, 0, Schedule::multimax(), 42u64, |_| 0, |a, b| a + b);
        assert_eq!(out, 42);
    }

    #[test]
    fn reduce_max_over_f64() {
        let pool = ThreadPool::new(4);
        let max = parallel_reduce(
            &pool,
            1000,
            Schedule::multimax(),
            f64::NEG_INFINITY,
            |i| ((i as f64) - 500.0).abs(),
            f64::max,
        );
        assert_eq!(max, 500.0);
    }

    #[test]
    fn single_worker_matches_sequential_order_effects() {
        // With one worker and dynamic scheduling, iterations run in order;
        // verify via a strictly-increasing check.
        let pool = ThreadPool::new(1);
        let last = Mutex::new(-1i64);
        parallel_for(&pool, 100, Schedule::multimax(), |i| {
            let mut last = last.lock().unwrap();
            assert!(*last < i as i64);
            *last = i as i64;
        });
    }
}
