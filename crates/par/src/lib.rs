//! # doacross-par — parallel runtime substrate
//!
//! The building blocks underneath the preprocessed doacross runtime
//! (`doacross-core`): a fixed-size [`ThreadPool`] whose workers model the
//! paper's "processors", self-scheduled [`parallel_for`] loops in the style
//! of the Encore Multimax `parallel do`, busy-wait [`WaitStrategy`]
//! primitives for the executor's `while (ready(..) != DONE)` loops, and
//! [`SharedSlice`], the single audited `unsafe` abstraction through which
//! concurrently-executing loop iterations touch shared arrays.
//!
//! The paper (Saltz & Mirchandaney, *The Preprocessed Doacross Loop*, ICPP
//! 1991) ran its `parallel do` loops on a 16-processor Encore Multimax/320
//! with self-scheduling: each processor repeatedly grabs the next unclaimed
//! iteration (or chunk of iterations) from a shared counter. That policy is
//! [`Schedule::Dynamic`]; static block and cyclic assignments are provided
//! for ablation studies.
//!
//! ## Deadlock-freedom contract
//!
//! A doacross executor busy-waits for *earlier* iterations only (true
//! dependencies always point backwards in the iteration space — see
//! `doacross-core`). Every [`Schedule`] in this crate enumerates each
//! worker's assigned iterations in increasing global order, which makes any
//! backward-waiting loop deadlock-free: the lowest-numbered unexecuted
//! iteration is always at the front of some worker's remaining work, and by
//! definition none of its dependencies are pending. When the machine is
//! oversubscribed (more workers than hardware threads) the waiting side must
//! yield the CPU so the writer can run; that is [`WaitStrategy::SpinYield`]
//! and [`WaitStrategy::Backoff`].
//!
//! That contract holds only while every iteration runs to completion. A
//! worker that *panics* mid-region never publishes the flags (or never
//! arrives at the barrier) its siblings wait on — so every wait site has a
//! fault-aware variant ([`WaitStrategy::wait_until_guarded`],
//! [`SpinBarrier::wait_guarded`]) that polls the region's [`RegionPoison`]
//! word and unwinds cooperatively, turning a would-be deadlock into a
//! finite drain and a typed [`RegionFault`] panic from [`ThreadPool::run`].
//! The same poll sites enforce an optional region deadline
//! ([`ThreadPool::set_deadline`]). See [`poison`] for the full protocol.

// Audit posture: every dereference inside an `unsafe fn` must name its
// own justification in an explicit `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]
pub mod parallel;
pub mod poison;
pub mod pool;
pub mod schedule;
pub mod shared;
pub mod sync;
pub mod wait;

pub use parallel::{parallel_for, parallel_for_with_id, parallel_reduce};
pub use poison::{abort_region, RegionFault, RegionPoison, WaitAbort};
pub use pool::ThreadPool;
pub use schedule::Schedule;
pub use shared::SharedSlice;
pub use sync::{CachePadded, SpinBarrier};
pub use wait::WaitStrategy;
