//! [`SharedSlice`]: the audited shared-array abstraction for doacross loops.
//!
//! The preprocessed doacross writes `ynew(a(i))` from many iterations
//! concurrently while other iterations read `y`/`ynew` elements. Rust's
//! borrow checker (rightly) refuses `&mut` aliasing across threads, so every
//! such access in this workspace is funneled through this one small module,
//! whose safety argument mirrors the paper's correctness argument:
//!
//! 1. **Writes are disjoint.** The paper assumes "no output dependencies
//!    between left hand side array references" (§2.1): `a` is injective, so
//!    no two iterations write the same element. Each `ynew[a[i]]` therefore
//!    has exactly one writer.
//! 2. **Read–write pairs are ordered by the `ready` protocol.** A reader of
//!    `ynew[off]` either is the writer iteration itself (`iter[off] == i`,
//!    program order) or has observed `ready[off] == DONE` via an acquire
//!    load that synchronizes with the writer's release store, establishing
//!    happens-before.
//! 3. **Reads of the old array `y` never race**: during executor execution
//!    `y` is read-only (all writes go to the shadow `ynew`), and the
//!    postprocessing copy-back runs after the pool's dispatch join, which is
//!    itself a synchronization point.
//!
//! Consequently, all plain (non-atomic) accesses made through this type obey
//! the C++11/Rust memory model when the caller upholds the documented
//! contracts. Debug builds additionally bounds-check every access.

use std::marker::PhantomData;

/// An unsynchronized view of a `&mut [T]` that can be copied into many
/// worker closures.
///
/// The lifetime parameter ties the view to the original borrow, so the
/// underlying storage cannot move or be freed while views exist. All methods
/// that touch elements are `unsafe`; the caller promises the data-race
/// freedom conditions in the module documentation.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: a SharedSlice is a pointer+len pair. Sending or sharing it across
// threads is safe in itself because every dereference is an `unsafe` method
// whose contract forces the caller to rule out data races; `T: Send` ensures
// element values may be produced/consumed on other threads, and `T: Sync` is
// required for shared `&T` projections.
unsafe impl<'a, T: Send> Send for SharedSlice<'a, T> {}
unsafe impl<'a, T: Send + Sync> Sync for SharedSlice<'a, T> {}

impl<'a, T> Clone for SharedSlice<'a, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, T> Copy for SharedSlice<'a, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Creates a shared view of `slice`.
    pub fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements in the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw base pointer (for FFI-style index arithmetic in hot loops).
    #[inline]
    pub fn as_ptr(&self) -> *mut T {
        self.ptr
    }

    #[inline]
    fn check(&self, index: usize) {
        debug_assert!(
            index < self.len,
            "SharedSlice index {index} out of bounds (len {len})",
            len = self.len
        );
    }

    /// Writes `value` to `index` without synchronization.
    ///
    /// The previous element is overwritten without being dropped, which is
    /// why `T: Copy` is required.
    ///
    /// # Safety
    /// - `index < self.len()`.
    /// - No other thread writes `index` concurrently (write disjointness).
    /// - Any thread that reads `index` concurrently must be ordered with
    ///   respect to this write by an external acquire/release protocol.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T)
    where
        T: Copy,
    {
        self.check(index);
        // SAFETY: bounds ensured by contract; aliasing ruled out by contract.
        unsafe { self.ptr.add(index).write(value) };
    }

    /// Reads the element at `index` without synchronization.
    ///
    /// # Safety
    /// - `index < self.len()`.
    /// - Any concurrent writer of `index` must be ordered before this read
    ///   by an external acquire/release protocol (or be the current thread).
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        self.check(index);
        // SAFETY: bounds ensured by contract; racing writes ruled out by contract.
        unsafe { self.ptr.add(index).read() }
    }

    /// Borrows the element at `index`.
    ///
    /// # Safety
    /// Same as [`SharedSlice::read`], and additionally no thread may write
    /// `index` for the lifetime of the returned reference.
    #[inline]
    pub unsafe fn get_ref(&self, index: usize) -> &'a T {
        self.check(index);
        // SAFETY: bounds ensured by contract; immutability during the borrow
        // is the caller's obligation.
        unsafe { &*self.ptr.add(index) }
    }
}

impl<'a, T> std::fmt::Debug for SharedSlice<'a, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSlice")
            .field("len", &self.len)
            .field("ptr", &self.ptr)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn single_thread_write_read_round_trip() {
        let mut data = vec![0.0f64; 8];
        let view = SharedSlice::new(&mut data);
        for i in 0..view.len() {
            // SAFETY: single-threaded, in-bounds, disjoint indices.
            unsafe { view.write(i, i as f64 * 1.5) };
        }
        for i in 0..view.len() {
            // SAFETY: single-threaded; the writes above have completed.
            assert_eq!(unsafe { view.read(i) }, i as f64 * 1.5);
        }
        let _ = view;
        assert_eq!(data[4], 6.0);
    }

    #[test]
    fn view_is_copy() {
        let mut data = vec![1u32, 2, 3];
        let a = SharedSlice::new(&mut data);
        let b = a; // Copy
                   // SAFETY: single-threaded; both views alias, but the write and the
                   // read are sequenced on this thread.
        unsafe { b.write(0, 7) };
        assert_eq!(unsafe { a.read(0) }, 7);
    }

    #[test]
    fn disjoint_parallel_writes_are_all_visible() {
        // Emulates the inspector: every thread writes a disjoint index set,
        // and the spawn/join pair provides the ordering for later reads.
        const N: usize = 4096;
        const THREADS: usize = 4;
        let mut data = vec![0usize; N];
        let view = SharedSlice::new(&mut data);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                s.spawn(move || {
                    let mut i = t;
                    while i < N {
                        // SAFETY: each thread strides a disjoint
                        // residue class; join orders the final reads.
                        unsafe { view.write(i, i * 10) };
                        i += THREADS;
                    }
                });
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i * 10);
        }
    }

    #[test]
    fn release_acquire_hand_off_between_threads() {
        // The doacross pattern in miniature: thread A writes an element then
        // release-stores a flag; thread B acquire-loads the flag then reads.
        let mut data = vec![0.0f64; 1];
        let view = SharedSlice::new(&mut data);
        let flag = AtomicU32::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                // SAFETY: the release store below orders this write for
                // the acquiring reader.
                unsafe { view.write(0, 42.0) };
                flag.store(1, Ordering::Release);
            });
            s.spawn(|| {
                while flag.load(Ordering::Acquire) == 0 {
                    std::hint::spin_loop();
                }
                // SAFETY: the acquire loop above observed the
                // writer's release, ordering its write before this read.
                assert_eq!(unsafe { view.read(0) }, 42.0);
            });
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    #[cfg(debug_assertions)]
    fn debug_bounds_check_fires() {
        let mut data = vec![0u8; 4];
        let view = SharedSlice::new(&mut data);
        // SAFETY: deliberately violates the bounds contract to prove the
        // debug assertion catches it (the read never executes).
        unsafe { view.read(4) };
    }

    #[test]
    fn empty_slice_properties() {
        let mut data: Vec<f32> = vec![];
        let view = SharedSlice::new(&mut data);
        assert_eq!(view.len(), 0);
        assert!(view.is_empty());
    }
}
