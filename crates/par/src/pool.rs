//! A fixed-size thread pool whose workers model the paper's processors.
//!
//! The pool hands one job closure to every worker per dispatch — the moral
//! equivalent of entering a `parallel do` region on the Encore Multimax: all
//! `p` processors enter the loop, self-schedule iterations among themselves
//! (see [`crate::schedule`]), and the region ends when every processor is
//! done. [`ThreadPool::run`] blocks the dispatching thread until the region
//! completes, which is also the synchronization point that makes
//! postprocessing reads of executor-written data race-free.
//!
//! Workers are created once and reused across dispatches (the paper reuses
//! its `iter`/`ready` scratch arrays across loops for the same reason:
//! per-instance setup cost must be amortizable).

use crate::poison::{CoopUnwind, RegionPoison};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Type-erased pointer to the job closure currently being executed.
///
/// The pointer is only dereferenced while the dispatching thread is blocked
/// inside [`ThreadPool::run`], so the pointee outlives every use.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is dereferenced only between job publication and the
// final `active == 0` hand-shake, during which the dispatcher keeps the
// closure alive; `Sync` on the closure makes concurrent calls sound.
unsafe impl Send for Job {}

struct PoolState {
    /// Monotonically increasing dispatch counter; workers use it to detect
    /// fresh jobs.
    epoch: u64,
    /// The published job, if a dispatch is in flight.
    job: Option<Job>,
    /// Workers still executing the current job.
    active: usize,
    /// Set by `Drop` to terminate the workers.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers sleep here between dispatches.
    work_cv: Condvar,
    /// The dispatcher sleeps here until `active` drops to zero.
    done_cv: Condvar,
    /// The current region's fault latch: set (first cause wins, with the
    /// panicking worker's id) by the worker-side `catch_unwind`, polled by
    /// every guarded wait site, consumed by the dispatcher after the
    /// drain, and reset at the start of every dispatch.
    poison: RegionPoison,
    /// Deadline applied to guarded wait sites of subsequent regions; set
    /// by the pool's current owner before dispatching.
    deadline: Mutex<Option<Instant>>,
}

/// A pool of `p` persistent worker threads; `p` plays the role of the
/// paper's processor count.
///
/// ```
/// use doacross_par::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.run(|worker| {
///     assert!(worker < 4);
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 4);
/// ```
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    /// Serializes concurrent `run` callers; a pool executes one parallel
    /// region at a time, exactly like a single shared-memory machine.
    dispatch_lock: Mutex<()>,
    handles: Vec<JoinHandle<()>>,
    nworkers: usize,
}

impl ThreadPool {
    /// Spawns a pool with `nworkers` worker threads.
    ///
    /// # Panics
    /// Panics if `nworkers == 0`.
    pub fn new(nworkers: usize) -> Self {
        assert!(nworkers > 0, "a pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            poison: RegionPoison::new(),
            deadline: Mutex::new(None),
        });
        let handles = (0..nworkers)
            .map(|worker_id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("doacross-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            dispatch_lock: Mutex::new(()),
            handles,
            nworkers,
        }
    }

    /// Number of workers ("processors") in the pool.
    #[inline]
    pub fn threads(&self) -> usize {
        self.nworkers
    }

    /// The pool's region fault latch. Wait sites inside a region capture
    /// this before dispatch and poll it alongside their real conditions
    /// (see [`WaitStrategy::wait_until_guarded`](crate::WaitStrategy::wait_until_guarded)).
    #[inline]
    pub fn poison(&self) -> &RegionPoison {
        &self.shared.poison
    }

    /// Sets (or clears) the deadline guarded wait sites of subsequent
    /// regions check. The pool stores it; executors read it via
    /// [`Self::deadline`] when entering a region. Callers that share a
    /// pool must own it exclusively (e.g. hold its scheduler guard) while
    /// a deadline is set, and clear it when done.
    pub fn set_deadline(&self, deadline: Option<Instant>) {
        *self.shared.deadline.lock() = deadline;
    }

    /// The deadline for regions dispatched now, if any.
    pub fn deadline(&self) -> Option<Instant> {
        *self.shared.deadline.lock()
    }

    /// Executes `job(worker_id)` once on every worker, blocking until all
    /// workers have returned. Equivalent to one `parallel do` region.
    ///
    /// The spawn→join pair establishes happens-before between everything the
    /// workers wrote and the dispatcher's subsequent reads.
    ///
    /// # Panics
    /// Panics if any worker's `job` invocation panicked or a guarded wait
    /// expired the region deadline — after all workers drained the region
    /// (poisoning keeps the drain finite; see [`crate::poison`]). The
    /// panic payload is the typed [`crate::RegionFault`], carrying the
    /// panicking worker's id, for an engine boundary to downcast.
    pub fn run<F>(&self, job: F)
    where
        F: Fn(usize) + Sync,
    {
        let _dispatch = self.dispatch_lock.lock();
        // Panic-flag hygiene: a stale fault (e.g. latched by a region
        // whose dispatcher unwound early) must not leak into this region.
        self.shared.poison.clear();
        let erased: *const (dyn Fn(usize) + Sync) = &job;
        // SAFETY: we erase the closure's lifetime to store it in the shared
        // slot; the blocking loop below guarantees the pointer is dead
        // before `job` is dropped.
        let erased: *const (dyn Fn(usize) + Sync + 'static) =
            unsafe { std::mem::transmute(erased) };
        {
            let mut state = self.shared.state.lock();
            debug_assert!(state.job.is_none() && state.active == 0);
            state.job = Some(Job(erased));
            state.active = self.nworkers;
            state.epoch += 1;
            self.shared.work_cv.notify_all();
        }
        let mut state = self.shared.state.lock();
        while state.active != 0 || state.job.is_some() {
            self.shared.done_cv.wait(&mut state);
        }
        drop(state);
        if let Some(fault) = self.shared.poison.take() {
            std::panic::panic_any(fault);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("nworkers", &self.nworkers)
            .finish()
    }
}

fn worker_loop(shared: &PoolShared, worker_id: usize) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != last_epoch {
                    if let Some(job) = state.job {
                        last_epoch = state.epoch;
                        break job;
                    }
                }
                shared.work_cv.wait(&mut state);
            }
        };
        // SAFETY: the dispatcher keeps the closure alive until `active`
        // reaches zero, which happens only after this call returns.
        let call = std::panic::AssertUnwindSafe(|| unsafe { (*job.0)(worker_id) });
        if let Err(payload) = std::panic::catch_unwind(call) {
            // A cooperative unwind is a *reaction* to an existing fault
            // (or carries its own deadline poison already); only a real
            // panic poisons, and first cause wins so the cascade of
            // sibling unwinds never masks the original worker id.
            if payload.downcast_ref::<CoopUnwind>().is_none() {
                shared.poison.poison_worker(worker_id);
            }
        }
        let mut state = shared.state.lock();
        state.active -= 1;
        if state.active == 0 {
            state.job = None;
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn every_worker_runs_exactly_once_per_dispatch() {
        let pool = ThreadPool::new(4);
        let per_worker: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|w| {
            per_worker[w].fetch_add(1, Ordering::Relaxed);
        });
        for (w, c) in per_worker.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "worker {w}");
        }
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 600);
    }

    #[test]
    fn run_establishes_happens_before() {
        // Plain (non-atomic) writes by workers must be visible to the
        // dispatcher after run() returns.
        let pool = ThreadPool::new(4);
        let mut data = vec![0usize; 1024];
        let view = crate::SharedSlice::new(&mut data);
        let next = AtomicUsize::new(0);
        pool.run(|_| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= 1024 {
                break;
            }
            // SAFETY: `fetch_add` hands each index to exactly one
            // worker; `run`'s join orders the writes before the reads.
            unsafe { view.write(i, i + 1) };
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i + 1);
        }
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = ThreadPool::new(1);
        let hits = AtomicUsize::new(0);
        pool.run(|w| {
            assert_eq!(w, 0);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversubscribed_pool_completes() {
        // More workers than host cores: dispatch must still converge.
        let pool = ThreadPool::new(16);
        let hits = AtomicUsize::new(0);
        for _ in 0..10 {
            pool.run(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 160);
    }

    #[test]
    fn worker_panic_propagates_to_dispatcher_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|w| {
                if w == 0 {
                    panic!("injected failure");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate");
        // The dispatcher re-panics with the typed fault naming the worker.
        let fault = payload
            .downcast_ref::<crate::RegionFault>()
            .expect("payload must be the typed RegionFault");
        assert_eq!(*fault, crate::RegionFault::WorkerPanicked { worker: 0 });
        // The pool must remain usable after a worker panic.
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn consecutive_panicking_regions_each_report_and_pool_stays_usable() {
        // Panic-flag hygiene: the fault latch must reset per dispatch, so
        // back-to-back failing regions each surface their own worker id
        // and a following clean region runs silently.
        let pool = ThreadPool::new(4);
        for victim in [1usize, 3, 2] {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|w| {
                    if w == victim {
                        panic!("injected failure on {victim}");
                    }
                });
            }));
            let payload = result.expect_err("each region's panic must propagate");
            let fault = payload.downcast_ref::<crate::RegionFault>().unwrap();
            assert_eq!(
                *fault,
                crate::RegionFault::WorkerPanicked { worker: victim }
            );
        }
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4, "clean region after faults");
    }

    #[test]
    fn first_cause_wins_when_several_workers_panic() {
        let pool = ThreadPool::new(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|_| panic!("everyone fails"));
        }));
        let payload = result.expect_err("panic must propagate");
        let fault = payload.downcast_ref::<crate::RegionFault>().unwrap();
        assert!(
            matches!(fault, crate::RegionFault::WorkerPanicked { worker } if *worker < 4),
            "{fault:?}"
        );
    }

    #[test]
    fn guarded_waiters_drain_when_a_sibling_panics() {
        // The end-to-end poison protocol at pool level: worker 0 panics
        // before publishing the flag workers 1..3 busy-wait on. Unguarded,
        // this region would never drain; the guarded wait observes the
        // poison and unwinds cooperatively, and the dispatcher reports the
        // *panicking* worker, not one of the cooperative unwinds.
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::new(4);
        let flag = AtomicBool::new(false);
        let wait = crate::WaitStrategy::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let poison = pool.poison();
            pool.run(|w| {
                if w == 0 {
                    panic!("dies before raising the flag");
                }
                match wait.wait_until_guarded(|| flag.load(Ordering::Acquire), poison, None) {
                    Ok(_) => {}
                    Err(abort) => crate::abort_region(poison, abort),
                }
            });
        }));
        let payload = result.expect_err("the region must fail, not hang");
        let fault = payload.downcast_ref::<crate::RegionFault>().unwrap();
        assert_eq!(*fault, crate::RegionFault::WorkerPanicked { worker: 0 });
        // And the pool is immediately reusable.
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn deadline_expiry_drains_the_region_and_reports_timeout() {
        use std::sync::atomic::AtomicBool;
        let pool = ThreadPool::new(2);
        let flag = AtomicBool::new(false); // never raised
        let wait = crate::WaitStrategy::default();
        pool.set_deadline(Some(Instant::now() + std::time::Duration::from_millis(10)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let poison = pool.poison();
            let deadline = pool.deadline();
            pool.run(|_| {
                match wait.wait_until_guarded(|| flag.load(Ordering::Acquire), poison, deadline) {
                    Ok(_) => {}
                    Err(abort) => crate::abort_region(poison, abort),
                }
            });
        }));
        pool.set_deadline(None);
        let payload = result.expect_err("the wedged region must time out, not hang");
        let fault = payload.downcast_ref::<crate::RegionFault>().unwrap();
        assert_eq!(*fault, crate::RegionFault::DeadlineExpired);
        let hits = AtomicUsize::new(0);
        pool.run(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            hits.load(Ordering::Relaxed),
            2,
            "pool reusable after timeout"
        );
    }

    #[test]
    fn concurrent_dispatchers_are_serialized() {
        let pool = std::sync::Arc::new(ThreadPool::new(2));
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    pool.run(|_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 2);
    }

    #[test]
    fn drop_joins_workers() {
        // Mainly a leak/deadlock check: building and dropping many pools
        // must terminate.
        for _ in 0..20 {
            let pool = ThreadPool::new(3);
            pool.run(|_| {});
        }
    }
}
