//! Busy-wait policies for the executor's `while (ready(..) != DONE)` loops.
//!
//! The paper's executor (Figure 5, statement S4) busy-waits on a shared
//! `ready` flag until the iteration that writes the awaited element
//! completes. On the Encore Multimax every processor ran exactly one worker,
//! so a pure spin was adequate; on a modern host the pool may be
//! oversubscribed (e.g. simulating 16 "processors" on 2 cores), in which
//! case the spinner must yield the CPU so the writer can make progress.
//! [`WaitStrategy`] captures that spectrum, and every wait site reports how
//! many polls it performed so the benchmark harness can attribute overhead
//! (paper §3.1 lists "execution time dependency checks" and waiting as the
//! two executor-side overheads).

/// How a doacross executor waits for a not-yet-satisfied true dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Pure user-space spinning (`std::hint::spin_loop`). Matches the
    /// paper's dedicated-processor setup; only safe when workers ≤ cores.
    Spin,
    /// Spin `spins` times, then interleave `thread::yield_now` calls.
    /// The default: performs like `Spin` uncontended, and remains live
    /// under oversubscription.
    SpinYield {
        /// Polls before the first yield.
        spins: u32,
    },
    /// Exponential backoff: spin in doubling batches up to `max_spin_batch`,
    /// then yield between batches. Lowest coherence traffic on long waits.
    Backoff {
        /// Upper bound on the spin-batch size (polls per batch).
        max_spin_batch: u32,
    },
}

impl Default for WaitStrategy {
    fn default() -> Self {
        WaitStrategy::SpinYield { spins: 128 }
    }
}

/// Guarded waits re-check the deadline every `DEADLINE_POLL_PERIOD`
/// misses: `Instant::now()` is ~20ns, so amortized over 1024 idle polls
/// the clock read is free, while a busy wait still notices an expired
/// deadline within microseconds.
const DEADLINE_POLL_PERIOD: u64 = 1024;

impl WaitStrategy {
    /// Polls `cond` until it returns `true`; returns the number of polls
    /// that found the condition false (0 when it was already satisfied).
    ///
    /// The returned count is the paper's "busy wait" overhead in units of
    /// flag loads, which the instrumentation layer aggregates per run.
    #[inline]
    pub fn wait_until<F: FnMut() -> bool>(&self, mut cond: F) -> u64 {
        if cond() {
            return 0;
        }
        let mut misses: u64 = 1;
        match *self {
            WaitStrategy::Spin => {
                while !cond() {
                    misses += 1;
                    std::hint::spin_loop();
                }
            }
            WaitStrategy::SpinYield { spins } => {
                let spins = spins.max(1) as u64;
                while !cond() {
                    misses += 1;
                    if misses.is_multiple_of(spins) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            WaitStrategy::Backoff { max_spin_batch } => {
                let cap = max_spin_batch.max(1);
                let mut batch: u32 = 1;
                'outer: loop {
                    for _ in 0..batch {
                        if cond() {
                            break 'outer;
                        }
                        misses += 1;
                        std::hint::spin_loop();
                    }
                    if cond() {
                        break;
                    }
                    misses += 1;
                    std::thread::yield_now();
                    batch = (batch.saturating_mul(2)).min(cap);
                }
            }
        }
        misses
    }

    /// [`Self::wait_until`], fault-aware: alongside `cond`, every poll
    /// also checks the region's poison word, and (when a `deadline` is
    /// set) the clock every [`DEADLINE_POLL_PERIOD`] misses. The spin
    /// policy (spin/yield/backoff cadence) is exactly `wait_until`'s.
    ///
    /// Returns `Ok(misses)` when `cond` came true, `Err` when the wait
    /// aborted: [`WaitAbort::Poisoned`] if a sibling already faulted (stop
    /// waiting for flags that will never be published),
    /// [`WaitAbort::DeadlineExpired`] if this waiter noticed the expiry
    /// first — the caller must poison the region before unwinding, which
    /// is what [`abort_region`](crate::abort_region) does.
    #[inline]
    pub fn wait_until_guarded<F: FnMut() -> bool>(
        &self,
        mut cond: F,
        poison: &crate::RegionPoison,
        deadline: Option<std::time::Instant>,
    ) -> Result<u64, crate::WaitAbort> {
        let mut aborted: Option<crate::WaitAbort> = None;
        let mut misses: u64 = 0;
        let polls = self.wait_until(|| {
            if cond() {
                return true;
            }
            if let Some(fault) = poison.fault() {
                aborted = Some(crate::WaitAbort::Poisoned(fault));
                return true;
            }
            misses += 1;
            if let Some(deadline) = deadline {
                if misses.is_multiple_of(DEADLINE_POLL_PERIOD)
                    && std::time::Instant::now() >= deadline
                {
                    aborted = Some(crate::WaitAbort::DeadlineExpired);
                    return true;
                }
            }
            false
        });
        match aborted {
            None => Ok(polls),
            Some(abort) => Err(abort),
        }
    }

    /// [`Self::wait_until_guarded`], timed: additionally reports how many
    /// nanoseconds the wait spent blocked, for profilers that attribute
    /// stall time per worker. The satisfied-on-first-poll fast path reads
    /// no clock at all — an iteration whose dependency is already
    /// published pays one branch here, nothing more. Only an actual stall
    /// (first poll misses) takes two `Instant` reads.
    ///
    /// Returns `Ok((misses, wait_ns))`; `misses` is at least 1 whenever
    /// `wait_ns` is measured, so `wait_ns > 0 ⇒ misses > 0` and a caller
    /// can treat the pair as one stall event.
    #[inline]
    pub fn wait_until_guarded_timed<F: FnMut() -> bool>(
        &self,
        mut cond: F,
        poison: &crate::RegionPoison,
        deadline: Option<std::time::Instant>,
    ) -> Result<(u64, u64), crate::WaitAbort> {
        if cond() {
            return Ok((0, 0));
        }
        let started = std::time::Instant::now();
        let polls = self.wait_until_guarded(cond, poison, deadline)?;
        Ok((polls + 1, started.elapsed().as_nanos() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RegionFault, RegionPoison, WaitAbort};
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    fn strategies() -> Vec<WaitStrategy> {
        vec![
            WaitStrategy::Spin,
            WaitStrategy::SpinYield { spins: 4 },
            WaitStrategy::SpinYield { spins: 1 },
            WaitStrategy::Backoff { max_spin_batch: 16 },
            WaitStrategy::default(),
        ]
    }

    #[test]
    fn already_true_costs_zero_polls() {
        for s in strategies() {
            assert_eq!(s.wait_until(|| true), 0, "{s:?}");
        }
    }

    #[test]
    fn counts_false_polls() {
        for s in strategies() {
            let calls = AtomicU32::new(0);
            let misses = s.wait_until(|| calls.fetch_add(1, Ordering::Relaxed) >= 3);
            assert!(misses >= 3, "{s:?}: {misses}");
        }
    }

    #[test]
    fn wakes_when_flag_flips_cross_thread() {
        for s in strategies() {
            let flag = Arc::new(AtomicBool::new(false));
            let setter = {
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    flag.store(true, Ordering::Release);
                })
            };
            let misses = s.wait_until(|| flag.load(Ordering::Acquire));
            setter.join().unwrap();
            assert!(misses > 0, "{s:?} should have observed at least one miss");
        }
    }

    #[test]
    fn backoff_batch_growth_is_capped() {
        // Regression guard: the doubling batch must not overflow and must
        // terminate promptly once the condition holds.
        let s = WaitStrategy::Backoff { max_spin_batch: 2 };
        let calls = AtomicU32::new(0);
        let misses = s.wait_until(|| calls.fetch_add(1, Ordering::Relaxed) >= 1000);
        assert!(misses >= 1000);
    }

    #[test]
    fn default_is_spin_yield() {
        match WaitStrategy::default() {
            WaitStrategy::SpinYield { spins } => assert!(spins > 0),
            other => panic!("unexpected default {other:?}"),
        }
    }

    #[test]
    fn guarded_wait_matches_plain_wait_when_clean() {
        let poison = RegionPoison::new();
        for s in strategies() {
            assert_eq!(s.wait_until_guarded(|| true, &poison, None), Ok(0), "{s:?}");
            let calls = AtomicU32::new(0);
            let misses = s
                .wait_until_guarded(|| calls.fetch_add(1, Ordering::Relaxed) >= 3, &poison, None)
                .expect("clean region must not abort");
            assert!(misses >= 3, "{s:?}: {misses}");
        }
    }

    #[test]
    fn guarded_wait_aborts_on_pre_poisoned_region() {
        let poison = RegionPoison::new();
        poison.poison_worker(1);
        for s in strategies() {
            let abort = s
                .wait_until_guarded(|| false, &poison, None)
                .expect_err("a poisoned region must abort the wait");
            assert_eq!(
                abort,
                WaitAbort::Poisoned(RegionFault::WorkerPanicked { worker: 1 }),
                "{s:?}"
            );
        }
    }

    #[test]
    fn guarded_wait_aborts_when_poisoned_cross_thread() {
        for s in strategies() {
            let poison = Arc::new(RegionPoison::new());
            let poisoner = {
                let poison = Arc::clone(&poison);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    poison.poison_worker(2);
                })
            };
            let abort = s
                .wait_until_guarded(|| false, &poison, None)
                .expect_err("the cross-thread poison must be observed");
            poisoner.join().unwrap();
            assert!(matches!(abort, WaitAbort::Poisoned(_)), "{s:?}: {abort:?}");
        }
    }

    #[test]
    fn guarded_wait_aborts_on_an_expired_deadline() {
        let poison = RegionPoison::new();
        let deadline = std::time::Instant::now() - std::time::Duration::from_millis(1);
        for s in strategies() {
            let abort = s
                .wait_until_guarded(|| false, &poison, Some(deadline))
                .expect_err("an already-expired deadline must abort");
            assert_eq!(abort, WaitAbort::DeadlineExpired, "{s:?}");
            assert!(
                !poison.is_poisoned(),
                "the wait itself must not poison; that is the caller's job"
            );
        }
    }

    #[test]
    fn timed_wait_fast_path_reports_zero_without_clock_cost() {
        let poison = RegionPoison::new();
        for s in strategies() {
            assert_eq!(
                s.wait_until_guarded_timed(|| true, &poison, None),
                Ok((0, 0)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn timed_wait_measures_a_real_stall() {
        let poison = RegionPoison::new();
        for s in strategies() {
            let flag = Arc::new(AtomicBool::new(false));
            let setter = {
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    flag.store(true, Ordering::Release);
                })
            };
            let (misses, ns) = s
                .wait_until_guarded_timed(|| flag.load(Ordering::Acquire), &poison, None)
                .expect("clean region");
            setter.join().unwrap();
            assert!(misses >= 1, "{s:?}");
            assert!(
                ns >= 1_000_000,
                "{s:?}: a 5ms stall must measure at least 1ms, got {ns}"
            );
        }
    }

    #[test]
    fn timed_wait_propagates_aborts() {
        let poison = RegionPoison::new();
        poison.poison_worker(3);
        for s in strategies() {
            let abort = s
                .wait_until_guarded_timed(|| false, &poison, None)
                .expect_err("poisoned region must abort the timed wait too");
            assert!(matches!(abort, WaitAbort::Poisoned(_)), "{s:?}");
        }
    }

    #[test]
    fn guarded_wait_with_future_deadline_completes_normally() {
        let poison = RegionPoison::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        for s in strategies() {
            let calls = AtomicU32::new(0);
            let misses = s
                .wait_until_guarded(
                    || calls.fetch_add(1, Ordering::Relaxed) >= 5,
                    &poison,
                    Some(deadline),
                )
                .expect("a future deadline must not fire");
            assert!(misses >= 5, "{s:?}");
        }
    }
}
