//! Busy-wait policies for the executor's `while (ready(..) != DONE)` loops.
//!
//! The paper's executor (Figure 5, statement S4) busy-waits on a shared
//! `ready` flag until the iteration that writes the awaited element
//! completes. On the Encore Multimax every processor ran exactly one worker,
//! so a pure spin was adequate; on a modern host the pool may be
//! oversubscribed (e.g. simulating 16 "processors" on 2 cores), in which
//! case the spinner must yield the CPU so the writer can make progress.
//! [`WaitStrategy`] captures that spectrum, and every wait site reports how
//! many polls it performed so the benchmark harness can attribute overhead
//! (paper §3.1 lists "execution time dependency checks" and waiting as the
//! two executor-side overheads).

/// How a doacross executor waits for a not-yet-satisfied true dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStrategy {
    /// Pure user-space spinning (`std::hint::spin_loop`). Matches the
    /// paper's dedicated-processor setup; only safe when workers ≤ cores.
    Spin,
    /// Spin `spins` times, then interleave `thread::yield_now` calls.
    /// The default: performs like `Spin` uncontended, and remains live
    /// under oversubscription.
    SpinYield {
        /// Polls before the first yield.
        spins: u32,
    },
    /// Exponential backoff: spin in doubling batches up to `max_spin_batch`,
    /// then yield between batches. Lowest coherence traffic on long waits.
    Backoff {
        /// Upper bound on the spin-batch size (polls per batch).
        max_spin_batch: u32,
    },
}

impl Default for WaitStrategy {
    fn default() -> Self {
        WaitStrategy::SpinYield { spins: 128 }
    }
}

impl WaitStrategy {
    /// Polls `cond` until it returns `true`; returns the number of polls
    /// that found the condition false (0 when it was already satisfied).
    ///
    /// The returned count is the paper's "busy wait" overhead in units of
    /// flag loads, which the instrumentation layer aggregates per run.
    #[inline]
    pub fn wait_until<F: FnMut() -> bool>(&self, mut cond: F) -> u64 {
        if cond() {
            return 0;
        }
        let mut misses: u64 = 1;
        match *self {
            WaitStrategy::Spin => {
                while !cond() {
                    misses += 1;
                    std::hint::spin_loop();
                }
            }
            WaitStrategy::SpinYield { spins } => {
                let spins = spins.max(1) as u64;
                while !cond() {
                    misses += 1;
                    if misses.is_multiple_of(spins) {
                        std::thread::yield_now();
                    } else {
                        std::hint::spin_loop();
                    }
                }
            }
            WaitStrategy::Backoff { max_spin_batch } => {
                let cap = max_spin_batch.max(1);
                let mut batch: u32 = 1;
                'outer: loop {
                    for _ in 0..batch {
                        if cond() {
                            break 'outer;
                        }
                        misses += 1;
                        std::hint::spin_loop();
                    }
                    if cond() {
                        break;
                    }
                    misses += 1;
                    std::thread::yield_now();
                    batch = (batch.saturating_mul(2)).min(cap);
                }
            }
        }
        misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::Arc;

    fn strategies() -> Vec<WaitStrategy> {
        vec![
            WaitStrategy::Spin,
            WaitStrategy::SpinYield { spins: 4 },
            WaitStrategy::SpinYield { spins: 1 },
            WaitStrategy::Backoff { max_spin_batch: 16 },
            WaitStrategy::default(),
        ]
    }

    #[test]
    fn already_true_costs_zero_polls() {
        for s in strategies() {
            assert_eq!(s.wait_until(|| true), 0, "{s:?}");
        }
    }

    #[test]
    fn counts_false_polls() {
        for s in strategies() {
            let calls = AtomicU32::new(0);
            let misses = s.wait_until(|| calls.fetch_add(1, Ordering::Relaxed) >= 3);
            assert!(misses >= 3, "{s:?}: {misses}");
        }
    }

    #[test]
    fn wakes_when_flag_flips_cross_thread() {
        for s in strategies() {
            let flag = Arc::new(AtomicBool::new(false));
            let setter = {
                let flag = Arc::clone(&flag);
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    flag.store(true, Ordering::Release);
                })
            };
            let misses = s.wait_until(|| flag.load(Ordering::Acquire));
            setter.join().unwrap();
            assert!(misses > 0, "{s:?} should have observed at least one miss");
        }
    }

    #[test]
    fn backoff_batch_growth_is_capped() {
        // Regression guard: the doubling batch must not overflow and must
        // terminate promptly once the condition holds.
        let s = WaitStrategy::Backoff { max_spin_batch: 2 };
        let calls = AtomicU32::new(0);
        let misses = s.wait_until(|| calls.fetch_add(1, Ordering::Relaxed) >= 1000);
        assert!(misses >= 1000);
    }

    #[test]
    fn default_is_spin_yield() {
        match WaitStrategy::default() {
            WaitStrategy::SpinYield { spins } => assert!(spins > 0),
            other => panic!("unexpected default {other:?}"),
        }
    }
}
