//! Region poisoning: cooperative fault propagation for parallel regions.
//!
//! The doacross executors synchronize with unbounded busy-waits (ready
//! flags, the wavefront [`SpinBarrier`](crate::SpinBarrier)). A worker
//! that panics mid-region never publishes the flags (or never arrives at
//! the barrier) its siblings are waiting on — without poisoning, one bad
//! iteration wedges every other worker forever and the region never
//! drains. [`RegionPoison`] is the one-word protocol that turns that hang
//! into a clean, typed teardown:
//!
//! 1. The pool's `catch_unwind` (or a deadline-expired waiter) stores the
//!    fault cause into the region's poison word with a first-cause-wins
//!    CAS (`Release`).
//! 2. Every guarded wait site polls the word (`Acquire`) alongside its
//!    real condition and, on observing a fault, unwinds cooperatively via
//!    [`cooperative_unwind`] — a marker panic the pool recognizes and does
//!    **not** re-poison — so `active` drains and the dispatcher wakes.
//! 3. After the drain, [`ThreadPool::run`](crate::ThreadPool::run) takes
//!    the fault and re-panics with the typed [`RegionFault`] payload for
//!    the engine boundary to catch and convert.
//!
//! The `Release` store / `Acquire` poll pair also publishes everything the
//! faulting thread wrote *before* poisoning (e.g. partial per-worker
//! counters it deposited on its way out) to whichever thread observes the
//! fault — the protocol is modeled and mutation-tested in
//! `crates/par/tests/interleave_models.rs`.
//!
//! Scratch left behind by a poisoned region (ready flags, writer maps,
//! barrier generations) is torn; callers must discard it, not reuse it.

use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};

/// Why a parallel region was torn down early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionFault {
    /// A worker's job invocation panicked; `worker` is the pool-local id
    /// of the first worker whose panic poisoned the region.
    WorkerPanicked {
        /// Pool-local worker index (0-based).
        worker: usize,
    },
    /// A guarded wait observed the region deadline in the past.
    DeadlineExpired,
}

impl std::fmt::Display for RegionFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionFault::WorkerPanicked { worker } => {
                write!(f, "pool worker {worker} panicked during a parallel region")
            }
            RegionFault::DeadlineExpired => {
                write!(f, "the parallel region's deadline expired")
            }
        }
    }
}

/// Why a guarded wait aborted instead of satisfying its condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitAbort {
    /// The region's poison word carries a fault: some sibling already
    /// failed; stop waiting for flags that will never be published.
    Poisoned(RegionFault),
    /// This waiter itself observed the deadline in the past. The caller
    /// must poison the region (so siblings unwind too) before unwinding.
    DeadlineExpired,
}

/// Poison word states. 0 = clean, 1 = deadline, `worker + WORKER_BASE` =
/// worker panic.
const CLEAN: u64 = 0;
const DEADLINE: u64 = 1;
const WORKER_BASE: u64 = 2;

/// One-word fault latch shared by every participant of a parallel region.
///
/// First cause wins: once poisoned, later faults (including the cascade of
/// cooperative unwinds) do not overwrite the original cause. Cleared by
/// the pool at the start of every dispatch, so a fault never leaks into
/// the next region (panic-flag hygiene).
#[derive(Debug, Default)]
pub struct RegionPoison {
    state: AtomicU64,
}

impl RegionPoison {
    /// A clean poison word.
    pub const fn new() -> Self {
        Self {
            state: AtomicU64::new(CLEAN),
        }
    }

    /// `true` when the region carries a fault. One `Acquire` load — cheap
    /// enough for per-iteration polling.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        self.state.load(Ordering::Acquire) != CLEAN
    }

    /// The fault, if any. `Acquire`: observing a fault also makes the
    /// faulting thread's prior writes visible.
    #[inline]
    pub fn fault(&self) -> Option<RegionFault> {
        decode(self.state.load(Ordering::Acquire))
    }

    /// Records a worker panic. First cause wins; returns `true` when this
    /// call was the poisoning one.
    pub fn poison_worker(&self, worker: usize) -> bool {
        let encoded = (worker as u64).saturating_add(WORKER_BASE);
        self.state
            .compare_exchange(CLEAN, encoded, Ordering::Release, Ordering::Relaxed)
            .is_ok()
    }

    /// Records a deadline expiry. First cause wins; returns `true` when
    /// this call was the poisoning one.
    pub fn poison_deadline(&self) -> bool {
        self.state
            .compare_exchange(CLEAN, DEADLINE, Ordering::Release, Ordering::Relaxed)
            .is_ok()
    }

    /// Takes the fault, leaving the word clean — the pool's post-drain
    /// consumption point.
    pub fn take(&self) -> Option<RegionFault> {
        decode(self.state.swap(CLEAN, Ordering::AcqRel))
    }

    /// Clears any fault without reporting it — the pool's per-dispatch
    /// hygiene reset.
    pub fn clear(&self) {
        self.state.store(CLEAN, Ordering::Release);
    }
}

fn decode(word: u64) -> Option<RegionFault> {
    match word {
        CLEAN => None,
        DEADLINE => Some(RegionFault::DeadlineExpired),
        encoded => Some(RegionFault::WorkerPanicked {
            worker: (encoded - WORKER_BASE) as usize,
        }),
    }
}

/// Marker payload of a cooperative unwind: the panic a guarded wait site
/// throws after observing poison. `worker_loop`'s `catch_unwind`
/// recognizes it and does not re-poison (the original cause stands).
#[derive(Debug)]
pub(crate) struct CoopUnwind;

/// Aborts the current region participant: records a deadline fault when
/// this waiter is the one that noticed the expiry, then unwinds with the
/// cooperative marker so the pool drains the region without treating this
/// thread as a new, independent panic.
///
/// Never returns. Only meaningful inside a pool region (or on a thread
/// whose unwind a caller catches).
pub fn abort_region(poison: &RegionPoison, abort: WaitAbort) -> ! {
    if matches!(abort, WaitAbort::DeadlineExpired) {
        poison.poison_deadline();
    }
    panic_any(CoopUnwind)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_word_reports_nothing() {
        let p = RegionPoison::new();
        assert!(!p.is_poisoned());
        assert_eq!(p.fault(), None);
        assert_eq!(p.take(), None);
    }

    #[test]
    fn first_cause_wins() {
        let p = RegionPoison::new();
        assert!(p.poison_worker(3));
        assert!(!p.poison_worker(7), "second panic must not overwrite");
        assert!(!p.poison_deadline(), "deadline must not overwrite a panic");
        assert_eq!(p.fault(), Some(RegionFault::WorkerPanicked { worker: 3 }));
    }

    #[test]
    fn deadline_then_panic_keeps_deadline() {
        let p = RegionPoison::new();
        assert!(p.poison_deadline());
        assert!(!p.poison_worker(0));
        assert_eq!(p.fault(), Some(RegionFault::DeadlineExpired));
    }

    #[test]
    fn take_consumes_and_clears() {
        let p = RegionPoison::new();
        p.poison_worker(5);
        assert_eq!(p.take(), Some(RegionFault::WorkerPanicked { worker: 5 }));
        assert_eq!(p.take(), None, "take must leave the word clean");
        assert!(!p.is_poisoned());
    }

    #[test]
    fn clear_discards_a_fault() {
        let p = RegionPoison::new();
        p.poison_deadline();
        p.clear();
        assert_eq!(p.fault(), None);
    }

    #[test]
    fn worker_zero_round_trips() {
        let p = RegionPoison::new();
        p.poison_worker(0);
        assert_eq!(p.fault(), Some(RegionFault::WorkerPanicked { worker: 0 }));
    }

    #[test]
    fn abort_region_poisons_on_deadline_and_unwinds_with_the_marker() {
        let p = RegionPoison::new();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            abort_region(&p, WaitAbort::DeadlineExpired)
        }))
        .expect_err("abort_region must unwind");
        assert!(payload.downcast_ref::<CoopUnwind>().is_some());
        assert_eq!(p.fault(), Some(RegionFault::DeadlineExpired));
    }

    #[test]
    fn abort_region_on_observed_poison_does_not_repoison() {
        let p = RegionPoison::new();
        p.poison_worker(2);
        let fault = p.fault().unwrap();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            abort_region(&p, WaitAbort::Poisoned(fault))
        }))
        .expect_err("abort_region must unwind");
        assert!(payload.downcast_ref::<CoopUnwind>().is_some());
        assert_eq!(p.fault(), Some(RegionFault::WorkerPanicked { worker: 2 }));
    }

    #[test]
    fn fault_display_names_the_cause() {
        let text = RegionFault::WorkerPanicked { worker: 4 }.to_string();
        assert!(text.contains("worker 4"), "{text}");
        let text = RegionFault::DeadlineExpired.to_string();
        assert!(text.contains("deadline"), "{text}");
    }
}
