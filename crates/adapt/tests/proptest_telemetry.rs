//! Property tests of the telemetry recorder's invariants — including
//! under concurrent recorders, where the per-key accumulators must behave
//! exactly as if the same multiset of samples had arrived sequentially
//! (counts, sums, minimum) and the order-dependent EWMA must stay inside
//! the sample hull.

use doacross_adapt::{SolveSample, TelemetryEntry, VariantKind, VariantTelemetry};
use doacross_core::IndirectLoop;
use doacross_plan::PatternFingerprint;
use proptest::prelude::*;
use std::sync::Arc;

fn fingerprint(n: usize) -> PatternFingerprint {
    let a: Vec<usize> = (0..n).collect();
    PatternFingerprint::of(&IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap())
}

fn arb_samples(max: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1_000u64..2_000_000, 0u64..500), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn sequential_recording_matches_a_hand_rolled_reference(samples in arb_samples(64)) {
        let telemetry = VariantTelemetry::new(4);
        let key = fingerprint(17);
        for &(ns, polls) in &samples {
            telemetry.record(&key, VariantKind::Doacross, SolveSample {
                ns,
                wait_polls: polls,
                barriers: 0,
                terms: 321,
                pred_units: 800.0,
                work_units: 750.0,
            });
        }
        let e = telemetry.get(&key, VariantKind::Doacross).expect("recorded");
        prop_assert_eq!(e.samples, samples.len() as u64);
        prop_assert_eq!(e.min_ns, samples.iter().map(|s| s.0).min().unwrap());
        prop_assert_eq!(e.last_ns, samples.last().unwrap().0);
        prop_assert_eq!(e.wait_polls, samples.iter().map(|s| s.1).sum::<u64>());
        let sum_ns: f64 = samples.iter().map(|s| s.0 as f64).sum();
        prop_assert!((e.sum_ns - sum_ns).abs() <= 1e-6 * sum_ns.max(1.0));
        // EWMA lives inside the sample hull.
        let lo = samples.iter().map(|s| s.0).min().unwrap() as f64;
        let hi = samples.iter().map(|s| s.0).max().unwrap() as f64;
        prop_assert!(e.ewma_ns >= lo && e.ewma_ns <= hi, "{} not in [{lo}, {hi}]", e.ewma_ns);
        // The persisted mirror is lossless.
        let stored = e.to_stored(key, VariantKind::Doacross);
        let (_, _, back) = TelemetryEntry::from_stored(&stored).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn concurrent_recording_preserves_order_independent_invariants(
        per_thread in arb_samples(40),
        threads in 2usize..=4,
    ) {
        // Every thread deposits the same sample list into the same keys;
        // the order-independent accumulators must equal the sequential
        // reference scaled by the thread count, exactly.
        let telemetry = Arc::new(VariantTelemetry::new(2));
        let keys: Arc<Vec<PatternFingerprint>> = Arc::new((3..6).map(fingerprint).collect());
        let samples = Arc::new(per_thread);
        let handles: Vec<_> = (0..threads).map(|_| {
            let (telemetry, keys, samples) = (
                Arc::clone(&telemetry), Arc::clone(&keys), Arc::clone(&samples));
            std::thread::spawn(move || {
                for (i, &(ns, polls)) in samples.iter().enumerate() {
                    telemetry.record(&keys[i % keys.len()], VariantKind::Reordered, SolveSample {
                        ns,
                        wait_polls: polls,
                        barriers: 0,
                        terms: 50,
                        pred_units: 100.0,
                        work_units: 90.0,
                    });
                }
            })
        }).collect();
        for h in handles {
            h.join().unwrap();
        }

        let totals = telemetry.totals();
        prop_assert_eq!(totals.samples, (threads * samples.len()) as u64);
        for (k, key) in keys.iter().enumerate() {
            let slice: Vec<&(u64, u64)> = samples
                .iter().skip(k).step_by(keys.len()).collect();
            let Some(e) = telemetry.get(key, VariantKind::Reordered) else {
                prop_assert!(slice.is_empty());
                continue;
            };
            prop_assert_eq!(e.samples, (threads * slice.len()) as u64);
            prop_assert_eq!(e.min_ns, slice.iter().map(|s| s.0).min().unwrap());
            prop_assert_eq!(e.wait_polls,
                threads as u64 * slice.iter().map(|s| s.1).sum::<u64>());
            let sum_ns: f64 = threads as f64 * slice.iter().map(|s| s.0 as f64).sum::<f64>();
            prop_assert!((e.sum_ns - sum_ns).abs() <= 1e-6 * sum_ns.max(1.0));
            let lo = slice.iter().map(|s| s.0).min().unwrap() as f64;
            let hi = slice.iter().map(|s| s.0).max().unwrap() as f64;
            prop_assert!(e.ewma_ns >= lo && e.ewma_ns <= hi);
            // `last_ns` is *some* thread's final deposit for this key.
            prop_assert!(slice.iter().any(|s| s.0 == e.last_ns));
        }
    }
}
