//! Online cost-model refinement: measured constants out of telemetry.
//!
//! The planner prices in abstract model units; telemetry observes
//! nanoseconds. Refinement bridges the two with an **anchor** — the
//! nanoseconds one model unit is worth on this host — and then attributes
//! each variant's *excess* over its synchronization-free prediction to the
//! synchronization constant that variant exercises:
//!
//! * **anchor (`unit_ns`)** — from the engine's host calibration when it
//!   has one, else from *sequential* solves (`min_ns / T_seq` — the
//!   sequential loop has zero synchronization, so its observed time is
//!   pure work and anchors the unit honestly). The engine guarantees a
//!   sequential observation exists by probing the sequential loop once
//!   before its first evaluation of a structure. Without an anchor there
//!   is **no refinement**: attributing observed nanoseconds to model
//!   constants without an independent clock reference would just rescale
//!   the model to agree with whatever it mispredicted.
//! * **`wait_poll`** — the per-poll cost is the least-squares slope of
//!   per-solve nanoseconds over per-solve poll counts within one
//!   `(structure, flag-variant)` key ([`crate::telemetry::TelemetryEntry::poll_slope_ns`]):
//!   solves of one structure differ only in how often readers caught
//!   writers unfinished, so the slope isolates the poll cost model-free.
//! * **`barrier`** — from wavefront entries: the fastest observed solve,
//!   minus the anchored synchronization-free work, divided by the solve's
//!   barrier crossings. The minimum across entries is used (the least
//!   contended observation — inflation from scheduling noise only ever
//!   *raises* this estimate, so the minimum is the defensible bound).
//! * **`chain` per-reference cost** — from flag-variant entries that
//!   never polled (their observed time is work plus the successful
//!   checks, both part of the chain): solve the work equation for the
//!   per-reference aggregate.
//!
//! Every channel reports only once its supporting sample count crosses
//! the confidence threshold, and [`doacross_sim::CostModel::refined_from`]
//! blends with a weight that grows with the evidence — a fresh engine
//! prices like its preset, a seasoned one like its hardware.

use crate::telemetry::{TelemetryEntry, VariantKind};
use doacross_plan::PatternFingerprint;
use doacross_sim::{CostModel, ObservedConstants};

/// Refinement knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementConfig {
    /// Samples a channel needs before its constant is trusted at all, and
    /// the half-saturation point of the blend weight
    /// (`weight = k / (k + confidence)`).
    pub confidence: u64,
    /// Anchor from host calibration (ns per model unit), when the engine
    /// measured one. Preferred over the sequential-solve anchor.
    pub unit_ns_hint: Option<f64>,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        Self {
            confidence: 6,
            unit_ns_hint: None,
        }
    }
}

/// The outcome of one refinement pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Refinement {
    /// The anchor used, if one existed.
    pub unit_ns: Option<f64>,
    /// The measured constants (model units) with their blend weight —
    /// feed to [`CostModel::refined_from`].
    pub constants: ObservedConstants,
    /// Samples behind the `wait_poll` estimate.
    pub wait_poll_samples: u64,
    /// Samples behind the `barrier` estimate.
    pub barrier_samples: u64,
    /// Samples behind the `chain` estimate.
    pub chain_samples: u64,
}

impl Refinement {
    /// The refined model: `base` with the evidenced constants blended in.
    pub fn model(&self, base: &CostModel) -> CostModel {
        CostModel::refined_from(base, &self.constants)
    }
}

/// Runs one refinement pass over a telemetry snapshot. `base` is the
/// model the engine planned (and recorded `work_units`) with; `p` is the
/// worker count those predictions priced for.
pub fn refine(
    base: &CostModel,
    entries: &[(PatternFingerprint, VariantKind, TelemetryEntry)],
    p: usize,
    cfg: &RefinementConfig,
) -> Refinement {
    let mut out = Refinement {
        unit_ns: None,
        constants: ObservedConstants::default(),
        wait_poll_samples: 0,
        barrier_samples: 0,
        chain_samples: 0,
    };

    // Anchor.
    let unit_ns = cfg
        .unit_ns_hint
        .filter(|u| u.is_finite() && *u > 0.0)
        .or_else(|| {
            entries
                .iter()
                .filter(|(_, kind, e)| {
                    *kind == VariantKind::Sequential && e.pred_units > 0.0 && e.min_ns > 0
                })
                .map(|(_, _, e)| e.min_ns as f64 / e.pred_units)
                .min_by(f64::total_cmp)
        });
    let Some(unit) = unit_ns else {
        return out; // no independent clock reference — no refinement
    };
    out.unit_ns = Some(unit);

    // wait_poll: pooled regression slope over flag-variant entries.
    let mut slope_weighted = 0.0f64;
    let mut slope_samples = 0u64;
    for (_, kind, e) in entries {
        if !kind.uses_flags() {
            continue;
        }
        if let Some(slope) = e.poll_slope_ns() {
            slope_weighted += slope * e.samples as f64;
            slope_samples += e.samples;
        }
    }
    if slope_samples >= cfg.confidence {
        out.constants.wait_poll = Some(slope_weighted / slope_samples as f64 / unit);
        out.wait_poll_samples = slope_samples;
    }

    // barrier: minimum anchored excess per crossing over wavefront entries.
    let mut barrier_est: Option<f64> = None;
    let mut barrier_samples = 0u64;
    for (_, kind, e) in entries {
        if *kind != VariantKind::Wavefront || e.barriers == 0 {
            continue;
        }
        let excess_ns = e.min_ns as f64 - e.work_units * unit;
        let per_crossing = (excess_ns / e.barriers as f64).max(0.0) / unit;
        if per_crossing.is_finite() {
            barrier_est = Some(barrier_est.map_or(per_crossing, |b: f64| b.min(per_crossing)));
            barrier_samples += e.samples;
        }
    }
    if barrier_samples >= cfg.confidence {
        // A measured-zero excess is evidence that barriers are ~free on
        // this host (e.g. one participant); floor at 1% of the base so
        // the blend still has a physical value to move toward.
        out.constants.barrier = barrier_est.map(|b| b.max(base.barrier * 0.01));
        out.barrier_samples = barrier_samples;
    }

    // chain: per-reference aggregate from poll-free flag-variant entries.
    let base_per_term = base.term + base.check;
    let mut chain_weighted = 0.0f64;
    let mut chain_samples = 0u64;
    for (_, kind, e) in entries {
        if !kind.uses_flags() || e.wait_polls != 0 || e.terms == 0 {
            continue;
        }
        // work_units = dispatch + (n·e + T·r_base)/p + post  — solve for
        // the observed r from the anchored observation.
        let t_over_p = e.terms as f64 / p.max(1) as f64;
        let non_term_units = e.work_units - t_over_p * base_per_term;
        let r_obs = (e.min_ns as f64 / unit - non_term_units) / t_over_p;
        if r_obs.is_finite() && r_obs > 0.0 {
            chain_weighted += r_obs * e.samples as f64;
            chain_samples += e.samples;
        }
    }
    if chain_samples >= cfg.confidence {
        out.constants.chain_per_term = Some(chain_weighted / chain_samples as f64);
        out.chain_samples = chain_samples;
    }

    // Blend weight from the thinnest evidenced channel: the refined model
    // moves no faster than its least-supported constant justifies.
    let supported: Vec<u64> = [
        out.constants.wait_poll.map(|_| out.wait_poll_samples),
        out.constants.barrier.map(|_| out.barrier_samples),
        out.constants.chain_per_term.map(|_| out.chain_samples),
    ]
    .into_iter()
    .flatten()
    .collect();
    if let Some(&k) = supported.iter().min() {
        out.constants.weight = k as f64 / (k + cfg.confidence) as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::{SolveSample, VariantTelemetry};
    use doacross_core::IndirectLoop;

    fn fp(n: usize) -> PatternFingerprint {
        let a: Vec<usize> = (0..n).collect();
        PatternFingerprint::of(&IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap())
    }

    fn cfg() -> RefinementConfig {
        RefinementConfig {
            confidence: 4,
            unit_ns_hint: None,
        }
    }

    #[test]
    fn no_anchor_means_no_refinement() {
        let telemetry = VariantTelemetry::new(1);
        // Plenty of flag-variant samples, but nothing sequential and no
        // calibration hint: refinement must refuse to invent constants.
        for polls in 0..10u64 {
            telemetry.record(
                &fp(5),
                VariantKind::Doacross,
                SolveSample {
                    ns: 10_000 + 13 * polls,
                    wait_polls: polls,
                    barriers: 0,
                    terms: 500,
                    pred_units: 900.0,
                    work_units: 850.0,
                },
            );
        }
        let r = refine(&CostModel::multimax(), &telemetry.entries(), 2, &cfg());
        assert_eq!(r.unit_ns, None);
        assert!(!r.constants.has_evidence());
        assert_eq!(r.model(&CostModel::multimax()), CostModel::multimax());
    }

    #[test]
    fn sequential_solves_anchor_and_slope_refines_wait_poll() {
        let base = CostModel::multimax();
        let telemetry = VariantTelemetry::new(1);
        let key = fp(9);
        // Sequential: 2000 units predicted, observed 4000 ns → unit 2 ns.
        for _ in 0..4 {
            telemetry.record(
                &key,
                VariantKind::Sequential,
                SolveSample {
                    ns: 4_000,
                    wait_polls: 0,
                    barriers: 0,
                    terms: 500,
                    pred_units: 2_000.0,
                    work_units: 2_000.0,
                },
            );
        }
        // Doacross: each poll costs 26 ns = 13 units.
        for polls in [0u64, 5, 10, 20, 40] {
            telemetry.record(
                &key,
                VariantKind::Doacross,
                SolveSample {
                    ns: 9_000 + 26 * polls,
                    wait_polls: polls,
                    barriers: 0,
                    terms: 500,
                    pred_units: 4_600.0,
                    work_units: 4_500.0,
                },
            );
        }
        let r = refine(&base, &telemetry.entries(), 2, &cfg());
        assert_eq!(r.unit_ns, Some(2.0));
        let wait = r.constants.wait_poll.expect("slope evidence");
        assert!((wait - 13.0).abs() < 1e-6, "{wait}");
        assert!(r.constants.weight > 0.0 && r.constants.weight < 1.0);
        let refined = r.model(&base);
        assert!(refined.wait_poll > base.wait_poll);
        assert_eq!(refined.region_dispatch, base.region_dispatch);
    }

    #[test]
    fn calibration_hint_beats_the_sequential_anchor_and_barrier_refines() {
        let base = CostModel::multimax();
        let telemetry = VariantTelemetry::new(1);
        let key = fp(11);
        // Wavefront: 19 crossings/solve; work predicted 1000 units; with
        // the hinted unit of 3 ns, observed 3000 + 19·600 ns puts each
        // crossing at 600 ns = 200 units.
        for _ in 0..5 {
            telemetry.record(
                &key,
                VariantKind::Wavefront,
                SolveSample {
                    ns: 3_000 + 19 * 600,
                    wait_polls: 0,
                    barriers: 19,
                    terms: 400,
                    pred_units: 1_076.0,
                    work_units: 1_000.0,
                },
            );
        }
        let r = refine(
            &base,
            &telemetry.entries(),
            2,
            &RefinementConfig {
                confidence: 4,
                unit_ns_hint: Some(3.0),
            },
        );
        assert_eq!(r.unit_ns, Some(3.0));
        let barrier = r.constants.barrier.expect("barrier evidence");
        assert!((barrier - 200.0).abs() < 1e-6, "{barrier}");
        assert_eq!(r.barrier_samples, 5);
        assert!(r.model(&base).barrier > base.barrier);
    }

    #[test]
    fn thin_evidence_stays_below_the_confidence_threshold() {
        let telemetry = VariantTelemetry::new(1);
        let key = fp(4);
        telemetry.record(
            &key,
            VariantKind::Sequential,
            SolveSample {
                ns: 1_000,
                wait_polls: 0,
                barriers: 0,
                terms: 10,
                pred_units: 500.0,
                work_units: 500.0,
            },
        );
        // Only 3 wavefront samples against a confidence of 4.
        for _ in 0..3 {
            telemetry.record(
                &key,
                VariantKind::Wavefront,
                SolveSample {
                    ns: 5_000,
                    wait_polls: 0,
                    barriers: 10,
                    terms: 10,
                    pred_units: 1_100.0,
                    work_units: 1_000.0,
                },
            );
        }
        let r = refine(&CostModel::multimax(), &telemetry.entries(), 2, &cfg());
        assert!(r.unit_ns.is_some(), "anchor exists");
        assert_eq!(r.constants.barrier, None, "below confidence");
        assert!(!r.constants.has_evidence());
    }
}
