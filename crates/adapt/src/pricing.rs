//! Cheap re-pricing of a plan's candidates under a refined cost model.
//!
//! The planner's candidate prices (see `doacross_plan::planner`) are
//! functions of the census, the worker count, and the model constants —
//! plus two structure quantities that are expensive to recompute (the
//! stall sums, which need the dependence DAG, and the wavefront round
//! count, which needs the level widths). Both are *recoverable from the
//! static prices* the plan already carries: the pricing formulas are
//! invertible in them. This module does exactly that inversion, so the
//! adaptive policy can ask "what would selection look like under the
//! constants the machine actually measured" with pure arithmetic — no
//! DAG rebuild, no census pass, no allocation — and reserve the one real
//! replan for the moment a promotion is actually attempted.

use crate::telemetry::VariantKind;
use doacross_plan::{ExecutionPlan, PlanCensus, PlanVariant, VariantCosts};
use doacross_sim::CostModel;

fn exec_per_iter(m: &CostModel) -> f64 {
    m.schedule_grab + m.iteration_setup + m.publish
}

fn per_term(m: &CostModel) -> f64 {
    m.term + m.check
}

/// Serial cost of one average iteration (the planner's `chain`).
pub fn chain(m: &CostModel, census: &PlanCensus) -> f64 {
    exec_per_iter(m) + census.terms_per_iteration() * per_term(m)
}

fn dispatch(m: &CostModel) -> f64 {
    2.0 * m.region_dispatch
}

fn post(m: &CostModel, census: &PlanCensus, p: usize) -> f64 {
    census.iterations as f64 * m.post_per_iter / p as f64
}

/// Raw executor work `W = n·e + T·r`.
fn raw_work(m: &CostModel, census: &PlanCensus) -> f64 {
    census.iterations as f64 * exec_per_iter(m) + census.total_terms as f64 * per_term(m)
}

fn flag_checks(m: &CostModel, census: &PlanCensus) -> f64 {
    census.true_deps as f64 * m.wait_poll
}

/// Strip-mined per-run work (inspector re-runs per block, §2.3).
fn blocked_work(m: &CostModel, census: &PlanCensus) -> f64 {
    census.iterations as f64 * (exec_per_iter(m) + m.inspect_per_iter + m.post_per_iter)
        + census.total_terms as f64 * per_term(m)
}

/// The two halves of one candidate's predicted price: the full prediction
/// and its synchronization-free part (no flag checks, no stalls, no
/// barriers — the cost the variant would have on a machine where
/// synchronization were free). The gap between an *observed* solve and
/// `work_units` is the measured synchronization bill the refinement layer
/// attributes to the model's sync constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Full predicted per-solve cost, model units.
    pub pred_units: f64,
    /// Synchronization-free part, model units.
    pub work_units: f64,
}

/// Prices the plan's *own* variant under `model` (normally the model it
/// was planned with), split per [`Breakdown`]. Uses the plan's captured
/// artifacts (level widths, block size) where the formula needs them.
pub fn breakdown(plan: &ExecutionPlan, model: &CostModel) -> Breakdown {
    let census = plan.census();
    let p = plan.processors().max(1);
    match plan.variant() {
        PlanVariant::Sequential => {
            let units = model.sequential_time(census.iterations, census.total_terms as usize);
            Breakdown {
                pred_units: units,
                work_units: units,
            }
        }
        PlanVariant::Doacross | PlanVariant::Reordered | PlanVariant::Linear(_) => {
            let work =
                dispatch(model) + raw_work(model, census) / p as f64 + post(model, census, p);
            let pred = plan
                .costs()
                .of(plan.variant())
                .unwrap_or(work + flag_checks(model, census) / p as f64);
            Breakdown {
                pred_units: pred,
                work_units: work,
            }
        }
        PlanVariant::Wavefront => {
            let rounds: usize = plan
                .level_schedule()
                .map(|schedule| {
                    schedule
                        .offsets()
                        .windows(2)
                        .map(|w| (w[1] - w[0]).div_ceil(p))
                        .sum()
                })
                .unwrap_or(census.iterations.div_ceil(p));
            let work =
                dispatch(model) + rounds as f64 * chain(model, census) + post(model, census, p);
            let barriers = census.critical_path.saturating_sub(1) as f64 * model.barrier;
            let pred = plan.costs().wavefront.unwrap_or(work + barriers);
            Breakdown {
                pred_units: pred,
                work_units: work,
            }
        }
        PlanVariant::Blocked { block_size } => {
            let nblocks = if block_size == 0 {
                1.0
            } else {
                census.iterations.div_ceil(block_size).max(1) as f64
            };
            let units =
                nblocks * 3.0 * model.region_dispatch + blocked_work(model, census) / p as f64;
            let pred = plan.costs().blocked.unwrap_or(units);
            // Blocked runs synchronize only at block boundaries, already
            // counted in the dispatches: work and prediction coincide.
            Breakdown {
                pred_units: pred,
                work_units: units,
            }
        }
    }
}

/// Re-prices every candidate the plan carries a static price for, under
/// `refined` — recovering the stall sums and wavefront rounds from the
/// static prices by inverting the planner's formulas (see module docs).
/// Candidates the planner never priced stay `None`.
pub fn reprice(plan: &ExecutionPlan, statics: &CostModel, refined: &CostModel) -> VariantCosts {
    let census = plan.census();
    let p = plan.processors().max(1);
    let pf = p as f64;
    let costs = plan.costs();

    let chain_s = chain(statics, census);
    let chain_r = chain(refined, census);
    let stall_scale = if chain_s > 0.0 {
        chain_r / chain_s
    } else {
        1.0
    };
    let cp_bound_r = census.critical_path as f64 * chain_r;
    let work_r = raw_work(refined, census);
    let flags_r = flag_checks(refined, census);

    // Inverts `t = dispatch + max((W + flags + stalls)/p, cp·chain) + post`
    // for the stall sum; when the static price was clamped at the critical
    // path the stalls are unobservable and recover as 0 — conservative
    // (re-pricing then under-charges the flag variant, which only makes
    // demotion *away* from it harder, never a wrong promotion toward it:
    // the trial still has to win on measurement).
    let flagged = |static_total: Option<f64>| -> Option<f64> {
        let ts = static_total?;
        let inner_s = ts - dispatch(statics) - post(statics, census, p);
        let stalls_s =
            (inner_s * pf - raw_work(statics, census) - flag_checks(statics, census)).max(0.0);
        let stalls_r = stalls_s * stall_scale;
        Some(
            dispatch(refined)
                + ((work_r + flags_r + stalls_r) / pf).max(cp_bound_r)
                + post(refined, census, p),
        )
    };

    let wavefront = costs.wavefront.map(|ts| {
        let barriers = census.critical_path.saturating_sub(1) as f64;
        let rounds_s = if chain_s > 0.0 {
            ((ts - dispatch(statics) - post(statics, census, p) - barriers * statics.barrier)
                / chain_s)
                .max(0.0)
        } else {
            0.0
        };
        dispatch(refined)
            + rounds_s * chain_r
            + barriers * refined.barrier
            + post(refined, census, p)
    });

    let blocked = costs.blocked.map(|ts| {
        let fixed = ts - blocked_work(statics, census) / pf;
        fixed + blocked_work(refined, census) / pf
    });

    VariantCosts {
        sequential: refined.sequential_time(census.iterations, census.total_terms as usize),
        doacross: flagged(costs.doacross),
        linear: flagged(costs.linear),
        reordered: flagged(costs.reordered),
        blocked,
        wavefront,
    }
}

/// The candidate price for a variant family.
pub fn price_of(costs: &VariantCosts, kind: VariantKind) -> Option<f64> {
    match kind {
        VariantKind::Sequential => Some(costs.sequential),
        VariantKind::Doacross => costs.doacross,
        VariantKind::Linear => costs.linear,
        VariantKind::Reordered => costs.reordered,
        VariantKind::Blocked => costs.blocked,
        VariantKind::Wavefront => costs.wavefront,
    }
}

/// The cheapest admitted candidate from an arbitrary price source,
/// visiting kinds in the planner's tie-breaking preference order
/// ([`VariantKind::all`]) so equal prices resolve exactly as a fresh
/// plan would (fewest resources win). Non-finite and `None` prices are
/// not candidates.
pub fn cheapest_by(
    mut prices: impl FnMut(VariantKind) -> Option<f64>,
    mut admit: impl FnMut(VariantKind) -> bool,
) -> Option<(VariantKind, f64)> {
    let mut best: Option<(VariantKind, f64)> = None;
    for kind in VariantKind::all() {
        if !admit(kind) {
            continue;
        }
        let Some(price) = prices(kind) else {
            continue;
        };
        if !price.is_finite() {
            continue;
        }
        match best {
            Some((_, incumbent)) if price >= incumbent => {}
            _ => best = Some((kind, price)),
        }
    }
    best
}

/// [`cheapest_by`] over a candidate table.
pub fn cheapest(
    costs: &VariantCosts,
    admit: impl FnMut(VariantKind) -> bool,
) -> Option<(VariantKind, f64)> {
    cheapest_by(|kind| price_of(costs, kind), admit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_par::ThreadPool;
    use doacross_plan::Planner;

    fn plans() -> Vec<ExecutionPlan> {
        let pool = ThreadPool::new(4);
        let planner = Planner::new();
        let mut out = Vec::new();
        // A wide doall with a non-linear lhs (doacross), interleaved
        // chains (reordered), and a deep grid (wavefront).
        let n = 4_000;
        let a: Vec<usize> = (0..n).map(|i| n - 1 - i).collect();
        let scatter =
            doacross_core::IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
        out.push(planner.plan(&pool, &scatter).unwrap());
        let (chains, len) = (32usize, 16usize);
        let n = chains * len;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i % len == 0 { vec![] } else { vec![i - 1] })
            .collect();
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
        out.push(
            planner
                .plan(
                    &pool,
                    &doacross_core::IndirectLoop::new(n, a, rhs, coeff).unwrap(),
                )
                .unwrap(),
        );
        out.push(
            planner
                .plan(&pool, &doacross_plan::testgrid::deep_grid(64, 20, 3, 7))
                .unwrap(),
        );
        out
    }

    #[test]
    fn reprice_with_the_same_model_is_the_identity() {
        let statics = CostModel::multimax();
        for plan in plans() {
            let repriced = reprice(&plan, &statics, &statics);
            let original = plan.costs();
            let close = |a: Option<f64>, b: Option<f64>, what: &str| match (a, b) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() <= 1e-6 * b.abs().max(1.0),
                    "{what}: {a} vs {b} ({plan})"
                ),
                (None, None) => {}
                other => panic!("{what}: {other:?} ({plan})"),
            };
            assert!((repriced.sequential - original.sequential).abs() < 1e-9);
            close(repriced.doacross, original.doacross, "doacross");
            close(repriced.linear, original.linear, "linear");
            close(repriced.reordered, original.reordered, "reordered");
            close(repriced.wavefront, original.wavefront, "wavefront");
        }
    }

    #[test]
    fn reprice_responds_to_refined_sync_constants() {
        let statics = CostModel::multimax();
        let plan = plans().pop().unwrap(); // the wavefront-selected grid
        assert_eq!(plan.variant(), PlanVariant::Wavefront);

        // An enormous measured barrier makes the wavefront candidate
        // expensive and leaves the flag candidates nearly untouched.
        let mut pricey_barrier = statics;
        pricey_barrier.barrier = 5_000.0;
        let repriced = reprice(&plan, &statics, &pricey_barrier);
        assert!(repriced.wavefront.unwrap() > plan.costs().wavefront.unwrap() * 10.0);
        let drift = (repriced.doacross.unwrap() - plan.costs().doacross.unwrap()).abs();
        assert!(drift < 1e-6, "flag candidates unaffected ({drift})");
        let (winner, _) = cheapest(&repriced, |_| true).unwrap();
        assert_ne!(winner, VariantKind::Wavefront);

        // And measured-free flags pull selection back the other way.
        let mut free_flags = statics;
        free_flags.wait_poll = 1e-6;
        let repriced = reprice(&plan, &statics, &free_flags);
        assert!(repriced.doacross.unwrap() < plan.costs().doacross.unwrap());
    }

    #[test]
    fn breakdown_work_never_exceeds_prediction() {
        let statics = CostModel::multimax();
        for plan in plans() {
            let b = breakdown(&plan, &statics);
            assert!(
                b.work_units <= b.pred_units + 1e-6 * b.pred_units.abs().max(1.0),
                "{}: {b:?}",
                plan
            );
            assert!(b.work_units > 0.0);
        }
    }

    #[test]
    fn cheapest_respects_preference_order_and_admission() {
        let costs = VariantCosts {
            sequential: 100.0,
            doacross: Some(100.0),
            linear: Some(100.0),
            reordered: Some(90.0),
            blocked: None,
            wavefront: Some(90.0),
        };
        // Equal cheapest prices: reordered precedes wavefront in the
        // preference order.
        let (winner, price) = cheapest(&costs, |_| true).unwrap();
        assert_eq!((winner, price), (VariantKind::Reordered, 90.0));
        // Excluding it hands the tie to the next preferred kind.
        let (winner, _) = cheapest(&costs, |k| k != VariantKind::Reordered).unwrap();
        assert_eq!(winner, VariantKind::Wavefront);
        // Excluding every candidate yields nothing.
        assert_eq!(cheapest(&costs, |_| false), None);
    }
}
