//! [`VariantTelemetry`]: the lock-light per-`(structure, variant)` solve
//! recorder.
//!
//! Every plan execution deposits one [`SolveSample`] — observed wall time,
//! busy-wait polls, barrier crossings — keyed by the structure's
//! [`PatternFingerprint`] and the executed [`VariantKind`]. The recorder
//! keeps, per key, an exponentially-weighted moving average, the observed
//! minimum (the noise-robust "how fast can this variant actually go"
//! estimate), exact counts, and the running sums of a polls-vs-nanoseconds
//! regression — the raw material [`crate::refine`] turns into measured
//! cost-model constants.
//!
//! "Lock-light" means sharded short critical sections, exactly like the
//! engine's plan cache: keys route to one of `N` mutex-guarded maps by
//! their fingerprint's high bits, so concurrent recorders contend only
//! when their structures share a shard, and a record is a handful of adds
//! under a lock held for nanoseconds — three orders of magnitude below the
//! solves being recorded. No allocation happens in steady state (an entry
//! allocates once, on its first sample).

use doacross_plan::{PatternFingerprint, PlanVariant, StoredTelemetry};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Weight of the newest sample in the per-entry moving average. 0.2 keeps
/// roughly the last ~10 solves in view: fast enough to track a phase
/// change, slow enough that one preempted solve cannot trigger the policy.
pub const EWMA_ALPHA: f64 = 0.2;

/// Minimum samples (and poll-count spread) before
/// [`TelemetryEntry::poll_slope_ns`] reports a regression slope.
pub const MIN_SLOPE_SAMPLES: u64 = 4;

/// An execution-variant family, payload-free — the telemetry key.
/// [`PlanVariant`]'s payloads (linear subscript, block size) are functions
/// of the structure, which the fingerprint half of the key already pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VariantKind {
    Sequential,
    Doacross,
    Linear,
    Reordered,
    Blocked,
    Wavefront,
}

impl VariantKind {
    /// All kinds, in the planner's tie-breaking preference order (fewest
    /// resources first: a cheaper-or-equal earlier kind wins ties).
    pub fn all() -> [VariantKind; 6] {
        [
            VariantKind::Sequential,
            VariantKind::Linear,
            VariantKind::Doacross,
            VariantKind::Reordered,
            VariantKind::Wavefront,
            VariantKind::Blocked,
        ]
    }

    /// Stable wire tag — matches the plan-record variant tags of
    /// `doacross_plan::persist`.
    pub fn tag(self) -> u8 {
        match self {
            VariantKind::Sequential => 0,
            VariantKind::Doacross => 1,
            VariantKind::Linear => 2,
            VariantKind::Reordered => 3,
            VariantKind::Blocked => 4,
            VariantKind::Wavefront => 5,
        }
    }

    /// Inverse of [`VariantKind::tag`].
    pub fn from_tag(tag: u8) -> Option<VariantKind> {
        Some(match tag {
            0 => VariantKind::Sequential,
            1 => VariantKind::Doacross,
            2 => VariantKind::Linear,
            3 => VariantKind::Reordered,
            4 => VariantKind::Blocked,
            5 => VariantKind::Wavefront,
            _ => return None,
        })
    }

    /// Whether this variant synchronizes through per-element `ready` flags
    /// (and therefore produces wait-poll evidence).
    pub fn uses_flags(self) -> bool {
        matches!(
            self,
            VariantKind::Doacross | VariantKind::Linear | VariantKind::Reordered
        )
    }
}

/// The observability family of a telemetry kind — a 1:1 rename (both sides
/// are the payload-free variant families).
impl From<VariantKind> for doacross_obs::ObsVariant {
    fn from(kind: VariantKind) -> Self {
        match kind {
            VariantKind::Sequential => doacross_obs::ObsVariant::Sequential,
            VariantKind::Doacross => doacross_obs::ObsVariant::Doacross,
            VariantKind::Linear => doacross_obs::ObsVariant::Linear,
            VariantKind::Reordered => doacross_obs::ObsVariant::Reordered,
            VariantKind::Blocked => doacross_obs::ObsVariant::Blocked,
            VariantKind::Wavefront => doacross_obs::ObsVariant::Wavefront,
        }
    }
}

impl From<PlanVariant> for VariantKind {
    fn from(variant: PlanVariant) -> Self {
        match variant {
            PlanVariant::Sequential => VariantKind::Sequential,
            PlanVariant::Doacross => VariantKind::Doacross,
            PlanVariant::Linear(_) => VariantKind::Linear,
            PlanVariant::Reordered => VariantKind::Reordered,
            PlanVariant::Blocked { .. } => VariantKind::Blocked,
            PlanVariant::Wavefront => VariantKind::Wavefront,
        }
    }
}

impl std::fmt::Display for VariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            VariantKind::Sequential => "sequential",
            VariantKind::Doacross => "doacross",
            VariantKind::Linear => "linear",
            VariantKind::Reordered => "reordered",
            VariantKind::Blocked => "blocked",
            VariantKind::Wavefront => "wavefront",
        };
        write!(f, "{name}")
    }
}

/// One observed solve, as deposited by the engine after an execution.
#[derive(Debug, Clone, Copy)]
pub struct SolveSample {
    /// Observed end-to-end wall time, nanoseconds.
    pub ns: u64,
    /// Failed `ready` polls this solve performed.
    pub wait_polls: u64,
    /// Spin-barrier crossings per solve (`levels − 1` for a wavefront
    /// plan, 0 elsewhere) — a structure constant, recorded for the
    /// refinement arithmetic.
    pub barriers: u64,
    /// References per solve (the census total) — likewise a constant.
    pub terms: u64,
    /// The variant's predicted per-solve cost, model units.
    pub pred_units: f64,
    /// The synchronization-free part of that prediction (no flag checks,
    /// no stalls, no barriers), model units.
    pub work_units: f64,
}

/// The accumulated state of one `(fingerprint, variant)` key. Also the
/// snapshot type: reads return a copy, so consumers never hold a shard
/// lock while thinking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryEntry {
    /// Solves recorded.
    pub samples: u64,
    /// EWMA of per-solve wall time ([`EWMA_ALPHA`]), nanoseconds.
    pub ewma_ns: f64,
    /// Fastest observed solve, nanoseconds.
    pub min_ns: u64,
    /// Most recent solve, nanoseconds.
    pub last_ns: u64,
    /// Total failed polls across all samples.
    pub wait_polls: u64,
    /// Barrier crossings per solve (structure constant; latest value).
    pub barriers: u64,
    /// References per solve (structure constant; latest value).
    pub terms: u64,
    /// Predicted per-solve cost (model units; latest value).
    pub pred_units: f64,
    /// Synchronization-free predicted cost (model units; latest value).
    pub work_units: f64,
    /// Poll-cost regression: Σ polls.
    pub sum_polls: f64,
    /// Poll-cost regression: Σ polls².
    pub sum_polls_sq: f64,
    /// Poll-cost regression: Σ ns.
    pub sum_ns: f64,
    /// Poll-cost regression: Σ polls·ns.
    pub sum_polls_ns: f64,
}

impl TelemetryEntry {
    fn new(sample: &SolveSample) -> Self {
        let mut entry = Self {
            samples: 0,
            ewma_ns: sample.ns as f64,
            min_ns: u64::MAX,
            last_ns: 0,
            wait_polls: 0,
            barriers: sample.barriers,
            terms: sample.terms,
            pred_units: sample.pred_units,
            work_units: sample.work_units,
            sum_polls: 0.0,
            sum_polls_sq: 0.0,
            sum_ns: 0.0,
            sum_polls_ns: 0.0,
        };
        entry.record(sample);
        entry
    }

    fn record(&mut self, sample: &SolveSample) {
        self.samples += 1;
        self.ewma_ns += EWMA_ALPHA * (sample.ns as f64 - self.ewma_ns);
        self.min_ns = self.min_ns.min(sample.ns);
        self.last_ns = sample.ns;
        self.wait_polls += sample.wait_polls;
        self.barriers = sample.barriers;
        self.terms = sample.terms;
        self.pred_units = sample.pred_units;
        self.work_units = sample.work_units;
        let polls = sample.wait_polls as f64;
        let ns = sample.ns as f64;
        self.sum_polls += polls;
        self.sum_polls_sq += polls * polls;
        self.sum_ns += ns;
        self.sum_polls_ns += polls * ns;
    }

    /// Mean failed polls per solve.
    pub fn mean_polls(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.wait_polls as f64 / self.samples as f64
        }
    }

    /// Least-squares slope of per-solve nanoseconds over per-solve poll
    /// counts — the *measured* cost of one busy-wait poll, model-free:
    /// solves of the same structure differ in how often readers caught
    /// their writers unfinished, and the slope is what each extra poll
    /// cost. `None` until [`MIN_SLOPE_SAMPLES`] solves exist, the poll
    /// counts actually varied, and the slope came out non-negative (a
    /// negative slope means scheduling noise dominated, not that polls
    /// have negative cost).
    pub fn poll_slope_ns(&self) -> Option<f64> {
        if self.samples < MIN_SLOPE_SAMPLES {
            return None;
        }
        let k = self.samples as f64;
        let denominator = k * self.sum_polls_sq - self.sum_polls * self.sum_polls;
        if denominator <= f64::EPSILON * k * self.sum_polls_sq.max(1.0) {
            return None; // poll counts never varied
        }
        let slope = (k * self.sum_polls_ns - self.sum_polls * self.sum_ns) / denominator;
        (slope.is_finite() && slope >= 0.0).then_some(slope)
    }

    /// Converts to the persistence mirror (`doacross_plan::persist`).
    pub fn to_stored(&self, fingerprint: PatternFingerprint, kind: VariantKind) -> StoredTelemetry {
        StoredTelemetry {
            fingerprint,
            variant: kind.tag(),
            samples: self.samples,
            ewma_ns: self.ewma_ns,
            min_ns: self.min_ns,
            last_ns: self.last_ns,
            wait_polls: self.wait_polls,
            barriers: self.barriers,
            terms: self.terms,
            pred_units: self.pred_units,
            work_units: self.work_units,
            sum_polls: self.sum_polls,
            sum_polls_sq: self.sum_polls_sq,
            sum_ns: self.sum_ns,
            sum_polls_ns: self.sum_polls_ns,
        }
    }

    /// Reconstructs from the persistence mirror; `None` for a tag this
    /// build does not know.
    pub fn from_stored(
        stored: &StoredTelemetry,
    ) -> Option<(PatternFingerprint, VariantKind, Self)> {
        let kind = VariantKind::from_tag(stored.variant)?;
        Some((
            stored.fingerprint,
            kind,
            Self {
                samples: stored.samples,
                ewma_ns: stored.ewma_ns,
                min_ns: stored.min_ns,
                last_ns: stored.last_ns,
                wait_polls: stored.wait_polls,
                barriers: stored.barriers,
                terms: stored.terms,
                pred_units: stored.pred_units,
                work_units: stored.work_units,
                sum_polls: stored.sum_polls,
                sum_polls_sq: stored.sum_polls_sq,
                sum_ns: stored.sum_ns,
                sum_polls_ns: stored.sum_polls_ns,
            },
        ))
    }
}

/// Engine-wide aggregate counts, for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TelemetryTotals {
    /// Total solves recorded across all keys.
    pub samples: u64,
    /// Distinct `(structure, variant)` keys.
    pub entries: usize,
    /// Distinct structures.
    pub structures: usize,
}

/// One shard's accumulators, keyed by `(structure, variant)`.
type TelemetryShard = HashMap<(PatternFingerprint, VariantKind), TelemetryEntry>;

/// The sharded recorder (see module docs). All methods take `&self`.
pub struct VariantTelemetry {
    shards: Box<[Mutex<TelemetryShard>]>,
    /// `64 − log2(shards.len())`: shard index = fingerprint high bits.
    shift: u32,
}

impl VariantTelemetry {
    /// Recorder with `shards` shards (rounded up to a power of two,
    /// minimum 1). Use the same shard count as the plan cache so the two
    /// contend identically.
    pub fn new(shards: usize) -> Self {
        let nshards = shards.max(1).next_power_of_two();
        Self {
            shards: (0..nshards).map(|_| Mutex::new(HashMap::new())).collect(),
            shift: 64 - nshards.trailing_zeros(),
        }
    }

    fn shard(&self, key: &PatternFingerprint) -> &Mutex<TelemetryShard> {
        let index = if self.shards.len() == 1 {
            0
        } else {
            (key.high_bits() >> self.shift) as usize
        };
        &self.shards[index]
    }

    /// Deposits one solve under `(fingerprint, kind)`.
    pub fn record(&self, fingerprint: &PatternFingerprint, kind: VariantKind, sample: SolveSample) {
        let mut shard = self.shard(fingerprint).lock();
        match shard.entry((*fingerprint, kind)) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().record(&sample),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(TelemetryEntry::new(&sample));
            }
        }
    }

    /// Snapshot of one key's accumulator.
    pub fn get(
        &self,
        fingerprint: &PatternFingerprint,
        kind: VariantKind,
    ) -> Option<TelemetryEntry> {
        self.shard(fingerprint)
            .lock()
            .get(&(*fingerprint, kind))
            .copied()
    }

    /// Snapshot of every key's accumulator. Shards are locked one at a
    /// time — each entry is internally consistent, the vector is not a
    /// global atomic cut (the same contract as the plan cache's stats).
    pub fn entries(&self) -> Vec<(PatternFingerprint, VariantKind, TelemetryEntry)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            for (&(fp, kind), entry) in shard.lock().iter() {
                out.push((fp, kind, *entry));
            }
        }
        // Deterministic order for consumers and tests (HashMap iteration
        // order is not) — raw fingerprint words are the allocation-free
        // total order.
        out.sort_by_key(|(fp, kind, _)| (fp.to_raw(), *kind));
        out
    }

    /// Engine-wide aggregate counts. Sums shard by shard — no snapshot
    /// vector, no sorting (this runs on observability paths callers may
    /// hit per solve).
    pub fn totals(&self) -> TelemetryTotals {
        let mut totals = TelemetryTotals::default();
        let mut structures = std::collections::HashSet::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            totals.entries += shard.len();
            for (&(fp, _), entry) in shard.iter() {
                totals.samples += entry.samples;
                structures.insert(fp);
            }
        }
        totals.structures = structures.len();
        totals
    }

    /// Restores a persisted accumulator. When the key already holds live
    /// samples, the restore is dropped if it carries fewer — live evidence
    /// from *this* process beats a snapshot of a previous one, and a
    /// double restore is idempotent.
    pub fn restore(
        &self,
        fingerprint: PatternFingerprint,
        kind: VariantKind,
        entry: TelemetryEntry,
    ) -> bool {
        if entry.samples == 0 {
            return false;
        }
        let mut shard = self.shard(&fingerprint).lock();
        match shard.entry((fingerprint, kind)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if e.get().samples < entry.samples {
                    e.insert(entry);
                    true
                } else {
                    false
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(entry);
                true
            }
        }
    }

    /// Drops every accumulator of one structure (all variants) — used on
    /// invalidation, when the caller asserts the structure's index arrays
    /// changed and the observations no longer describe it.
    pub fn forget(&self, fingerprint: &PatternFingerprint) {
        self.shard(fingerprint)
            .lock()
            .retain(|(fp, _), _| fp != fingerprint);
    }

    /// Drops every accumulator.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard.lock().clear();
        }
    }
}

impl std::fmt::Debug for VariantTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let totals = self.totals();
        f.debug_struct("VariantTelemetry")
            .field("shards", &self.shards.len())
            .field("totals", &totals)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn fp(n: usize) -> PatternFingerprint {
        use doacross_core::IndirectLoop;
        let a: Vec<usize> = (0..n).collect();
        PatternFingerprint::of(&IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap())
    }

    fn sample(ns: u64, polls: u64) -> SolveSample {
        SolveSample {
            ns,
            wait_polls: polls,
            barriers: 0,
            terms: 100,
            pred_units: 500.0,
            work_units: 450.0,
        }
    }

    #[test]
    fn kind_tags_round_trip_and_match_persist_tags() {
        for kind in VariantKind::all() {
            assert_eq!(VariantKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(VariantKind::from_tag(6), None);
        assert_eq!(VariantKind::from(PlanVariant::Wavefront).tag(), 5);
        assert_eq!(
            VariantKind::from(PlanVariant::Blocked { block_size: 4 }),
            VariantKind::Blocked
        );
    }

    #[test]
    fn entry_tracks_ewma_min_count() {
        let telemetry = VariantTelemetry::new(4);
        let key = fp(10);
        for (ns, polls) in [(100u64, 0u64), (300, 10), (200, 5)] {
            telemetry.record(&key, VariantKind::Doacross, sample(ns, polls));
        }
        let e = telemetry.get(&key, VariantKind::Doacross).unwrap();
        assert_eq!(e.samples, 3);
        assert_eq!(e.min_ns, 100);
        assert_eq!(e.last_ns, 200);
        assert_eq!(e.wait_polls, 15);
        assert!(e.ewma_ns >= 100.0 && e.ewma_ns <= 300.0, "{}", e.ewma_ns);
        assert_eq!(telemetry.get(&key, VariantKind::Wavefront), None);

        let totals = telemetry.totals();
        assert_eq!(totals.samples, 3);
        assert_eq!(totals.entries, 1);
        assert_eq!(totals.structures, 1);
    }

    #[test]
    fn poll_slope_recovers_a_synthetic_poll_cost() {
        // ns = 1000 + 7·polls, exactly: the regression must return 7.
        let telemetry = VariantTelemetry::new(1);
        let key = fp(7);
        for polls in [0u64, 10, 20, 40, 80] {
            telemetry.record(
                &key,
                VariantKind::Doacross,
                sample(1_000 + 7 * polls, polls),
            );
        }
        let e = telemetry.get(&key, VariantKind::Doacross).unwrap();
        let slope = e.poll_slope_ns().expect("varying polls, enough samples");
        assert!((slope - 7.0).abs() < 1e-6, "{slope}");

        // Constant poll counts carry no slope information.
        let flat = fp(8);
        for _ in 0..6 {
            telemetry.record(&flat, VariantKind::Doacross, sample(1_000, 5));
        }
        assert_eq!(
            telemetry
                .get(&flat, VariantKind::Doacross)
                .unwrap()
                .poll_slope_ns(),
            None
        );
    }

    #[test]
    fn stored_round_trip_preserves_every_field() {
        let telemetry = VariantTelemetry::new(2);
        let key = fp(5);
        for polls in [3u64, 9, 1] {
            telemetry.record(&key, VariantKind::Reordered, sample(2_000 + polls, polls));
        }
        let entry = telemetry.get(&key, VariantKind::Reordered).unwrap();
        let stored = entry.to_stored(key, VariantKind::Reordered);
        let (fp2, kind2, back) = TelemetryEntry::from_stored(&stored).unwrap();
        assert_eq!(fp2, key);
        assert_eq!(kind2, VariantKind::Reordered);
        assert_eq!(back, entry);
    }

    #[test]
    fn restore_prefers_live_evidence_and_is_idempotent() {
        let telemetry = VariantTelemetry::new(1);
        let key = fp(6);
        for _ in 0..5 {
            telemetry.record(&key, VariantKind::Linear, sample(900, 0));
        }
        let live = telemetry.get(&key, VariantKind::Linear).unwrap();

        // A snapshot with fewer samples never displaces live state.
        let mut stale = live;
        stale.samples = 2;
        stale.min_ns = 1; // would corrupt the minimum if accepted
        assert!(!telemetry.restore(key, VariantKind::Linear, stale));
        assert_eq!(telemetry.get(&key, VariantKind::Linear).unwrap(), live);

        // A richer snapshot wins; restoring it twice changes nothing.
        let mut richer = live;
        richer.samples = 50;
        assert!(telemetry.restore(key, VariantKind::Linear, richer));
        assert!(!telemetry.restore(key, VariantKind::Linear, richer));
        assert_eq!(telemetry.get(&key, VariantKind::Linear).unwrap(), richer);

        // Empty snapshots are dropped outright.
        let mut empty = live;
        empty.samples = 0;
        assert!(!telemetry.restore(fp(60), VariantKind::Linear, empty));
    }

    #[test]
    fn concurrent_recorders_keep_exact_counts_and_bounds() {
        // 4 threads × 250 samples over 8 structures: counts and sums are
        // exact (mutex-guarded adds are associative), the minimum is the
        // true minimum, and every EWMA stays inside the sample hull.
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 250;
        let telemetry = Arc::new(VariantTelemetry::new(4));
        let keys: Arc<Vec<PatternFingerprint>> = Arc::new((1..=8).map(fp).collect());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let telemetry = Arc::clone(&telemetry);
                let keys = Arc::clone(&keys);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let key = &keys[(t + i) as usize % keys.len()];
                        let ns = 1_000 + (t * 37 + i * 13) % 500;
                        telemetry.record(key, VariantKind::Doacross, sample(ns, i % 7));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let totals = telemetry.totals();
        assert_eq!(totals.samples, THREADS * PER_THREAD);
        assert_eq!(totals.structures, 8);
        for (_, _, e) in telemetry.entries() {
            assert!(e.min_ns >= 1_000 && e.min_ns < 1_500);
            assert!(e.ewma_ns >= e.min_ns as f64);
            assert!(e.ewma_ns < 1_500.0);
        }
    }
}
