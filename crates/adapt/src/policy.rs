//! The promotion/demotion policy: when to re-price, when to trial a
//! different variant, and when to commit or roll back — with hysteresis.
//!
//! ## The loop, per structure
//!
//! 1. **Observe.** Solves accumulate telemetry under the running variant.
//!    Nothing else happens until the variant has
//!    [`AdaptiveConfig::min_samples`] observations *and*
//!    [`AdaptiveConfig::eval_interval`] solves have passed since the last
//!    evaluation — evaluation is off the per-solve hot path by
//!    construction.
//! 2. **Re-price on divergence.** At an evaluation point the engine
//!    refines the cost model from telemetry ([`crate::refine`]) and
//!    re-prices the plan's candidates ([`crate::pricing::reprice`]). The
//!    **divergence threshold** ([`AdaptiveConfig::divergence`], default
//!    1.5) gates everything: only when the refined price of the *running*
//!    variant differs from its static price by more than the factor —
//!    i.e. the machine measurably disagrees with the model that chose the
//!    variant — is a change even considered. Within the band, prediction
//!    noise is tolerated and the plan is left alone.
//! 3. **Trial.** If, under refined prices, a non-rejected candidate beats
//!    the running variant by the [`AdaptiveConfig::hysteresis`] margin,
//!    the engine builds that variant and swaps it in (generation bump —
//!    stale handles fail typed). The previous plan is retained.
//! 4. **Commit or demote on measurement.** Once the trialed variant has
//!    `min_samples` of its own, the fastest observed solve of each side
//!    decides: the trial **commits** if its minimum beats the incumbent's
//!    minimum by the hysteresis margin, else it **demotes** — the
//!    incumbent plan is swapped back (another generation bump).
//!
//! ## Why it cannot flip-flop
//!
//! Every trial *consumes* a variant: a committed trial rejects the
//! incumbent, a demoted trial rejects the challenger — rejected variants
//! are never trialed again for that structure (until an explicit
//! invalidation resets the slate). With at most six variant families and
//! [`AdaptiveConfig::max_trials`] trials (after which the structure is
//! **pinned**), the per-structure swap count is bounded no matter how the
//! workload oscillates; an adversarial phase change can waste at most
//! `max_trials` round trips, ever, and each leg of a round trip must win
//! a measured comparison by the margin to happen at all.

use crate::telemetry::{TelemetryEntry, VariantKind};

/// Knobs of the adaptive policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Observations a variant needs before any decision uses it — both to
    /// consider evaluation and to end a trial.
    pub min_samples: u64,
    /// Solves between evaluation points (re-pricing cadence).
    pub eval_interval: u64,
    /// Divergence factor: re-pricing can only displace the running
    /// variant when its refined price leaves `[static/d, static·d]`.
    pub divergence: f64,
    /// Multiplicative margin a challenger must win by — at trial start
    /// (refined prices) and at commit (measured minimums).
    pub hysteresis: f64,
    /// Trials per structure before it is pinned to its current variant.
    pub max_trials: u32,
    /// Confidence threshold handed to [`crate::refine`].
    pub confidence: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            min_samples: 6,
            eval_interval: 12,
            divergence: 1.5,
            hysteresis: 1.05,
            max_trials: 3,
            confidence: 6,
        }
    }
}

/// An in-flight trial: `target` is executing, `incumbent` is retained for
/// rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trial {
    /// The variant under trial (currently cached and executing).
    pub target: VariantKind,
    /// The variant it is trying to displace.
    pub incumbent: VariantKind,
}

/// Per-structure policy state. Owned by the engine, advanced by
/// [`PromotionPolicy`]; deliberately value-only (no plan references) so it
/// is unit-testable without an engine.
#[derive(Debug, Clone, Default)]
pub struct StructureState {
    solves_since_eval: u64,
    trial: Option<Trial>,
    rejected: Vec<VariantKind>,
    trials_started: u32,
    pinned: bool,
}

impl StructureState {
    /// The in-flight trial, if any.
    pub fn trial(&self) -> Option<&Trial> {
        self.trial.as_ref()
    }

    /// Variants that lost a measured comparison here and are out of the
    /// running.
    pub fn rejected(&self) -> &[VariantKind] {
        &self.rejected
    }

    /// Whether this structure stopped adapting (trial budget exhausted).
    pub fn is_pinned(&self) -> bool {
        self.pinned
    }

    /// Trials started so far.
    pub fn trials_started(&self) -> u32 {
        self.trials_started
    }
}

/// What the engine should do after a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Nothing — keep executing the cached plan.
    Keep,
    /// An evaluation point: refine the model and re-price.
    /// `probe_baseline` asks the engine to time one sequential pass of the
    /// structure first, so refinement has its anchor (see
    /// [`crate::refine`]) and a measured sequential baseline exists before
    /// any promotion decision.
    Evaluate {
        /// Whether a sequential baseline observation is still missing.
        probe_baseline: bool,
    },
    /// The trial won on measurement: drop the retained incumbent plan.
    Commit(Trial),
    /// The trial lost on measurement: swap the retained incumbent back.
    Demote(Trial),
}

/// The decision maker (see module docs). Stateless apart from its
/// configuration; all mutable state lives in [`StructureState`].
#[derive(Debug, Clone)]
pub struct PromotionPolicy {
    cfg: AdaptiveConfig,
}

impl PromotionPolicy {
    /// Policy with the given knobs.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        Self { cfg }
    }

    /// The knobs in force.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Advances `state` by one observed solve of `current`.
    ///
    /// `current_entry` is the telemetry for `(structure, current)`;
    /// `incumbent_entry` the incumbent's during a trial; `has_baseline`
    /// whether a sequential observation of the structure exists.
    pub fn on_solve(
        &self,
        state: &mut StructureState,
        current: VariantKind,
        current_entry: &TelemetryEntry,
        incumbent_entry: Option<&TelemetryEntry>,
        has_baseline: bool,
    ) -> Action {
        if state.pinned {
            return Action::Keep;
        }
        if let Some(trial) = state.trial {
            if current == trial.incumbent {
                // A solve that was already in flight through an old
                // handle when the swap landed (handles check staleness at
                // entry, so a concurrent executor legitimately finishes
                // one last incumbent solve). It is extra incumbent
                // evidence, not a plan change — the trial stands.
                return Action::Keep;
            }
            if current != trial.target {
                // The cached plan changed under us to something that is
                // neither side of the trial (an external replan): the
                // trial is moot. Forget it without judging.
                state.trial = None;
                state.solves_since_eval = 0;
                return Action::Keep;
            }
            if current_entry.samples < self.cfg.min_samples {
                return Action::Keep;
            }
            let Some(incumbent) = incumbent_entry else {
                // No measured incumbent to compare against (its telemetry
                // was cleared): keep the trial variant by default.
                return Action::Commit(trial);
            };
            return if (current_entry.min_ns as f64) * self.cfg.hysteresis <= incumbent.min_ns as f64
            {
                Action::Commit(trial)
            } else {
                Action::Demote(trial)
            };
        }
        state.solves_since_eval += 1;
        if current_entry.samples < self.cfg.min_samples
            || state.solves_since_eval < self.cfg.eval_interval
        {
            return Action::Keep;
        }
        state.solves_since_eval = 0;
        Action::Evaluate {
            probe_baseline: !has_baseline && current != VariantKind::Sequential,
        }
    }

    /// Judges an evaluation: given the running variant's static and
    /// refined prices and the full refined candidate table, proposes a
    /// challenger — or `None` to keep the plan. See the module docs for
    /// the divergence/hysteresis semantics. `refined_prices` must yield
    /// the refined price of any candidate (`None` = not legal here).
    pub fn propose(
        &self,
        state: &mut StructureState,
        current: VariantKind,
        static_price: f64,
        refined_price: f64,
        mut refined_prices: impl FnMut(VariantKind) -> Option<f64>,
    ) -> Option<VariantKind> {
        if state.pinned || state.trial.is_some() {
            return None;
        }
        if !(static_price.is_finite() && refined_price.is_finite()) || static_price <= 0.0 {
            return None;
        }
        let ratio = refined_price / static_price;
        if ratio <= self.cfg.divergence && ratio >= 1.0 / self.cfg.divergence {
            return None; // prediction still trusted
        }
        let (winner, price) = crate::pricing::cheapest_by(&mut refined_prices, |kind| {
            kind != current && !state.rejected.contains(&kind)
        })?;
        (price * self.cfg.hysteresis < refined_price).then_some(winner)
    }

    /// Records that the engine swapped `target` in over `incumbent`.
    /// Returns `false` (and pins) when the trial budget is exhausted —
    /// the engine must check *before* building; this is the bookkeeping
    /// half.
    pub fn begin_trial(
        &self,
        state: &mut StructureState,
        target: VariantKind,
        incumbent: VariantKind,
    ) -> bool {
        if state.pinned || state.trials_started >= self.cfg.max_trials {
            state.pinned = true;
            return false;
        }
        state.trials_started += 1;
        state.trial = Some(Trial { target, incumbent });
        state.solves_since_eval = 0;
        true
    }

    /// Whether a new trial may start (budget not exhausted).
    pub fn may_trial(&self, state: &StructureState) -> bool {
        !state.pinned && state.trials_started < self.cfg.max_trials
    }

    /// Finishes a trial: the losing side is rejected (never trialed again
    /// for this structure) and the structure pins once the budget is
    /// spent.
    pub fn complete_trial(&self, state: &mut StructureState, trial: Trial, committed: bool) {
        let loser = if committed {
            trial.incumbent
        } else {
            trial.target
        };
        if !state.rejected.contains(&loser) {
            state.rejected.push(loser);
        }
        state.trial = None;
        state.solves_since_eval = 0;
        if state.trials_started >= self.cfg.max_trials {
            state.pinned = true;
        }
    }

    /// Forgets everything about a structure (used on invalidation: a new
    /// structure generation starts with a clean slate).
    pub fn reset(&self, state: &mut StructureState) {
        *state = StructureState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(samples: u64, min_ns: u64) -> TelemetryEntry {
        TelemetryEntry {
            samples,
            ewma_ns: min_ns as f64,
            min_ns,
            last_ns: min_ns,
            wait_polls: 0,
            barriers: 0,
            terms: 100,
            pred_units: 1_000.0,
            work_units: 900.0,
            sum_polls: 0.0,
            sum_polls_sq: 0.0,
            sum_ns: 0.0,
            sum_polls_ns: 0.0,
        }
    }

    fn policy() -> PromotionPolicy {
        PromotionPolicy::new(AdaptiveConfig {
            min_samples: 3,
            eval_interval: 4,
            divergence: 1.5,
            hysteresis: 1.05,
            max_trials: 3,
            confidence: 3,
        })
    }

    #[test]
    fn evaluation_waits_for_samples_and_interval() {
        let p = policy();
        let mut st = StructureState::default();
        // Too few samples: never evaluates, however many solves pass.
        for _ in 0..10 {
            assert_eq!(
                p.on_solve(&mut st, VariantKind::Doacross, &entry(2, 100), None, true),
                Action::Keep
            );
        }
        // Enough samples: evaluates every `eval_interval` solves.
        let mut evals = 0;
        for _ in 0..12 {
            if let Action::Evaluate { probe_baseline } =
                p.on_solve(&mut st, VariantKind::Doacross, &entry(9, 100), None, true)
            {
                assert!(!probe_baseline, "baseline present");
                evals += 1;
            }
        }
        assert_eq!(evals, 3, "12 solves / interval 4");
    }

    #[test]
    fn missing_baseline_requests_a_probe_except_for_sequential() {
        let p = policy();
        let mut st = StructureState::default();
        let mut action = Action::Keep;
        for _ in 0..4 {
            action = p.on_solve(&mut st, VariantKind::Wavefront, &entry(9, 100), None, false);
        }
        assert_eq!(
            action,
            Action::Evaluate {
                probe_baseline: true
            }
        );
        // A sequential current variant IS the baseline.
        let mut st = StructureState::default();
        let mut action = Action::Keep;
        for _ in 0..4 {
            action = p.on_solve(
                &mut st,
                VariantKind::Sequential,
                &entry(9, 100),
                None,
                false,
            );
        }
        assert_eq!(
            action,
            Action::Evaluate {
                probe_baseline: false
            }
        );
    }

    #[test]
    fn propose_requires_divergence_and_a_margin_winner() {
        let p = policy();
        let mut st = StructureState::default();
        let prices = |k: VariantKind| match k {
            VariantKind::Sequential => Some(500.0),
            VariantKind::Wavefront => Some(2_000.0),
            _ => None,
        };
        // Within the divergence band: no proposal even with a cheaper
        // candidate on the table.
        assert_eq!(
            p.propose(&mut st, VariantKind::Wavefront, 1_000.0, 1_400.0, prices),
            None
        );
        // Diverged: the cheapest non-rejected candidate that clears the
        // hysteresis margin wins.
        assert_eq!(
            p.propose(&mut st, VariantKind::Wavefront, 1_000.0, 2_000.0, prices),
            Some(VariantKind::Sequential)
        );
        // Divergence can fire downward too (the model *over*-priced us) —
        // but a candidate must still beat the refined price by the margin.
        assert_eq!(
            p.propose(&mut st, VariantKind::Wavefront, 10_000.0, 600.0, prices),
            Some(VariantKind::Sequential)
        );
        assert_eq!(
            p.propose(&mut st, VariantKind::Wavefront, 10_000.0, 520.0, prices),
            None,
            "within the hysteresis margin of the best candidate"
        );
        // A rejected candidate is invisible.
        st.rejected.push(VariantKind::Sequential);
        assert_eq!(
            p.propose(&mut st, VariantKind::Wavefront, 1_000.0, 2_000.0, prices),
            None
        );
    }

    #[test]
    fn trial_commits_on_measured_win_and_demotes_on_regression() {
        let p = policy();
        // Commit: the trial's measured minimum beats the incumbent's by
        // more than the 5% margin.
        let mut st = StructureState::default();
        assert!(p.begin_trial(&mut st, VariantKind::Sequential, VariantKind::Wavefront));
        let action = p.on_solve(
            &mut st,
            VariantKind::Sequential,
            &entry(3, 100),
            Some(&entry(5, 500)),
            true,
        );
        let trial = Trial {
            target: VariantKind::Sequential,
            incumbent: VariantKind::Wavefront,
        };
        assert_eq!(action, Action::Commit(trial));
        p.complete_trial(&mut st, trial, true);
        assert_eq!(st.rejected(), &[VariantKind::Wavefront]);
        assert!(st.trial().is_none());

        // Demote: marginal improvement below the margin is a regression
        // by policy (hysteresis), and the challenger is rejected.
        let mut st = StructureState::default();
        assert!(p.begin_trial(&mut st, VariantKind::Sequential, VariantKind::Wavefront));
        let action = p.on_solve(
            &mut st,
            VariantKind::Sequential,
            &entry(3, 490),
            Some(&entry(5, 500)),
            true,
        );
        assert_eq!(action, Action::Demote(trial));
        p.complete_trial(&mut st, trial, false);
        assert_eq!(st.rejected(), &[VariantKind::Sequential]);
    }

    #[test]
    fn in_flight_incumbent_solves_do_not_cancel_a_trial() {
        // Regression: with many executors, a solve that entered through
        // an old handle before the swap finishes *after* it and reports
        // the incumbent variant. That is extra incumbent evidence — the
        // trial must survive it (and its budget slot must not be burned
        // on a phantom cancellation).
        let p = policy();
        let mut st = StructureState::default();
        assert!(p.begin_trial(&mut st, VariantKind::Sequential, VariantKind::Wavefront));
        let started = st.trials_started();
        for _ in 0..5 {
            let action = p.on_solve(
                &mut st,
                VariantKind::Wavefront, // the in-flight incumbent solve
                &entry(9, 500),
                Some(&entry(9, 500)),
                true,
            );
            assert_eq!(action, Action::Keep);
        }
        assert!(st.trial().is_some(), "trial survives straggler solves");
        assert_eq!(st.trials_started(), started, "no budget burned");

        // A solve of something that is NEITHER side means the plan
        // changed externally: the trial is abandoned without judgment.
        let action = p.on_solve(&mut st, VariantKind::Doacross, &entry(9, 100), None, true);
        assert_eq!(action, Action::Keep);
        assert!(st.trial().is_none(), "external replan cancels");
        assert!(st.rejected().is_empty(), "cancellation judges nobody");
    }

    #[test]
    fn rejected_variants_never_trial_again_so_oscillation_terminates() {
        // A synthetically oscillating workload: whichever variant runs,
        // the "measurement" says the other was faster. The policy must
        // converge (bounded swaps), not chase it forever.
        let p = policy();
        let mut st = StructureState::default();
        let mut current = VariantKind::Wavefront;
        let mut swaps = 0;
        for round in 0..50 {
            // Adversarial refinement: every candidate always looks 20x
            // cheaper than whatever is running.
            let proposal = p.propose(&mut st, current, 1_000.0, 2_000.0, |_| Some(100.0));
            if let Some(target) = proposal {
                if !p.may_trial(&st) {
                    break;
                }
                assert!(p.begin_trial(&mut st, target, current));
                swaps += 1;
                // The measured comparison flips every time: commit on even
                // rounds, demote on odd — worst case for stability.
                let committed = round % 2 == 0;
                let trial = *st.trial().unwrap();
                p.complete_trial(&mut st, trial, committed);
                if committed {
                    current = target;
                }
            }
        }
        assert_eq!(swaps, 3, "swap budget respected exactly");
        assert!(st.is_pinned());
        // Terminal state: the proposal stream has gone quiet for good,
        // however loudly the refined table keeps oscillating.
        let quiet = p.propose(&mut st, current, 1_000.0, 2_000.0, |_| Some(1.0));
        assert_eq!(quiet, None);
    }

    #[test]
    fn pinning_exhausts_the_trial_budget() {
        let p = policy();
        let mut st = StructureState::default();
        for _ in 0..3 {
            assert!(p.may_trial(&st));
            assert!(p.begin_trial(&mut st, VariantKind::Sequential, VariantKind::Doacross));
            let trial = *st.trial().unwrap();
            p.complete_trial(&mut st, trial, false);
            st.rejected.clear(); // re-arm the oscillation adversarially
        }
        assert!(st.is_pinned());
        assert!(!p.may_trial(&st));
        assert!(!p.begin_trial(&mut st, VariantKind::Sequential, VariantKind::Doacross));
        assert_eq!(
            p.on_solve(&mut st, VariantKind::Doacross, &entry(99, 1), None, true),
            Action::Keep
        );
        // Invalidation resets the slate.
        p.reset(&mut st);
        assert!(!st.is_pinned());
        assert!(p.may_trial(&st));
    }
}
