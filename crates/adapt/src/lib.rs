//! # doacross-adapt — feedback-driven planning
//!
//! The planner (`doacross-plan`) selects variants with an *a-priori* cost
//! model: the Multimax preset, or a one-shot host calibration. Both are
//! guesses about the future frozen at build time — and both the symbolic
//! loop-compilation and speculative-taskloop literatures report the same
//! thing this workspace's own benches show: when runtime behavior
//! diverges from the model (oversubscription, contention, cache effects,
//! a structure whose stall pattern the formulas only approximate), static
//! selection leaves measured wins on the table. This crate closes the
//! loop. Three layers, consumed by `doacross_engine::EngineBuilder::adaptive`:
//!
//! * [`telemetry`] — [`VariantTelemetry`], a lock-light (sharded,
//!   short-critical-section) recorder keyed by `(structure fingerprint,
//!   variant)`: per-solve wall time EWMA + minimum + exact counts, poll
//!   and barrier counters, and the running sums of a polls-vs-time
//!   regression. Fed by the engine after every execute; aggregated
//!   engine-wide; persisted in v3 plan stores so a warm start resumes
//!   mid-confidence.
//! * [`refine`] — turns telemetry into measured cost-model constants
//!   (`wait_poll`, `barrier`, per-reference `chain` cost), anchored by
//!   host calibration or a sequential baseline observation, and blends
//!   them into the static model via
//!   [`doacross_sim::CostModel::refined_from`] with a weight that grows
//!   with the evidence. [`pricing`] then re-prices a plan's candidate
//!   table under the refined model with pure arithmetic (the stall sums
//!   and wavefront rounds are recovered from the static prices by
//!   inverting the planner's formulas).
//! * [`policy`] — [`PromotionPolicy`]: *when observed cost diverges from
//!   prediction by more than the configured factor, re-price; if a
//!   candidate wins by the hysteresis margin, trial it (the engine swaps
//!   the cached plan under the shard lock with a generation bump — stale
//!   handles fail typed); commit or demote on the measured comparison.*
//!   Every trial rejects its loser permanently, so the policy provably
//!   cannot flip-flop — see [`policy`]'s module docs for the full
//!   argument.
//!
//! The engine-side wiring (what feeds the recorder, runs the baseline
//! probe, builds promoted plans via the existing census, and performs the
//! swap) lives in `doacross_engine::adaptive`; this crate is the part
//! with no locks held across solves and no engine in sight, which is why
//! all three layers are unit-testable with synthetic numbers.

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod policy;
pub mod pricing;
pub mod refine;
pub mod telemetry;

pub use policy::{Action, AdaptiveConfig, PromotionPolicy, StructureState, Trial};
pub use pricing::{breakdown, cheapest, cheapest_by, price_of, reprice, Breakdown};
pub use refine::{refine, Refinement, RefinementConfig};
pub use telemetry::{
    SolveSample, TelemetryEntry, TelemetryTotals, VariantKind, VariantTelemetry, EWMA_ALPHA,
};
