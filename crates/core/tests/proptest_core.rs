//! Property-based tests of the core runtime over arbitrary parameters:
//! Figure 4 grid points, linear-vs-inspected equivalence on arbitrary
//! strided loops, and measured-vs-ground-truth dependence classification.

use doacross_core::IndirectLoop;
use doacross_core::{
    seq::run_sequential, AccessPattern, BlockedDoacross, Doacross, LinearDoacross, LinearSubscript,
    TestLoop,
};
use doacross_par::ThreadPool;
use proptest::prelude::*;

/// An arbitrary loop with a linear lhs `a(i) = c·i + d` and in-bounds rhs.
fn arb_strided_loop() -> impl Strategy<Value = (IndirectLoop, LinearSubscript, Vec<f64>)> {
    (1usize..4, 0usize..6, 1usize..40)
        .prop_flat_map(|(c, d, n)| {
            let data_len = c * n + d + 4;
            let rhs =
                proptest::collection::vec(proptest::collection::vec(0..data_len, 0..3), n..=n);
            let y0 = proptest::collection::vec(-1.0..1.0f64, data_len..=data_len);
            (Just((c, d, n, data_len)), rhs, y0)
        })
        .prop_map(|((c, d, n, data_len), rhs, y0)| {
            let a: Vec<usize> = (0..n).map(|i| c * i + d).collect();
            let coeff: Vec<Vec<f64>> = rhs
                .iter()
                .map(|r| r.iter().map(|_| 0.375).collect())
                .collect();
            let loop_ = IndirectLoop::new(data_len, a, rhs, coeff).expect("valid");
            (loop_, LinearSubscript::new(c, d), y0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn linear_and_inspected_agree_on_any_strided_loop(
        (loop_, subscript, y0) in arb_strided_loop(),
    ) {
        let pool = ThreadPool::new(3);
        let mut expect = y0.clone();
        run_sequential(&loop_, &mut expect);

        let mut y_inspected = y0.clone();
        Doacross::for_loop(&loop_)
            .run(&pool, &loop_, &mut y_inspected)
            .expect("injective lhs");
        prop_assert_eq!(&y_inspected, &expect);

        let mut y_linear = y0;
        LinearDoacross::new(loop_.data_len())
            .run(&pool, &loop_, subscript, &mut y_linear)
            .expect("declared subscript matches");
        prop_assert_eq!(&y_linear, &expect);
    }

    #[test]
    fn testloop_census_matches_runtime_classification(
        n in 1usize..400,
        m in 0usize..6,
        l in 1usize..=14,
    ) {
        let loop_ = TestLoop::new(n, m, l);
        let census = loop_.census();
        prop_assert_eq!(
            census.true_deps + census.anti_deps + census.intra + census.unwritten,
            (n * m) as u64
        );
        let pool = ThreadPool::new(2);
        let mut y = loop_.initial_y();
        let stats = Doacross::for_loop(&loop_)
            .run(&pool, &loop_, &mut y)
            .expect("test loop is valid");
        prop_assert_eq!(stats.deps.true_deps, census.true_deps);
        prop_assert_eq!(stats.deps.intra, census.intra);
        prop_assert_eq!(
            stats.deps.anti_or_unwritten,
            census.anti_deps + census.unwritten
        );
    }

    #[test]
    fn testloop_all_variants_agree(
        n in 1usize..300,
        m in 0usize..4,
        l in 1usize..=14,
        block in 1usize..64,
    ) {
        let loop_ = TestLoop::new(n, m, l);
        let pool = ThreadPool::new(3);
        let mut expect = loop_.initial_y();
        run_sequential(&loop_, &mut expect);

        let mut y1 = loop_.initial_y();
        Doacross::for_loop(&loop_).run(&pool, &loop_, &mut y1).expect("valid");
        prop_assert_eq!(&y1, &expect);

        let mut y2 = loop_.initial_y();
        LinearDoacross::new(loop_.data_len())
            .run(&pool, &loop_, loop_.linear_subscript(), &mut y2)
            .expect("linear");
        prop_assert_eq!(&y2, &expect);

        let mut y3 = loop_.initial_y();
        BlockedDoacross::new(block)
            .expect("nonzero")
            .run(&pool, &loop_, &mut y3)
            .expect("valid");
        prop_assert_eq!(&y3, &expect);
    }

    #[test]
    fn writer_of_inverts_lhs(n in 1usize..500, m in 0usize..4, l in 1usize..=14) {
        let loop_ = TestLoop::new(n, m, l);
        for i in 0..n {
            prop_assert_eq!(loop_.writer_of(loop_.lhs(i)), Some(i));
        }
        // Odd elements adjacent to written ones are never written.
        prop_assert_eq!(loop_.writer_of(loop_.lhs(0) + 1), None);
    }
}
