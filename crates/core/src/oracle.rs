//! Writer oracles: "which iteration writes element `e`?"
//!
//! The executor's three-way check (Figure 5) needs, for every right-hand-
//! side element, the index of the iteration that writes it (or `MAXINT`).
//! The paper provides two ways to answer:
//!
//! * [`InspectedWriter`] — consult the `iter` array the inspector filled
//!   (the general case, §2.1);
//! * [`LinearWriter`] — compute it arithmetically when the left-hand-side
//!   subscript is the known linear function `a(i) = c·i + d`, eliminating
//!   both the inspector phase and the `iter` array (§2.3: "it is possible
//!   to eliminate the execution time preprocessing phase along with the
//!   need to allocate storage for array iter").

use crate::flags::{IterMap, MAXINT};
use std::ops::Range;

/// Maps a data element to the iteration that writes it, or [`MAXINT`].
pub trait WriterOracle: Sync {
    /// The (global) index of the iteration writing `element`, or [`MAXINT`]
    /// when no iteration in scope writes it.
    fn writer(&self, element: usize) -> i64;
}

/// Oracle backed by the inspector-filled [`IterMap`], restricted to an
/// element window (the window is the full data space for the flat
/// construct, and a block's declared window for the strip-mined variant —
/// elements outside the window are by construction not written by any
/// in-scope iteration).
#[derive(Debug, Clone)]
pub struct InspectedWriter<'a> {
    map: &'a IterMap,
    window: Range<usize>,
}

impl<'a> InspectedWriter<'a> {
    /// Wraps `map`, which holds writer entries for elements
    /// `window.start..window.end` at map indices `0..window.len()`.
    pub fn new(map: &'a IterMap, window: Range<usize>) -> Self {
        debug_assert!(window.len() <= map.len());
        Self { map, window }
    }
}

impl WriterOracle for InspectedWriter<'_> {
    #[inline]
    fn writer(&self, element: usize) -> i64 {
        if self.window.contains(&element) {
            self.map.writer(element - self.window.start)
        } else {
            MAXINT
        }
    }
}

/// Arithmetic oracle for `a(i) = c·i + d` (0-based): element `e` is written
/// iff `(e - d) mod c == 0` and the quotient is a valid iteration index —
/// the test the paper gives verbatim for Figure 4's `a(i) = 2i`.
#[derive(Debug, Clone, Copy)]
pub struct LinearWriter {
    c: i64,
    d: i64,
    iterations: i64,
}

impl LinearWriter {
    /// Oracle for `a(i) = c·i + d` over `iterations` iterations.
    ///
    /// # Panics
    /// Panics if `c == 0` (a constant subscript writes one element from
    /// every iteration — an output dependency by definition).
    pub fn new(c: usize, d: usize, iterations: usize) -> Self {
        assert!(c > 0, "linear subscript requires stride c >= 1");
        Self {
            c: c as i64,
            d: d as i64,
            iterations: iterations as i64,
        }
    }
}

impl WriterOracle for LinearWriter {
    #[inline]
    fn writer(&self, element: usize) -> i64 {
        let e = element as i64 - self.d;
        if e < 0 || e % self.c != 0 {
            return MAXINT;
        }
        let q = e / self.c;
        if q < self.iterations {
            q
        } else {
            MAXINT
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inspected_writer_reads_through_window() {
        let map = IterMap::new(4);
        map.record(0, 10); // element 5 in a window starting at 5
        map.record(3, 11); // element 8
        let oracle = InspectedWriter::new(&map, 5..9);
        assert_eq!(oracle.writer(5), 10);
        assert_eq!(oracle.writer(8), 11);
        assert_eq!(oracle.writer(6), MAXINT, "in window, unwritten");
        assert_eq!(oracle.writer(4), MAXINT, "below window");
        assert_eq!(oracle.writer(9), MAXINT, "above window");
    }

    #[test]
    fn linear_writer_matches_brute_force() {
        for &(c, d, n) in &[(1usize, 0usize, 10usize), (2, 0, 8), (2, 16, 5), (3, 1, 7)] {
            let oracle = LinearWriter::new(c, d, n);
            // Brute-force the ground truth.
            let mut truth = vec![MAXINT; c * n + d + 5];
            for i in 0..n {
                truth[c * i + d] = i as i64;
            }
            for (e, &t) in truth.iter().enumerate() {
                assert_eq!(oracle.writer(e), t, "c={c} d={d} n={n} e={e}");
            }
        }
    }

    #[test]
    fn linear_writer_out_of_range_iterations_are_maxint() {
        let oracle = LinearWriter::new(2, 0, 3); // writes 0, 2, 4
        assert_eq!(oracle.writer(6), MAXINT, "would be iteration 3, past N");
        assert_eq!(oracle.writer(1), MAXINT, "wrong parity");
    }

    #[test]
    #[should_panic(expected = "stride c >= 1")]
    fn linear_writer_zero_stride_panics() {
        let _ = LinearWriter::new(0, 0, 4);
    }

    #[test]
    fn linear_writer_paper_example() {
        // §2.3 text for Figure 4: a(i) = 2i, test (off - d) mod c == 0,
        // writer (off - d) / c.
        let oracle = LinearWriter::new(2, 0, 10_000);
        assert_eq!(oracle.writer(4242), 2121);
        assert_eq!(oracle.writer(4243), MAXINT);
    }
}
