//! Reusable inspection artifacts: preprocessing as a value.
//!
//! The paper's central economic argument is amortization: "the
//! preprocessing phase needs to be performed just once, while the doacross
//! loop may be executed many times" (§2.1). [`crate::Doacross::run`]
//! nevertheless re-runs the inspector on every call, because the runtime's
//! scratch `iter` map is consumed (reset) by postprocessing. A
//! [`PreparedInspection`] breaks that coupling: it owns a *persistent*
//! writer map filled by one inspector pass, which
//! [`crate::Doacross::run_planned`] can consult on any number of subsequent
//! runs without ever touching it — inspect once, execute many times, with
//! the skip observable through [`crate::stats::PlanProvenance`].
//!
//! The higher-level `doacross-plan` crate wraps this in fingerprint-keyed
//! caching and cost-model variant selection; this type is the core-side
//! primitive those layers stand on.

use crate::error::DoacrossError;
use crate::flags::IterMap;
use crate::inspector::run_inspector;
use crate::oracle::InspectedWriter;
use crate::pattern::AccessPattern;
use doacross_par::{Schedule, ThreadPool};

/// The product of one inspector pass over a loop's access pattern: a
/// writer map (`iter(a(i)) = i`) that outlives the run that built it.
///
/// The map is immutable after construction — executor runs read it through
/// [`PreparedInspection::oracle`] and postprocessing leaves it alone — so
/// one artifact can back arbitrarily many concurrent or sequential
/// executions of loops with the same access pattern.
#[derive(Debug)]
pub struct PreparedInspection {
    iterations: usize,
    data_len: usize,
    map: IterMap,
}

impl PreparedInspection {
    /// Runs the inspector once over `pattern` (in parallel on `pool`) and
    /// captures the writer map.
    ///
    /// Validation matches [`crate::Doacross::run`]: output dependencies and
    /// out-of-bounds left-hand sides are always detected; right-hand-side
    /// bounds are checked when `validate_terms` is set.
    pub fn inspect<P: AccessPattern + ?Sized>(
        pool: &ThreadPool,
        schedule: Schedule,
        pattern: &P,
        validate_terms: bool,
    ) -> Result<Self, DoacrossError> {
        let iterations = pattern.iterations();
        let data_len = pattern.data_len();
        let map = IterMap::new(data_len);
        // On error the partially-filled map is simply dropped; unlike the
        // runtime's scratch map there is no reuse invariant to restore.
        run_inspector(
            pool,
            schedule,
            pattern,
            0..iterations,
            0..data_len,
            &map,
            validate_terms,
        )?;
        Ok(Self {
            iterations,
            data_len,
            map,
        })
    }

    /// Rebuilds an inspection from a previously captured writer map — the
    /// deserialization path for persisted execution plans. `writers[e]` is
    /// the iteration writing element `e`, or [`crate::flags::MAXINT`] for
    /// unwritten elements; the data-space size is `writers.len()`.
    ///
    /// Returns `None` if any entry is neither [`crate::flags::MAXINT`] nor
    /// a valid iteration index below `iterations` — a map that no
    /// inspector pass over a legal pattern could have produced.
    pub fn from_writer_map(iterations: usize, writers: &[i64]) -> Option<Self> {
        let data_len = writers.len();
        let map = IterMap::new(data_len);
        for (element, &w) in writers.iter().enumerate() {
            if w == crate::flags::MAXINT {
                continue;
            }
            if w < 0 || w as usize >= iterations {
                return None;
            }
            map.record(element, w as usize);
        }
        Some(Self {
            iterations,
            data_len,
            map,
        })
    }

    /// Iteration count of the loop this inspection was built for.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Data-space size of the loop this inspection was built for.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// The captured writer map.
    pub fn map(&self) -> &IterMap {
        &self.map
    }

    /// The iteration writing `element`, or [`crate::flags::MAXINT`].
    #[inline]
    pub fn writer(&self, element: usize) -> i64 {
        self.map.writer(element)
    }

    /// A writer oracle over the captured map, as the executor consumes it.
    pub fn oracle(&self) -> InspectedWriter<'_> {
        InspectedWriter::new(&self.map, 0..self.data_len)
    }

    /// Whether this inspection matches `pattern`'s shape (iteration count
    /// and data space). A cheap sanity check — it cannot detect two
    /// different patterns of identical shape; that is the plan cache's
    /// fingerprint's job.
    pub fn matches_shape<P: AccessPattern + ?Sized>(&self, pattern: &P) -> bool {
        self.iterations == pattern.iterations() && self.data_len == pattern.data_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::MAXINT;
    use crate::oracle::WriterOracle;
    use crate::pattern::IndirectLoop;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn loop_with_lhs(a: Vec<usize>, data_len: usize) -> IndirectLoop {
        let n = a.len();
        IndirectLoop::new(data_len, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
    }

    #[test]
    fn captures_the_writer_map() {
        let l = loop_with_lhs(vec![3, 1, 4], 6);
        let prepared =
            PreparedInspection::inspect(&pool(), Schedule::multimax(), &l, true).unwrap();
        assert_eq!(prepared.iterations(), 3);
        assert_eq!(prepared.data_len(), 6);
        assert_eq!(prepared.writer(3), 0);
        assert_eq!(prepared.writer(1), 1);
        assert_eq!(prepared.writer(4), 2);
        assert_eq!(prepared.writer(0), MAXINT);
        let oracle = prepared.oracle();
        assert_eq!(oracle.writer(1), 1);
        assert_eq!(oracle.writer(5), MAXINT);
    }

    #[test]
    fn output_dependency_is_detected() {
        let l = loop_with_lhs(vec![2, 2], 4);
        let err =
            PreparedInspection::inspect(&pool(), Schedule::multimax(), &l, false).unwrap_err();
        assert_eq!(err, DoacrossError::OutputDependency { element: 2 });
    }

    #[test]
    fn writer_map_round_trips_through_raw_values() {
        let l = loop_with_lhs(vec![3, 1, 4], 6);
        let prepared =
            PreparedInspection::inspect(&pool(), Schedule::multimax(), &l, true).unwrap();
        let raw: Vec<i64> = (0..prepared.data_len())
            .map(|e| prepared.writer(e))
            .collect();
        let rebuilt = PreparedInspection::from_writer_map(prepared.iterations(), &raw)
            .expect("captured maps are always reconstructible");
        assert_eq!(rebuilt.iterations(), 3);
        assert_eq!(rebuilt.data_len(), 6);
        assert!((0..6).all(|e| rebuilt.writer(e) == prepared.writer(e)));

        // Entries outside [0, iterations) ∪ {MAXINT} are rejected.
        assert!(PreparedInspection::from_writer_map(3, &[3, MAXINT]).is_none());
        assert!(PreparedInspection::from_writer_map(3, &[-1, MAXINT]).is_none());
        assert!(PreparedInspection::from_writer_map(0, &[MAXINT, MAXINT]).is_some());
    }

    #[test]
    fn shape_matching() {
        let l = loop_with_lhs(vec![0, 1], 4);
        let prepared =
            PreparedInspection::inspect(&pool(), Schedule::multimax(), &l, true).unwrap();
        assert!(prepared.matches_shape(&l));
        let other = loop_with_lhs(vec![0, 1, 2], 4);
        assert!(!prepared.matches_shape(&other));
        let other2 = loop_with_lhs(vec![0, 1], 5);
        assert!(!prepared.matches_shape(&other2));
    }
}
