//! [`CountingAllocator`]: a global-allocator wrapper that counts heap
//! allocations per thread — the measurement hook behind the ROADMAP's
//! zero-allocation steady-state audit.
//!
//! The paper's amortization argument is about *work*: preprocessing paid
//! once, executions thereafter touching only pre-sized scratch. The same
//! discipline should hold for memory — a warm solve on the flat planned
//! path must not allocate at all. This module makes that claim testable:
//! a bench/test binary installs
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: doacross_core::alloc::CountingAllocator =
//!     doacross_core::alloc::CountingAllocator;
//! ```
//!
//! and every allocation (alloc, alloc_zeroed, realloc) made by the
//! *current thread* bumps a thread-local counter readable via
//! [`thread_allocations`]. The engine samples that counter around each
//! solve and reports the delta in `RunStats::allocations` — exactly 0 on
//! a warm flat-doacross solve, and 0 everywhere the counting allocator is
//! not installed (the counter never advances under the system allocator).
//!
//! Per-thread counting is deliberate: it isolates the dispatching
//! thread's steady-state path from unrelated threads in the same process
//! (test harnesses, other tenants), which a process-global counter would
//! conflate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Allocations made by this thread since it started, counted only
    /// while [`CountingAllocator`] is the global allocator.
    ///
    /// `const`-initialized and `Drop`-free, so reading it from inside the
    /// allocator can never recurse or touch a destroyed TLS slot.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Allocations the current thread has made so far (0 unless
/// [`CountingAllocator`] is installed as the global allocator). Sample
/// before and after a region; the difference is the region's bill.
pub fn thread_allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// The system allocator with per-thread allocation counting (see module
/// docs). Deallocation is free of charge: the audit targets allocation
/// pressure, and counting frees would double-bill every temporary.
pub struct CountingAllocator;

#[inline]
fn count_one() {
    ALLOCATIONS.with(|c| c.set(c.get() + 1));
}

// SAFETY: defers entirely to `System`; the counter is a `Drop`-free,
// const-initialized thread local, so updating it allocates nothing and
// cannot recurse into the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract; forwarded
        // verbatim to `System`.
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds `GlobalAlloc::alloc_zeroed`'s contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        // SAFETY: caller upholds `GlobalAlloc::realloc`'s contract: `ptr`
        // came from this allocator (which forwards to `System`) with
        // `layout`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: caller upholds `GlobalAlloc::dealloc`'s contract: `ptr`
        // came from this allocator with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_reads_zero_under_the_system_allocator() {
        // This test binary does not install CountingAllocator, so the
        // counter must never advance — the RunStats::allocations field is
        // exactly 0 in ordinary builds.
        let before = thread_allocations();
        let v: Vec<u64> = (0..1024).collect();
        assert_eq!(v.len(), 1024);
        assert_eq!(thread_allocations(), before);
    }
}
