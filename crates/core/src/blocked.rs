//! §2.3's strip-mined (blocked) doacross: `L → L_outer × L_inner`.
//!
//! "It is possible to transform the original loop L into a pair of nested
//! loops L_outer and L_inner. The inner loop L_inner would range over
//! contiguous iterations of the original loop L. Loop L_inner would be
//! parallelized using the preprocessed doacross methods described above;
//! loop L_outer would be carried out in a sequential manner. Preprocessing
//! and postprocessing involving arrays ready, iter, ynew, and yold is
//! carried out before and after each set of L_inner iterations. This
//! transformation reduces memory requirements because during each iteration
//! of L_outer we can reuse ready and iter."
//!
//! [`BlockedDoacross`] implements exactly that: blocks of `block_size`
//! contiguous iterations execute as flat preprocessed doacrosses, with the
//! scratch arrays sized to the largest *element window* any block declares
//! ([`crate::AccessPattern::block_window`]) instead of the full data space.
//! Cross-block dependencies need no flags at all — each block's
//! postprocessing copies results back into `y` before the next block
//! starts, so later blocks simply read `y`.
//!
//! A semantic bonus the paper does not dwell on: because scratch state is
//! reset between blocks, the injectivity requirement on `a` only applies
//! *within* a block; loops whose output element is written by several
//! sufficiently-separated iterations run correctly when blocked.

use crate::error::DoacrossError;
use crate::executor::run_executor;
use crate::flags::{IterMap, ReadyFlags};
use crate::inspector::{reset_scratch, run_inspector};
use crate::oracle::InspectedWriter;
use crate::pattern::DoacrossLoop;
use crate::post::run_post;
use crate::runtime::DoacrossConfig;
use crate::stats::{RunStats, StatsSink};
use doacross_par::{SharedSlice, ThreadPool};
use std::time::Instant;

/// Strip-mined preprocessed doacross runtime (see module docs).
///
/// ```
/// use doacross_core::{seq::run_sequential, BlockedDoacross, TestLoop};
/// use doacross_par::ThreadPool;
///
/// let loop_ = TestLoop::new(500, 2, 8);
/// let pool = ThreadPool::new(2);
/// let mut y = loop_.initial_y();
/// let mut oracle = y.clone();
///
/// // 50 iterations per block: scratch shrinks to the block's window.
/// let mut rt = BlockedDoacross::new(50).unwrap();
/// let stats = rt.run(&pool, &loop_, &mut y).unwrap();
/// run_sequential(&loop_, &mut oracle);
/// assert_eq!(y, oracle);
/// assert_eq!(stats.blocks, 10);
/// assert!(rt.scratch_capacity() < y.len());
/// ```
#[derive(Debug)]
pub struct BlockedDoacross {
    config: DoacrossConfig,
    block_size: usize,
    /// Scratch capacity in elements (grows to the largest window seen).
    capacity: usize,
    iter: IterMap,
    ready: ReadyFlags,
    ynew: Vec<f64>,
}

impl BlockedDoacross {
    /// Creates a blocked runtime executing `block_size` iterations per
    /// `L_outer` step, with default configuration and an initially empty
    /// scratch allocation (it grows to the largest block window on first
    /// use).
    pub fn new(block_size: usize) -> Result<Self, DoacrossError> {
        Self::with_config(block_size, DoacrossConfig::default())
    }

    /// Creates a blocked runtime with explicit configuration.
    pub fn with_config(block_size: usize, config: DoacrossConfig) -> Result<Self, DoacrossError> {
        if block_size == 0 {
            return Err(DoacrossError::EmptyBlock);
        }
        Ok(Self {
            config,
            block_size,
            capacity: 0,
            iter: IterMap::new(0),
            ready: ReadyFlags::new(0),
            ynew: Vec::new(),
        })
    }

    /// Iterations per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Current scratch capacity in elements — the §2.3 memory footprint.
    /// Compare against `data_len` to see the reduction.
    pub fn scratch_capacity(&self) -> usize {
        self.capacity
    }

    /// Current configuration.
    pub fn config(&self) -> &DoacrossConfig {
        &self.config
    }

    /// Mutable configuration.
    pub fn config_mut(&mut self) -> &mut DoacrossConfig {
        &mut self.config
    }

    fn ensure_capacity(&mut self, len: usize) {
        if len > self.capacity {
            self.capacity = len;
            self.iter = IterMap::new(len);
            self.ready = ReadyFlags::new(len);
            self.ynew = vec![0.0; len];
        }
    }

    /// Runs the loop block by block, updating `y` in place exactly as the
    /// sequential source loop would. The returned stats aggregate all
    /// blocks (`stats.blocks` reports how many executed).
    pub fn run<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
    ) -> Result<RunStats, DoacrossError> {
        let data_len = loop_.data_len();
        if y.len() != data_len {
            return Err(DoacrossError::DataLenMismatch {
                got: y.len(),
                expected: data_len,
            });
        }
        let n = loop_.iterations();
        let schedule = self.config.schedule;
        let wait = self.config.wait;
        let mut total = RunStats {
            workers: pool.threads(),
            ..Default::default()
        };
        let t_start = Instant::now();

        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + self.block_size).min(n);
            let window = {
                let w = loop_.block_window(lo..hi);
                w.start.min(data_len)..w.end.min(data_len)
            };
            self.ensure_capacity(window.len());

            let mut stats = RunStats {
                iterations: hi - lo,
                workers: pool.threads(),
                blocks: 1,
                ..Default::default()
            };

            // Per-block inspector.
            let t0 = Instant::now();
            if let Err(e) = run_inspector(
                pool,
                schedule,
                loop_,
                lo..hi,
                window.clone(),
                &self.iter,
                self.config.validate_terms,
            ) {
                reset_scratch(pool, schedule, &self.iter, &self.ready, self.capacity);
                return Err(e);
            }
            stats.inspector = t0.elapsed();

            // Per-block executor.
            let t1 = Instant::now();
            let sink = StatsSink::new(pool.threads());
            {
                let oracle = InspectedWriter::new(&self.iter, window.clone());
                let y_view = SharedSlice::new(&mut *y);
                let ynew_view = SharedSlice::new(&mut self.ynew[..window.len()]);
                run_executor(
                    pool,
                    schedule,
                    wait,
                    loop_,
                    lo..hi,
                    None,
                    &oracle,
                    y_view,
                    ynew_view,
                    &self.ready,
                    window.start,
                    &sink,
                );
            }
            stats.executor = t1.elapsed();
            sink.drain_into(&mut stats);

            // Per-block postprocessing with copy-back.
            let t2 = Instant::now();
            {
                let y_view = SharedSlice::new(&mut *y);
                let ynew_view = SharedSlice::new(&mut self.ynew[..window.len()]);
                run_post(
                    pool,
                    schedule,
                    loop_,
                    lo..hi,
                    window.start,
                    Some(&self.iter),
                    &self.ready,
                    y_view,
                    ynew_view,
                    true,
                );
            }
            stats.post = t2.elapsed();
            stats.total = stats.inspector + stats.executor + stats.post;
            total.absorb(&stats);
            lo = hi;
        }
        total.total = t_start.elapsed();
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AccessPattern, IndirectLoop};
    use crate::runtime::Doacross;
    use crate::seq::run_sequential;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn mixed_loop(n: usize) -> IndirectLoop {
        let dl = n + 8;
        let a: Vec<usize> = (0..n).map(|i| i + 3).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 5) % dl, i + 3]).collect();
        let coeff = vec![vec![0.5, 0.25, 0.125]; n];
        IndirectLoop::new(dl, a, rhs, coeff).unwrap()
    }

    #[test]
    fn blocked_matches_sequential_for_many_block_sizes() {
        let l = mixed_loop(200);
        let y0: Vec<f64> = (0..l.data_len()).map(|e| 1.0 + (e % 5) as f64).collect();
        let mut oracle = y0.clone();
        run_sequential(&l, &mut oracle);
        for bs in [1usize, 2, 7, 32, 200, 1000] {
            let mut rt = BlockedDoacross::new(bs).unwrap();
            let mut y = y0.clone();
            let stats = rt.run(&pool(), &l, &mut y).unwrap();
            assert_eq!(y, oracle, "block_size={bs}");
            assert_eq!(stats.blocks, 200usize.div_ceil(bs));
            assert_eq!(stats.iterations, 200);
        }
    }

    #[test]
    fn blocked_agrees_with_flat_runtime() {
        let l = mixed_loop(150);
        let y0 = vec![2.0; l.data_len()];
        let mut y_flat = y0.clone();
        Doacross::for_loop(&l)
            .run(&pool(), &l, &mut y_flat)
            .unwrap();
        let mut y_blocked = y0;
        BlockedDoacross::new(16)
            .unwrap()
            .run(&pool(), &l, &mut y_blocked)
            .unwrap();
        assert_eq!(y_flat, y_blocked);
    }

    #[test]
    fn scratch_is_window_sized_not_data_sized() {
        // lhs(i) = i + 3 -> a block of 16 iterations has a window of 16
        // elements, regardless of the data space (the §2.3 memory claim).
        let l = mixed_loop(160);
        let mut rt = BlockedDoacross::new(16).unwrap();
        let mut y = vec![0.0; l.data_len()];
        rt.run(&pool(), &l, &mut y).unwrap();
        assert_eq!(rt.scratch_capacity(), 16);
        assert!(rt.scratch_capacity() < l.data_len());
    }

    #[test]
    fn zero_block_size_is_rejected() {
        assert_eq!(
            BlockedDoacross::new(0).unwrap_err(),
            DoacrossError::EmptyBlock
        );
    }

    #[test]
    fn cross_block_duplicate_lhs_is_allowed() {
        // Element 0 is written by iterations 0 and 2. Flat runtime rejects
        // this; with block_size 1 the blocks serialize and sequential
        // semantics hold.
        let l = IndirectLoop::new(
            2,
            vec![0, 0],
            vec![vec![1], vec![1]],
            vec![vec![1.0], vec![2.0]],
        )
        .unwrap();
        let mut flat = Doacross::for_loop(&l);
        let mut y = vec![0.0, 3.0];
        assert!(matches!(
            flat.run(&pool(), &l, &mut y),
            Err(DoacrossError::OutputDependency { element: 0 })
        ));
        let mut blocked = BlockedDoacross::new(1).unwrap();
        let mut y2 = vec![0.0, 3.0];
        blocked.run(&pool(), &l, &mut y2).unwrap();
        let mut oracle = vec![0.0, 3.0];
        run_sequential(&l, &mut oracle);
        assert_eq!(y2, oracle);
    }

    #[test]
    fn within_block_duplicate_lhs_is_still_rejected() {
        let l =
            IndirectLoop::new(2, vec![0, 0], vec![vec![], vec![]], vec![vec![], vec![]]).unwrap();
        let mut blocked = BlockedDoacross::new(2).unwrap();
        let mut y = vec![0.0, 0.0];
        assert!(matches!(
            blocked.run(&pool(), &l, &mut y),
            Err(DoacrossError::OutputDependency { element: 0 })
        ));
    }

    #[test]
    fn cross_block_true_dependencies_flow_through_y() {
        // Chain y[i+1] += y[i] with tiny blocks: every dependency crosses a
        // block boundary and must be satisfied via copy-back.
        let n = 64;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let l = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
        let mut y = vec![1.0; n + 1];
        BlockedDoacross::new(4)
            .unwrap()
            .run(&pool(), &l, &mut y)
            .unwrap();
        // y[k] = y[k] + y[k-1] resolves to k + 1 with all-ones input.
        for (k, v) in y.iter().enumerate() {
            assert_eq!(*v, (k + 1) as f64, "y[{k}]");
        }
    }

    #[test]
    fn stats_aggregate_across_blocks() {
        let l = mixed_loop(100);
        let mut rt = BlockedDoacross::new(10).unwrap();
        let mut y = vec![1.0; l.data_len()];
        let stats = rt.run(&pool(), &l, &mut y).unwrap();
        assert_eq!(stats.blocks, 10);
        assert_eq!(stats.iterations, 100);
        assert_eq!(stats.deps.total(), 300, "3 terms x 100 iterations");
    }

    #[test]
    fn default_window_pattern_still_works() {
        // A pattern that does not override block_window falls back to the
        // full data space: correctness must be unaffected.
        struct NoWindow(IndirectLoop);
        impl AccessPattern for NoWindow {
            fn iterations(&self) -> usize {
                self.0.iterations()
            }
            fn data_len(&self) -> usize {
                self.0.data_len()
            }
            fn lhs(&self, i: usize) -> usize {
                self.0.lhs(i)
            }
            fn terms(&self, i: usize) -> usize {
                self.0.terms(i)
            }
            fn term_element(&self, i: usize, j: usize) -> usize {
                self.0.term_element(i, j)
            }
            // block_window: default (whole data space)
        }
        impl crate::pattern::DoacrossLoop for NoWindow {
            fn init(&self, i: usize, old: f64) -> f64 {
                self.0.init(i, old)
            }
            fn combine(&self, i: usize, j: usize, acc: f64, v: f64) -> f64 {
                self.0.combine(i, j, acc, v)
            }
        }
        let inner = mixed_loop(60);
        let mut oracle = vec![1.0; inner.data_len()];
        run_sequential(&inner, &mut oracle);
        let wrapped = NoWindow(mixed_loop(60));
        let mut y = vec![1.0; wrapped.data_len()];
        let mut rt = BlockedDoacross::new(8).unwrap();
        rt.run(&pool(), &wrapped, &mut y).unwrap();
        assert_eq!(y, oracle);
        assert_eq!(rt.scratch_capacity(), wrapped.data_len());
    }
}
