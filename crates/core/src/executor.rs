//! The executor: the doacross proper (paper Figure 5).
//!
//! Each pool worker self-schedules iterations (default: one at a time, the
//! Multimax policy) and runs, per iteration `i`:
//!
//! ```text
//! S2      acc = init(i, y[a(i)])
//!         do j = 0, terms(i)-1
//!             off   = term_element(i, j)
//!             check = iter(off) - i            // via the WriterOracle
//! S3/S4/S5    if check < 0:  wait until ready(off) == DONE; operand = ynew(off)
//! S6/S7       if check > 0:  operand = y(off)
//! S8          if check == 0: operand = acc     // intra-iteration
//!             acc = combine(i, j, acc, operand)
//!         end do
//!         ynew(a(i)) = acc
//!         ready(a(i)) = DONE                   // release store
//! ```
//!
//! Memory-ordering argument: the only cross-thread data hand-off is
//! `ynew(off)` guarded by `ready(off)`; [`ReadyFlags::mark_done`] is a
//! release store and the wait loop polls with acquire loads, so the
//! writer's plain `ynew` store happens-before the reader's plain load.
//! `y` is read-only for the whole region, and each `ynew` element has
//! exactly one writer (injective `a`, enforced by the inspector).
//!
//! Progress argument: waits only target strictly earlier iterations
//! (`check < 0`), and every [`Schedule`] enumerates each worker's
//! iterations in increasing global order, so the lowest-numbered pending
//! iteration can always run to completion — no deadlock, for any schedule
//! and any dependence pattern the inspector admits.

use crate::flags::ReadyFlags;
use crate::oracle::WriterOracle;
use crate::pattern::DoacrossLoop;
use crate::stats::{LocalCounters, StatsSink};
use doacross_obs::profile::{ProfArena, SpanKind, NO_LEVEL};
use doacross_par::{abort_region, Schedule, SharedSlice, ThreadPool, WaitAbort, WaitStrategy};
use std::ops::Range;
use std::sync::atomic::AtomicUsize;

/// Fault-injection site consulted once per executor region; armed actions
/// apply per iteration (see the `failpoint` crate's hot-path discipline).
pub(crate) const FAILPOINT_ITER: &str = "core::executor::iter";

/// Iterations between deadline clock reads in the executor body (power of
/// two). Waits check the deadline themselves; this catches regions that
/// are slow while *making* progress, so a wedged solve still times out
/// even when no wait ever stalls.
pub(crate) const DEADLINE_ITER_PERIOD: u64 = 64;

/// Runs the doacross executor over iterations `iter_range`.
///
/// * `oracle` answers "which iteration writes element e" (inspector map or
///   linear-subscript arithmetic).
/// * `order`, when present, is a permutation of the whole iteration space:
///   the `k`-th *claimed* slot executes original iteration `order[k]`.
///   This is the doconsider "rearranged iterations" mechanism of §3.2 —
///   dependence classification still uses original iteration numbers, so
///   semantics are unchanged; only the claim order (and hence waiting
///   behaviour) differs. The order must be a topological order of the true
///   dependencies or the executor may livelock (the `Doacross` facade
///   validates this in full-validation mode).
/// * `y` is the full data array (read-only during this region).
/// * `ynew`/`ready` are the shadow array and flag set, holding elements
///   `window_start .. window_start + ynew.len()`.
/// * Executor-side counters land in `sink`, one cell per worker.
///
/// Bounds are enforced with release-mode asserts: the inspector already
/// validated the left-hand sides (and, in full-validation mode, the
/// right-hand sides), so these asserts are a final defense rather than the
/// primary check.
#[allow(clippy::too_many_arguments)]
pub fn run_executor<L, W>(
    pool: &ThreadPool,
    schedule: Schedule,
    wait: WaitStrategy,
    loop_: &L,
    iter_range: Range<usize>,
    order: Option<&[usize]>,
    oracle: &W,
    y: SharedSlice<'_, f64>,
    ynew: SharedSlice<'_, f64>,
    ready: &ReadyFlags,
    window_start: usize,
    sink: &StatsSink,
) where
    L: DoacrossLoop + ?Sized,
    W: WriterOracle,
{
    run_executor_profiled(
        pool,
        schedule,
        wait,
        loop_,
        iter_range,
        order,
        oracle,
        y,
        ynew,
        ready,
        window_start,
        sink,
        None,
    )
}

/// [`run_executor`] with optional span profiling. With `prof` set, each
/// worker records one [`SpanKind::Work`] span covering its share of the
/// region (`aux` = iterations executed, actual stalls nested inside) plus
/// one [`SpanKind::FlagWait`] span per stall (`aux` = poll count), so
/// span counts reconcile exactly with `RunStats`' `stalls` and the span
/// `aux` totals with `wait_polls`. `None` costs one branch per would-be
/// span — the never-stalling fast path reads no clock.
#[allow(clippy::too_many_arguments)]
pub fn run_executor_profiled<L, W>(
    pool: &ThreadPool,
    schedule: Schedule,
    wait: WaitStrategy,
    loop_: &L,
    iter_range: Range<usize>,
    order: Option<&[usize]>,
    oracle: &W,
    y: SharedSlice<'_, f64>,
    ynew: SharedSlice<'_, f64>,
    ready: &ReadyFlags,
    window_start: usize,
    sink: &StatsSink,
    prof: Option<&ProfArena>,
) where
    L: DoacrossLoop + ?Sized,
    W: WriterOracle,
{
    let nworkers = pool.threads();
    let base = iter_range.start;
    let count = iter_range.end - iter_range.start;
    if count == 0 {
        return;
    }
    let counter = AtomicUsize::new(0);
    let data_len = loop_.data_len();
    let window_len = ynew.len();
    // Fault containment: capture the region's poison word and deadline
    // once, and snapshot any armed fault-injection action, all before
    // dispatch — per-iteration checks then touch only a stack local and
    // one shared read-mostly atomic.
    let poison = pool.poison();
    let deadline = pool.deadline();
    let failpoint = failpoint::lookup(FAILPOINT_ITER);

    pool.run(|worker| {
        let mut local = LocalCounters::default();
        let mut executed: u64 = 0;
        let work_started = prof.map(|arena| arena.now_ns());
        schedule.drive(worker, nworkers, count, &counter, |k| {
            let i = match order {
                Some(ord) => ord[base + k],
                None => base + k,
            };
            failpoint::hit(failpoint, i as u64);
            // A sibling's fault means flags may never be published past
            // this point: stop claiming work and drain (partial counters
            // are deposited so the fault observer sees this worker's
            // progress — ordered by the poison word's release/acquire).
            if let Some(fault) = poison.fault() {
                sink.deposit(worker, std::mem::take(&mut local));
                abort_region(poison, WaitAbort::Poisoned(fault));
            }
            executed += 1;
            if deadline.is_some() && executed.is_multiple_of(DEADLINE_ITER_PERIOD) {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        sink.deposit(worker, std::mem::take(&mut local));
                        abort_region(poison, WaitAbort::DeadlineExpired);
                    }
                }
            }
            let lhs = loop_.lhs(i);
            assert!(lhs < data_len, "executor: lhs {lhs} out of bounds");
            let lhs_slot = lhs - window_start;
            assert!(lhs_slot < window_len, "executor: lhs {lhs} escapes window");

            // S2: seed from the old value of the output element.
            // SAFETY: y is read-only during the region; bounds asserted.
            let mut acc = loop_.init(i, unsafe { y.read(lhs) });

            let iv = i as i64;
            for j in 0..loop_.terms(i) {
                let off = loop_.term_element(i, j);
                assert!(off < data_len, "executor: term {off} out of bounds");
                let writer = oracle.writer(off);
                let operand = if writer < iv {
                    // S3–S5: true dependency on an earlier iteration.
                    local.true_deps += 1;
                    let slot = off - window_start;
                    let waited = match prof {
                        None => wait
                            .wait_until_guarded(|| ready.is_done(slot), poison, deadline)
                            .map(|polls| (polls, 0)),
                        Some(_) => {
                            wait.wait_until_guarded_timed(|| ready.is_done(slot), poison, deadline)
                        }
                    };
                    let (polls, wait_ns) = match waited {
                        Ok(waited) => waited,
                        Err(abort) => {
                            sink.deposit(worker, std::mem::take(&mut local));
                            abort_region(poison, abort);
                        }
                    };
                    if polls > 0 {
                        local.stalls += 1;
                        local.wait_polls += polls;
                        if let Some(arena) = prof {
                            let end = arena.now_ns();
                            arena.record(
                                worker,
                                SpanKind::FlagWait,
                                NO_LEVEL,
                                end.saturating_sub(wait_ns),
                                wait_ns,
                                polls,
                            );
                        }
                    }
                    // SAFETY: the acquire in `is_done` pairs with the
                    // writer's release in `mark_done`; `ynew[slot]` was
                    // stored before that release.
                    unsafe { ynew.read(slot) }
                } else if writer == iv {
                    // S8: intra-iteration reference — the element being
                    // accumulated is `lhs` itself (injective `a`), so serve
                    // it from the register accumulator.
                    local.intra += 1;
                    debug_assert_eq!(off, lhs, "iter({off}) == {i} but lhs is {lhs}");
                    acc
                } else {
                    // S6–S7: antidependency or never-written element — old
                    // value. SAFETY: y is read-only during the region.
                    local.anti_or_unwritten += 1;
                    unsafe { y.read(off) }
                };
                acc = loop_.combine(i, j, acc, operand);
            }

            // SAFETY: `lhs_slot` has this iteration as its unique writer.
            unsafe { ynew.write(lhs_slot, loop_.finish(i, acc)) };
            ready.mark_done(lhs_slot);
        });
        if let (Some(arena), Some(started)) = (prof, work_started) {
            let end = arena.now_ns();
            arena.record(
                worker,
                SpanKind::Work,
                NO_LEVEL,
                started,
                end.saturating_sub(started),
                executed,
            );
        }
        sink.deposit(worker, local);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::IterMap;
    use crate::inspector::run_inspector;
    use crate::oracle::InspectedWriter;
    use crate::pattern::{AccessPattern, IndirectLoop};
    use crate::seq::run_sequential;
    use crate::stats::RunStats;

    /// Full manual pipeline (inspector + executor, no postprocessing) so the
    /// executor can be probed in isolation.
    fn execute(
        loop_: &IndirectLoop,
        y: &[f64],
        workers: usize,
        schedule: Schedule,
    ) -> (Vec<f64>, RunStats) {
        let pool = ThreadPool::new(workers);
        let dl = loop_.data_len();
        let map = IterMap::new(dl);
        let ready = ReadyFlags::new(dl);
        run_inspector(
            &pool,
            schedule,
            loop_,
            0..loop_.iterations(),
            0..dl,
            &map,
            true,
        )
        .unwrap();
        let mut y_buf = y.to_vec();
        let mut ynew_buf = vec![0.0; dl];
        let y_view = SharedSlice::new(&mut y_buf);
        let ynew_view = SharedSlice::new(&mut ynew_buf);
        let sink = StatsSink::new(workers);
        let oracle = InspectedWriter::new(&map, 0..dl);
        run_executor(
            &pool,
            schedule,
            WaitStrategy::default(),
            loop_,
            0..loop_.iterations(),
            None,
            &oracle,
            y_view,
            ynew_view,
            &ready,
            0,
            &sink,
        );
        // Manual copy-back (postprocessing's job).
        for i in 0..loop_.iterations() {
            let e = loop_.lhs(i);
            y_buf[e] = ynew_buf[e];
        }
        let mut stats = RunStats {
            workers,
            iterations: loop_.iterations(),
            ..Default::default()
        };
        sink.drain_into(&mut stats);
        (y_buf, stats)
    }

    fn oracle_result(loop_: &IndirectLoop, y: &[f64]) -> Vec<f64> {
        let mut out = y.to_vec();
        run_sequential(loop_, &mut out);
        out
    }

    #[test]
    fn true_dependency_chain_matches_sequential() {
        // y[i+1] += y[i]: a fully serial chain — the stress case for the
        // ready/wait protocol.
        let n = 400;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let l = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
        let y0 = vec![1.0; n + 1];
        let expect = oracle_result(&l, &y0);
        for workers in [1, 2, 4] {
            let (got, stats) = execute(&l, &y0, workers, Schedule::multimax());
            assert_eq!(got, expect, "workers={workers}");
            // Iteration 0 reads element 0, which nobody writes (lhs starts
            // at 1); the other n-1 reads are true dependencies.
            assert_eq!(stats.deps.true_deps, (n - 1) as u64);
            assert_eq!(stats.deps.anti_or_unwritten, 1);
        }
    }

    #[test]
    fn antidependencies_read_old_values() {
        // Reverse chain: iteration i reads the element iteration i+1 writes,
        // so every read must see the ORIGINAL value.
        let n = 300;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![(i + 1).min(n - 1)]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![2.0]; n]).unwrap();
        let y0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let expect = oracle_result(&l, &y0);
        for workers in [1, 3, 4] {
            let (got, stats) = execute(&l, &y0, workers, Schedule::multimax());
            assert_eq!(got, expect, "workers={workers}");
            assert!(stats.deps.anti_or_unwritten >= (n as u64) - 1);
        }
    }

    #[test]
    fn intra_iteration_reference_uses_accumulator() {
        // Each iteration reads its own output element twice.
        let n = 50;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i, i]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![1.0, 1.0]; n]).unwrap();
        let y0 = vec![1.0; n];
        let expect = oracle_result(&l, &y0);
        let (got, stats) = execute(&l, &y0, 4, Schedule::multimax());
        assert_eq!(got, expect);
        assert_eq!(stats.deps.intra, 2 * n as u64);
        // 1 + 1 = 2, then 2 + 2 = 4.
        assert!(got.iter().all(|&v| v == 4.0));
    }

    #[test]
    fn mixed_pattern_matches_sequential_under_all_schedules() {
        // Pseudo-random mix of true/anti/intra/none references.
        let n = 257;
        let dl = 2 * n;
        let a: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % dl).collect();
        // Make `a` injective by construction? (i*7+3) mod 2n with gcd(7,2n)
        // == 1 when n not divisible by 7 — 257 is prime and 2*257 = 514 =
        // 2 * 257; gcd(7, 514) = 1, so it is a permutation of a subset.
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| vec![(i * 13 + 1) % dl, (i * 5 + 11) % dl])
            .collect();
        let coeff: Vec<Vec<f64>> = (0..n).map(|i| vec![0.25 + (i % 3) as f64, 0.5]).collect();
        let l = IndirectLoop::new(dl, a, rhs, coeff).unwrap();
        let y0: Vec<f64> = (0..dl).map(|e| (e % 17) as f64 * 0.125).collect();
        let expect = oracle_result(&l, &y0);
        for schedule in [
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 8 },
            Schedule::Guided { min_chunk: 2 },
        ] {
            let (got, _) = execute(&l, &y0, 4, schedule);
            assert_eq!(got, expect, "{schedule:?}");
        }
    }

    #[test]
    fn stats_classify_every_reference() {
        let n = 100;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i / 2, i]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![1.0, 1.0]; n]).unwrap();
        let y0 = vec![1.0; n];
        let (_, stats) = execute(&l, &y0, 2, Schedule::multimax());
        assert_eq!(stats.deps.total(), 2 * n as u64, "every (i,j) classified");
    }

    #[test]
    fn empty_iteration_range_is_noop() {
        let l = IndirectLoop::new(4, vec![0], vec![vec![1]], vec![vec![1.0]]).unwrap();
        let pool = ThreadPool::new(2);
        let ready = ReadyFlags::new(4);
        let map = IterMap::new(4);
        let mut y = vec![0.0; 4];
        let mut ynew = vec![0.0; 4];
        let sink = StatsSink::new(2);
        let oracle = InspectedWriter::new(&map, 0..4);
        run_executor(
            &pool,
            Schedule::multimax(),
            WaitStrategy::default(),
            &l,
            1..1,
            None,
            &oracle,
            SharedSlice::new(&mut y),
            SharedSlice::new(&mut ynew),
            &ready,
            0,
            &sink,
        );
        let mut stats = RunStats::default();
        sink.drain_into(&mut stats);
        assert_eq!(stats.deps.total(), 0);
    }
}
