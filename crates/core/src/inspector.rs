//! The inspector: execution-time preprocessing (paper Figure 3, left).
//!
//! ```fortran
//! parallel do i = 1, N
//!     iter(a(i)) = i
//! end parallel do
//! ```
//!
//! "One requirement is that the execution time preprocessing itself be
//! parallelizable. The preprocessing required for the preprocessed doacross
//! loop is fully parallelizable" (§1) — every `iter` store targets a
//! distinct element (injective `a`), so the loop is a doall.
//!
//! On top of the paper's one store per iteration, this inspector doubles as
//! the runtime's validation pass: it detects output dependencies (two
//! iterations writing one element), out-of-bounds subscripts, and — for the
//! strip-mined variant — writes escaping a block's declared element window.
//! Validation failures surface as [`DoacrossError`]s after the parallel
//! region completes instead of panicking mid-flight.

use crate::error::DoacrossError;
use crate::flags::{IterMap, MAXINT};
use crate::pattern::AccessPattern;
use doacross_par::{parallel_for, Schedule, ThreadPool};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// First-error-wins slot for reporting a `(iteration, element)` pair out of
/// a parallel region without locks.
#[derive(Debug, Default)]
pub(crate) struct ErrorSlot {
    set: AtomicBool,
    iteration: AtomicUsize,
    element: AtomicUsize,
}

impl ErrorSlot {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records `(iteration, element)` if no error was recorded yet.
    #[inline]
    pub(crate) fn try_set(&self, iteration: usize, element: usize) {
        if !self.set.swap(true, Ordering::AcqRel) {
            self.iteration.store(iteration, Ordering::Relaxed);
            self.element.store(element, Ordering::Relaxed);
        }
    }

    /// Returns the recorded pair, if any. Only meaningful after the region
    /// join (the pool's `run` return).
    pub(crate) fn get(&self) -> Option<(usize, usize)> {
        if self.set.load(Ordering::Acquire) {
            Some((
                self.iteration.load(Ordering::Relaxed),
                self.element.load(Ordering::Relaxed),
            ))
        } else {
            None
        }
    }
}

/// Runs the inspector for iterations `iter_range` of `pattern`, filling
/// `map` (window-relative) with `iter(a(i)) = i`.
///
/// `window` is the element range `map` covers — `0..data_len` for the flat
/// construct. When `validate_terms` is set, right-hand-side subscripts are
/// bounds-checked as well (the paper's inspector does only the `iter`
/// stores; term validation is this library's hardening, and benchmarks can
/// disable it to measure the paper-faithful cost).
///
/// On error the map may be partially filled; the caller must reset it (see
/// [`reset_scratch`]).
pub fn run_inspector<P: AccessPattern + ?Sized>(
    pool: &ThreadPool,
    schedule: Schedule,
    pattern: &P,
    iter_range: Range<usize>,
    window: Range<usize>,
    map: &IterMap,
    validate_terms: bool,
) -> Result<(), DoacrossError> {
    let data_len = pattern.data_len();
    let oob = ErrorSlot::new();
    let escape = ErrorSlot::new();
    let collision = ErrorSlot::new();
    let base = iter_range.start;
    let count = iter_range.end - iter_range.start;

    parallel_for(pool, count, schedule, |k| {
        let i = base + k;
        let lhs = pattern.lhs(i);
        if lhs >= data_len {
            oob.try_set(i, lhs);
            return;
        }
        if !window.contains(&lhs) {
            escape.try_set(i, lhs);
            return;
        }
        let prev = map.record(lhs - window.start, i);
        if prev != MAXINT {
            collision.try_set(i, lhs);
        }
        if validate_terms {
            for j in 0..pattern.terms(i) {
                let off = pattern.term_element(i, j);
                if off >= data_len {
                    oob.try_set(i, off);
                }
            }
        }
    });

    if let Some((iteration, element)) = oob.get() {
        return Err(DoacrossError::SubscriptOutOfBounds {
            iteration,
            element,
            data_len,
        });
    }
    if let Some((iteration, element)) = escape.get() {
        return Err(DoacrossError::WindowViolation {
            iteration,
            element,
            window_start: window.start,
            window_end: window.end,
        });
    }
    if let Some((_, element)) = collision.get() {
        return Err(DoacrossError::OutputDependency { element });
    }
    Ok(())
}

/// Parallel full reset of the first `len` scratch entries: `iter` back to
/// `MAXINT` and `ready` back to `NOTDONE`. Used to restore the reuse
/// invariant after a failed (partially-executed) inspector.
pub fn reset_scratch(
    pool: &ThreadPool,
    schedule: Schedule,
    map: &IterMap,
    ready: &crate::flags::ReadyFlags,
    len: usize,
) {
    parallel_for(pool, len, schedule, |e| {
        map.clear(e);
        ready.reset(e);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::ReadyFlags;
    use crate::pattern::IndirectLoop;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn loop_with_lhs(a: Vec<usize>, data_len: usize) -> IndirectLoop {
        let n = a.len();
        IndirectLoop::new(data_len, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
    }

    #[test]
    fn fills_writer_map() {
        let l = loop_with_lhs(vec![3, 1, 4, 0], 6);
        let map = IterMap::new(6);
        run_inspector(&pool(), Schedule::multimax(), &l, 0..4, 0..6, &map, true).unwrap();
        assert_eq!(map.writer(3), 0);
        assert_eq!(map.writer(1), 1);
        assert_eq!(map.writer(4), 2);
        assert_eq!(map.writer(0), 3);
        assert_eq!(map.writer(2), MAXINT);
        assert_eq!(map.writer(5), MAXINT);
    }

    #[test]
    fn detects_output_dependency() {
        let l = loop_with_lhs(vec![2, 5, 2], 6);
        let map = IterMap::new(6);
        let err =
            run_inspector(&pool(), Schedule::multimax(), &l, 0..3, 0..6, &map, false).unwrap_err();
        assert_eq!(err, DoacrossError::OutputDependency { element: 2 });
    }

    #[test]
    fn detects_rhs_out_of_bounds_only_when_validating() {
        let l = IndirectLoop::new(4, vec![0], vec![vec![3]], vec![vec![1.0]]).unwrap();
        // IndirectLoop's constructor already validates, so build a raw
        // pattern that lies about its data_len via a wrapper.
        struct Lying<'a>(&'a IndirectLoop);
        impl AccessPattern for Lying<'_> {
            fn iterations(&self) -> usize {
                self.0.iterations()
            }
            fn data_len(&self) -> usize {
                2 // actual term element 3 is out of bounds for this claim
            }
            fn lhs(&self, i: usize) -> usize {
                self.0.lhs(i)
            }
            fn terms(&self, i: usize) -> usize {
                self.0.terms(i)
            }
            fn term_element(&self, i: usize, j: usize) -> usize {
                self.0.term_element(i, j)
            }
        }
        let lying = Lying(&l);
        let map = IterMap::new(2);
        let err = run_inspector(
            &pool(),
            Schedule::multimax(),
            &lying,
            0..1,
            0..2,
            &map,
            true,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::SubscriptOutOfBounds { element: 3, .. }
        ));

        // Without term validation the same pattern passes the inspector.
        let map2 = IterMap::new(2);
        run_inspector(
            &pool(),
            Schedule::multimax(),
            &lying,
            0..1,
            0..2,
            &map2,
            false,
        )
        .unwrap();
    }

    #[test]
    fn detects_window_escape() {
        let l = loop_with_lhs(vec![1, 7], 8);
        let map = IterMap::new(4);
        let err =
            run_inspector(&pool(), Schedule::multimax(), &l, 0..2, 0..4, &map, false).unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::WindowViolation {
                element: 7,
                window_start: 0,
                window_end: 4,
                ..
            }
        ));
    }

    #[test]
    fn windowed_inspector_uses_relative_indices() {
        let l = loop_with_lhs(vec![10, 12], 16);
        let map = IterMap::new(4);
        run_inspector(&pool(), Schedule::multimax(), &l, 0..2, 10..14, &map, false).unwrap();
        assert_eq!(map.writer(0), 0, "element 10 -> slot 0");
        assert_eq!(map.writer(2), 1, "element 12 -> slot 2");
    }

    #[test]
    fn sub_range_inspection_records_global_iteration_numbers() {
        let l = loop_with_lhs(vec![0, 1, 2, 3], 4);
        let map = IterMap::new(4);
        run_inspector(&pool(), Schedule::multimax(), &l, 2..4, 0..4, &map, false).unwrap();
        assert_eq!(map.writer(0), MAXINT);
        assert_eq!(
            map.writer(2),
            2,
            "global iteration index, not block-relative"
        );
        assert_eq!(map.writer(3), 3);
    }

    #[test]
    fn reset_scratch_restores_invariant() {
        let map = IterMap::new(8);
        let ready = ReadyFlags::new(8);
        map.record(3, 1);
        ready.mark_done(5);
        reset_scratch(&pool(), Schedule::multimax(), &map, &ready, 8);
        assert!(map.all_clear());
        assert!(ready.all_clear());
    }

    #[test]
    fn error_slot_first_wins() {
        let slot = ErrorSlot::new();
        assert_eq!(slot.get(), None);
        slot.try_set(1, 10);
        slot.try_set(2, 20);
        assert_eq!(slot.get(), Some((1, 10)));
    }
}
