//! # doacross-core — the preprocessed doacross loop
//!
//! A faithful, production-grade Rust implementation of
//!
//! > Joel H. Saltz and Ravi Mirchandaney, *The Preprocessed Doacross Loop*,
//! > ICASE Interim Report 11 / NASA CR-182056 (May 1990); ICPP 1991.
//!
//! ## The problem
//!
//! A loop such as (paper Figure 1)
//!
//! ```fortran
//! do i = 1, N
//!     y(a(i)) = ... y(b(i)) ...
//! end do
//! ```
//!
//! has cross-iteration dependencies determined by the *runtime contents* of
//! the index arrays `a` and `b`. A compiler cannot emit an ordinary doacross
//! (which needs dependence distances at compile time), and a conservative
//! sequential execution wastes all available parallelism.
//!
//! ## The preprocessed doacross
//!
//! The paper's answer is an inspector/executor construct with three fully
//! parallel phases, all implemented here:
//!
//! 1. **Inspector** ([`inspector`]): `iter(a(i)) = i` for every iteration,
//!    every other element `MAXINT` (paper Figure 3, left).
//! 2. **Executor** ([`executor`]): a doacross in which iteration `i` writes
//!    the shadow array `ynew(a(i))` and resolves every right-hand-side
//!    reference `y(off)` with the three-way check of Figure 5:
//!    `iter(off) < i` → busy-wait on `ready(off)` then read `ynew(off)`
//!    (true dependency, statements S3–S5); `iter(off) > i` → read the old
//!    `y(off)` (antidependency or never written, S6–S7); `iter(off) == i` →
//!    read the iteration's own accumulator (intra-iteration, S8).
//! 3. **Postprocessor** ([`post`]): resets `iter`/`ready` and copies
//!    `ynew(a(i))` back into `y(a(i))` (Figure 3, right), so one set of
//!    scratch arrays serves arbitrarily many loop instances.
//!
//! The §2.3 variants are implemented as well: the strip-mined / blocked
//! doacross ([`blocked`]) and the linear-subscript executor that eliminates
//! the inspector when `a(i) = c·i + d` ([`linear`]).
//!
//! ## Executors: per-element flags vs. level barriers
//!
//! Two executors bracket the synchronization design space:
//!
//! * the **flat doacross** ([`executor`]) synchronizes per element — a
//!   reader busy-waits on `ready(off)` exactly where a true dependency
//!   bites, and independent iterations never wait. Best when dependencies
//!   are sparse or the wavefronts are narrow (few iterations per level):
//!   the only overhead is where the structure demands it.
//! * the **wavefront executor** ([`wavefront`]) synchronizes per *level* —
//!   iterations are grouped by dependence level at preprocessing time and
//!   each level runs as a barrier-separated doall, with **zero** ready-flag
//!   traffic and zero writer-map lookups inside a level. Best when the
//!   poll/stall bill dominates (many true dependencies, deep structures,
//!   contended flags): the per-element cost disappears and the price is
//!   `levels × barrier`.
//!
//! The `doacross-plan` cost model prices both and picks the crossover
//! automatically ([`stats::RunStats::wait_polls`] makes the trade
//! observable: wavefront runs report exactly zero).
//!
//! ## Quick start
//!
//! ```
//! use doacross_core::{Doacross, IndirectLoop};
//! use doacross_par::ThreadPool;
//!
//! // y[a[i]] = y[a[i]] + 0.5 * y[b[i]]  with runtime-determined a, b.
//! let a = vec![2, 0, 3, 1, 4];
//! let b = vec![0, 3, 1, 4, 2];
//! let coeff = vec![vec![0.5]; 5];
//! let rhs: Vec<Vec<usize>> = b.iter().map(|&e| vec![e]).collect();
//! let loop_ = IndirectLoop::new(5, a, rhs, coeff).unwrap();
//!
//! let pool = ThreadPool::new(2);
//! let mut y: Vec<f64> = (0..5).map(|i| i as f64).collect();
//! let mut oracle = y.clone();
//!
//! let mut runtime = Doacross::for_loop(&loop_);
//! let stats = runtime.run(&pool, &loop_, &mut y).unwrap();
//! doacross_core::seq::run_sequential(&loop_, &mut oracle);
//!
//! assert_eq!(y, oracle);
//! assert_eq!(stats.iterations, 5);
//! ```

// Audit posture: every dereference inside an `unsafe fn` must name its
// own justification in an explicit `unsafe {}` block.
#![deny(unsafe_op_in_unsafe_fn)]
pub mod alloc;
pub mod blocked;
pub mod error;
pub mod executor;
pub mod flags;
pub mod inspector;
pub mod linear;
pub mod oracle;
pub mod pattern;
pub mod post;
pub mod prepared;
pub mod runtime;
pub mod seq;
pub mod stats;
pub mod testloop;
pub mod wavefront;

pub use blocked::BlockedDoacross;
pub use error::DoacrossError;
pub use flags::{IterMap, ReadyFlags, MAXINT};
pub use linear::{LinearDoacross, LinearSubscript};
pub use oracle::{InspectedWriter, LinearWriter, WriterOracle};
pub use pattern::{AccessPattern, DoacrossLoop, IndirectLoop};
pub use prepared::PreparedInspection;
pub use runtime::{Doacross, DoacrossConfig};
pub use stats::{DepCounts, PlanProvenance, RunStats};
pub use testloop::{DependencyCensus, TestLoop};
pub use wavefront::{LevelSchedule, OperandClass, WavefrontDoacross};
