//! §2.3's linear-subscript variant: no inspector, no `iter` array.
//!
//! "When the left hand side arrays are indexed by a linear subscript
//! function (i.e. `a(i)` is replaced by some known linear function
//! `c × i + d`), it is possible to eliminate the execution time
//! preprocessing phase along with the need to allocate storage for array
//! `iter`. […] we can determine whether `y(b(i) + nbrs(j))` can be written
//! to by testing to see whether `(b(i) + nbrs(j) - d) mod c` is equal
//! to 0. If a write is carried out it occurs during loop iteration
//! `(b(i) + nbrs(j) - d)/c`."
//!
//! [`LinearDoacross`] is the [`crate::Doacross`] counterpart for this case:
//! it owns only `ready` and `ynew`, answers the executor's writer queries
//! arithmetically via [`LinearWriter`], and optionally verifies at run time
//! that the loop's `lhs` really is the declared linear function.

use crate::error::DoacrossError;
use crate::executor::run_executor;
use crate::flags::ReadyFlags;
use crate::inspector::ErrorSlot;
use crate::oracle::{LinearWriter, WriterOracle};
use crate::pattern::DoacrossLoop;
use crate::post::run_post;
use crate::runtime::DoacrossConfig;
use crate::stats::{RunStats, StatsSink};
use doacross_par::{parallel_for, SharedSlice, ThreadPool};
use std::time::Instant;

/// The declared left-hand-side subscript function `a(i) = c·i + d`
/// (0-based iteration index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearSubscript {
    /// Stride `c ≥ 1`. Strides ≥ 1 are automatically injective, so the
    /// no-output-dependency requirement holds by construction.
    pub c: usize,
    /// Offset `d`.
    pub d: usize,
}

impl LinearSubscript {
    /// `a(i) = c·i + d`.
    ///
    /// # Panics
    /// Panics if `c == 0`.
    pub fn new(c: usize, d: usize) -> Self {
        assert!(c > 0, "linear subscript requires stride c >= 1");
        Self { c, d }
    }

    /// Evaluates the subscript at iteration `i`.
    #[inline]
    pub fn at(&self, i: usize) -> usize {
        self.c * i + self.d
    }
}

/// Preprocessed doacross without preprocessing: the linear-subscript
/// runtime of §2.3. Owns `ready` flags and the shadow array only —
/// the memory the paper saves is exactly the `iter` array.
///
/// ```
/// use doacross_core::{seq::run_sequential, LinearDoacross, LinearSubscript, TestLoop};
/// use doacross_par::ThreadPool;
///
/// // Figure 4's a(i) = 2i is linear, so no inspector is needed.
/// let loop_ = TestLoop::new(200, 2, 6);
/// let pool = ThreadPool::new(2);
/// let mut y = loop_.initial_y();
/// let mut oracle = y.clone();
///
/// let mut rt = LinearDoacross::new(y.len());
/// let stats = rt.run(&pool, &loop_, loop_.linear_subscript(), &mut y).unwrap();
/// run_sequential(&loop_, &mut oracle);
/// assert_eq!(y, oracle);
/// ```
#[derive(Debug)]
pub struct LinearDoacross {
    config: DoacrossConfig,
    data_len: usize,
    ready: ReadyFlags,
    ynew: Vec<f64>,
}

impl LinearDoacross {
    /// Runtime covering `data_len` elements with default configuration.
    pub fn new(data_len: usize) -> Self {
        Self::with_config(data_len, DoacrossConfig::default())
    }

    /// Runtime with explicit configuration. `validate_terms` here controls
    /// the whole validation pass (there is no inspector to piggyback on):
    /// when `true`, a parallel pre-pass checks that `lhs(i) == c·i + d` and
    /// that all subscripts are in bounds.
    pub fn with_config(data_len: usize, config: DoacrossConfig) -> Self {
        Self {
            config,
            data_len,
            ready: ReadyFlags::new(data_len),
            ynew: vec![0.0; data_len],
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &DoacrossConfig {
        &self.config
    }

    /// Mutable configuration.
    pub fn config_mut(&mut self) -> &mut DoacrossConfig {
        &mut self.config
    }

    /// Size of the data space the scratch arrays cover.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Grows the scratch to cover `len` elements.
    pub fn ensure_data_len(&mut self, len: usize) {
        if len > self.data_len {
            self.data_len = len;
            self.ready = ReadyFlags::new(len);
            self.ynew = vec![0.0; len];
        }
    }

    /// Whether the `ready` flags satisfy the reuse invariant.
    pub fn scratch_is_clean(&self) -> bool {
        self.ready.all_clear()
    }

    /// The shadow array `ynew` (results live here at written elements
    /// after a run with `copy_back = false`).
    pub fn shadow(&self) -> &[f64] {
        &self.ynew
    }

    /// Runs the loop under the declared subscript, updating `y` in place.
    ///
    /// The `inspector` field of the returned stats holds the validation
    /// pass's time (zero when `validate_terms` is off — the paper's
    /// "eliminated preprocessing").
    pub fn run<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        subscript: LinearSubscript,
        y: &mut [f64],
    ) -> Result<RunStats, DoacrossError> {
        self.run_with_order(pool, loop_, subscript, y, None)
    }

    /// Like [`LinearDoacross::run`], but claims iterations in the supplied
    /// doconsider order (must be a permutation and a topological order of
    /// the true dependencies; both are checked, the latter only in
    /// full-validation mode).
    pub fn run_with_order<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        subscript: LinearSubscript,
        y: &mut [f64],
        order: Option<&[usize]>,
    ) -> Result<RunStats, DoacrossError> {
        let data_len = loop_.data_len();
        if y.len() != data_len {
            return Err(DoacrossError::DataLenMismatch {
                got: y.len(),
                expected: data_len,
            });
        }
        self.ensure_data_len(data_len);
        let n = loop_.iterations();
        let schedule = self.config.schedule;
        let mut stats = RunStats {
            iterations: n,
            workers: pool.threads(),
            blocks: 1,
            ..Default::default()
        };
        let t_start = Instant::now();

        // Optional validation pass (replaces the inspector).
        let t0 = Instant::now();
        if self.config.validate_terms {
            let mismatch = ErrorSlot::new();
            let oob = ErrorSlot::new();
            parallel_for(pool, n, schedule, |i| {
                let lhs = loop_.lhs(i);
                if lhs != subscript.at(i) {
                    mismatch.try_set(i, lhs);
                }
                if lhs >= data_len {
                    oob.try_set(i, lhs);
                }
                for j in 0..loop_.terms(i) {
                    let off = loop_.term_element(i, j);
                    if off >= data_len {
                        oob.try_set(i, off);
                    }
                }
            });
            if let Some((iteration, element)) = oob.get() {
                return Err(DoacrossError::SubscriptOutOfBounds {
                    iteration,
                    element,
                    data_len,
                });
            }
            if let Some((iteration, got)) = mismatch.get() {
                return Err(DoacrossError::SubscriptNotLinear {
                    iteration,
                    expected: subscript.at(iteration),
                    got,
                });
            }
            stats.inspector = t0.elapsed();
        }

        // Validate the claim order against the arithmetic writer oracle.
        if let Some(ord) = order {
            if ord.len() != n {
                return Err(DoacrossError::OrderLengthMismatch {
                    got: ord.len(),
                    expected: n,
                });
            }
            let mut position = vec![usize::MAX; n];
            for (k, &i) in ord.iter().enumerate() {
                if i >= n || position[i] != usize::MAX {
                    return Err(DoacrossError::OrderNotPermutation { entry: i });
                }
                position[i] = k;
            }
            if self.config.validate_terms {
                let oracle = LinearWriter::new(subscript.c, subscript.d, n);
                let violation = ErrorSlot::new();
                let position = &position[..];
                parallel_for(pool, n, schedule, |i| {
                    for j in 0..loop_.terms(i) {
                        let w = oracle.writer(loop_.term_element(i, j));
                        if w != crate::flags::MAXINT && (w as usize) < i {
                            let w = w as usize;
                            if position[w] > position[i] {
                                violation.try_set(i, w);
                            }
                        }
                    }
                });
                if let Some((reader, writer)) = violation.get() {
                    return Err(DoacrossError::OrderNotTopological { reader, writer });
                }
            }
        }

        // Executor with the arithmetic writer oracle.
        let t1 = Instant::now();
        let sink = StatsSink::new(pool.threads());
        {
            let oracle = LinearWriter::new(subscript.c, subscript.d, n);
            let y_view = SharedSlice::new(y);
            let ynew_view = SharedSlice::new(&mut self.ynew[..]);
            run_executor(
                pool,
                schedule,
                self.config.wait,
                loop_,
                0..n,
                order,
                &oracle,
                y_view,
                ynew_view,
                &self.ready,
                0,
                &sink,
            );
        }
        stats.executor = t1.elapsed();
        sink.drain_into(&mut stats);

        // Postprocessing: reset `ready`, copy back (no `iter` to clear)
        // unless the caller reads results from the shadow array.
        let t2 = Instant::now();
        {
            let y_view = SharedSlice::new(y);
            let ynew_view = SharedSlice::new(&mut self.ynew[..]);
            run_post(
                pool,
                schedule,
                loop_,
                0..n,
                0,
                None,
                &self.ready,
                y_view,
                ynew_view,
                self.config.copy_back,
            );
        }
        stats.post = t2.elapsed();
        stats.total = t_start.elapsed();
        debug_assert!(self.scratch_is_clean());
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AccessPattern, IndirectLoop};
    use crate::runtime::Doacross;
    use crate::seq::run_sequential;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    /// y[2i+1] += 0.5 * y[2i] + 0.25 * y[2i+2]: linear lhs with stride 2.
    fn strided_loop(n: usize) -> (IndirectLoop, LinearSubscript) {
        let dl = 2 * n + 2;
        let a: Vec<usize> = (0..n).map(|i| 2 * i + 1).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![2 * i, 2 * i + 2]).collect();
        let coeff = vec![vec![0.5, 0.25]; n];
        (
            IndirectLoop::new(dl, a, rhs, coeff).unwrap(),
            LinearSubscript::new(2, 1),
        )
    }

    #[test]
    fn linear_matches_sequential_and_inspected() {
        let (l, sub) = strided_loop(300);
        let y0: Vec<f64> = (0..l.data_len()).map(|e| (e % 7) as f64).collect();

        let mut oracle = y0.clone();
        run_sequential(&l, &mut oracle);

        let mut y_lin = y0.clone();
        let mut lin = LinearDoacross::new(l.data_len());
        lin.run(&pool(), &l, sub, &mut y_lin).unwrap();
        assert_eq!(y_lin, oracle);

        let mut y_insp = y0;
        let mut insp = Doacross::for_loop(&l);
        insp.run(&pool(), &l, &mut y_insp).unwrap();
        assert_eq!(y_insp, oracle, "linear and inspected paths must agree");
    }

    #[test]
    fn mismatched_subscript_is_rejected() {
        let (l, _) = strided_loop(10);
        let mut lin = LinearDoacross::new(l.data_len());
        let mut y = vec![0.0; l.data_len()];
        let err = lin
            .run(&pool(), &l, LinearSubscript::new(2, 0), &mut y)
            .unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::SubscriptNotLinear {
                iteration: 0,
                expected: 0,
                got: 1
            }
        ));
    }

    #[test]
    fn skipping_validation_skips_the_pre_pass() {
        let (l, sub) = strided_loop(50);
        let cfg = DoacrossConfig {
            validate_terms: false,
            ..Default::default()
        };
        let mut lin = LinearDoacross::with_config(l.data_len(), cfg);
        let mut y = vec![1.0; l.data_len()];
        let mut oracle = y.clone();
        let stats = lin.run(&pool(), &l, sub, &mut y).unwrap();
        run_sequential(&l, &mut oracle);
        assert_eq!(y, oracle);
        assert_eq!(
            stats.inspector,
            std::time::Duration::ZERO,
            "no preprocessing at all in the paper's eliminated-inspector mode"
        );
    }

    #[test]
    fn identity_subscript_solves_chains() {
        // a(i) = i (c=1, d=0): the triangular-solve shape.
        let n = 128;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i.saturating_sub(1)]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![1.0]; n]).unwrap();
        let y0 = vec![1.0; n];
        let mut oracle = y0.clone();
        run_sequential(&l, &mut oracle);
        let mut y = y0;
        let mut lin = LinearDoacross::new(n);
        let stats = lin
            .run(&pool(), &l, LinearSubscript::new(1, 0), &mut y)
            .unwrap();
        assert_eq!(y, oracle);
        // Iteration 0 reads element 0 -> intra; the rest are true deps.
        assert_eq!(stats.deps.intra, 1);
        assert_eq!(stats.deps.true_deps, (n - 1) as u64);
    }

    #[test]
    fn runtime_reuse_and_data_len_checks() {
        let (l, sub) = strided_loop(20);
        let mut lin = LinearDoacross::new(l.data_len());
        let mut wrong = vec![0.0; 3];
        assert!(matches!(
            lin.run(&pool(), &l, sub, &mut wrong),
            Err(DoacrossError::DataLenMismatch { .. })
        ));
        let mut y = vec![1.0; l.data_len()];
        for _ in 0..3 {
            lin.run(&pool(), &l, sub, &mut y).unwrap();
            assert!(lin.scratch_is_clean());
        }
    }

    #[test]
    #[should_panic(expected = "stride c >= 1")]
    fn zero_stride_rejected() {
        let _ = LinearSubscript::new(0, 3);
    }

    #[test]
    fn subscript_evaluation() {
        let s = LinearSubscript::new(3, 2);
        assert_eq!(s.at(0), 2);
        assert_eq!(s.at(10), 32);
    }
}
