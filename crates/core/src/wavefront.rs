//! Level-scheduled (wavefront) execution: the doacross as a sequence of
//! barrier-synchronized doalls.
//!
//! The flat executor ([`crate::executor`]) pays a per-element price on
//! every true dependency: poll `ready(off)` until the writer publishes
//! (Figure 5, S4). This module converts that fine-grained dataflow
//! synchronization into coarse *level* synchronization: iterations are
//! grouped by wavefront level (`level(i) = 1 + max(level of true-dep
//! writers)`), each level is executed as a `parallel do` over mutually
//! independent iterations, and consecutive levels are separated by a
//! [`SpinBarrier`] — **zero ready-flag traffic, zero writer-map lookups**
//! inside a level.
//!
//! Two preprocessing products make that possible, both captured once at
//! plan time in a [`LevelSchedule`]:
//!
//! * the **level structure** (CSR-style: level offsets into a level-sorted
//!   iteration order), which replaces the `ready` flags — a true-dep
//!   operand's writer lives in a strictly earlier level, so by the time a
//!   reader runs, the value is already published and ordered by the
//!   barrier;
//! * a per-reference **operand classification** (the three-way check of
//!   Figure 5, resolved ahead of time), which replaces the `iter` map — the
//!   executor learns "new value / old value / accumulator" from a
//!   sequentially-scanned byte instead of a randomly-indexed map entry.
//!
//! ## Memory-ordering argument
//!
//! Writers store `ynew(a(i))` with plain writes; the barrier's
//! release/acquire pair (arrival `fetch_add(AcqRel)`, generation
//! `store(Release)` by the leader, generation `load(Acquire)` by everyone
//! else) orders every store of level `l` before every load of level
//! `l + 1`. `y` is read-only for the whole region, and each `ynew` element
//! has exactly one writer (injective `a`). Within a level there is no
//! cross-iteration communication at all — that is what a wavefront *is*.
//!
//! ## When it wins
//!
//! The trade is the paper's dataflow-vs-barrier design space (the
//! `doacross-trisolve` crate's `LevelScheduledSolver` is the same idea
//! specialized to triangular solves): the flat doacross pays flag traffic
//! per true dependency but synchronizes only where dependencies actually
//! bite; the wavefront pays one barrier per level but nothing per element.
//! Level scheduling wins when the poll/stall bill (many true dependencies,
//! deep structures, polling contention) exceeds `levels × barrier
//! latency`; it loses on narrow-level structures where barriers outnumber
//! useful work. `doacross-plan`'s cost model prices exactly that
//! crossover.

use crate::error::DoacrossError;
use crate::executor::DEADLINE_ITER_PERIOD;
use crate::pattern::DoacrossLoop;
use crate::runtime::DoacrossConfig;
use crate::stats::{LocalCounters, PlanProvenance, RunStats, StatsSink};
use doacross_obs::profile::{ProfArena, SpanKind};
use doacross_par::{
    abort_region, parallel_for, CachePadded, Schedule, SharedSlice, SpinBarrier, ThreadPool,
    WaitAbort,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Fault-injection site consulted once per wavefront region; armed
/// actions apply per iteration.
pub(crate) const FAILPOINT_ITER: &str = "core::wavefront::iter";

/// Where an executor resolves a right-hand-side operand from — Figure 5's
/// three-way check, decided at preprocessing time instead of per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OperandClass {
    /// True dependency on an earlier iteration (S3–S5): read the shadow
    /// array `ynew(off)`; the writer's level is strictly earlier.
    NewValue = 0,
    /// Antidependency or never-written element (S6–S7): read the old value
    /// `y(off)`.
    OldValue = 1,
    /// Intra-iteration reference (S8): read the register accumulator.
    Accumulator = 2,
}

impl OperandClass {
    /// Decodes a stored class byte; `None` for values no encoder produces.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(OperandClass::NewValue),
            1 => Some(OperandClass::OldValue),
            2 => Some(OperandClass::Accumulator),
            _ => None,
        }
    }
}

/// The wavefront preprocessing artifact: the full level structure of a
/// loop's true-dependence DAG plus the resolved operand classification of
/// every right-hand-side reference.
///
/// Everything in here is a pure function of the pattern's *structure* (the
/// same contract as a prebuilt writer map), so one schedule serves every
/// execution of every loop sharing that structure. Built by
/// `doacross_plan::PlanCensus::of_with_schedule` in the same pass that
/// classifies the census — never recomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSchedule {
    /// CSR level boundaries: level `l` (0-based) executes
    /// `order[offsets[l]..offsets[l + 1]]`. Strictly increasing (every
    /// level is non-empty), `offsets[0] == 0`, last entry `== iterations`.
    offsets: Vec<usize>,
    /// Iterations sorted by level, stable within a level — a permutation
    /// of `0..iterations`.
    order: Vec<usize>,
    /// Prefix sums of per-iteration reference counts:
    /// `classes[term_offsets[i]..term_offsets[i + 1]]` classifies
    /// iteration `i`'s references in term order.
    term_offsets: Vec<usize>,
    /// One [`OperandClass`] byte per (iteration, term) reference.
    classes: Vec<u8>,
}

impl LevelSchedule {
    /// Assembles a schedule from a per-iteration level assignment
    /// (`levels[i] ∈ 1..=nlevels`, as the census computes it) plus the
    /// reference classification of the same pass. Counting sort by level —
    /// O(n + levels), stable, no recomputation of anything.
    ///
    /// # Panics
    /// Debug-asserts the inputs are mutually consistent (the census
    /// guarantees this by construction).
    pub fn from_levels(
        levels: &[usize],
        nlevels: usize,
        term_offsets: Vec<usize>,
        classes: Vec<u8>,
    ) -> Self {
        let n = levels.len();
        debug_assert_eq!(term_offsets.len(), n + 1);
        debug_assert_eq!(*term_offsets.last().unwrap_or(&0), classes.len());
        let mut counts = vec![0usize; nlevels + 1];
        for &l in levels {
            debug_assert!(l >= 1 && l <= nlevels, "level {l} outside 1..={nlevels}");
            counts[l] += 1;
        }
        let mut offsets = Vec::with_capacity(nlevels + 1);
        offsets.push(0usize);
        for l in 1..=nlevels {
            offsets.push(offsets[l - 1] + counts[l]);
        }
        let mut cursor = offsets.clone();
        let mut order = vec![0usize; n];
        for (i, &l) in levels.iter().enumerate() {
            order[cursor[l - 1]] = i;
            cursor[l - 1] += 1;
        }
        Self {
            offsets,
            order,
            term_offsets,
            classes,
        }
    }

    /// Rebuilds a schedule from its raw parts — the deserialization path
    /// for persisted plans. Returns `None` unless the parts are mutually
    /// consistent: offsets strictly increasing from 0 (every level
    /// non-empty) and ending at `order.len()`, `order` a permutation,
    /// `term_offsets` monotone from 0 covering exactly `classes.len()`
    /// references over `order.len()` iterations, and every class byte a
    /// valid [`OperandClass`] — a blob that no census pass could have
    /// produced is rejected rather than trusted.
    pub fn from_parts(
        offsets: Vec<usize>,
        order: Vec<usize>,
        term_offsets: Vec<usize>,
        classes: Vec<u8>,
    ) -> Option<Self> {
        let n = order.len();
        if offsets.first() != Some(&0) || offsets.last() != Some(&n) {
            return None;
        }
        if !offsets.windows(2).all(|w| w[0] < w[1]) && n != 0 {
            return None;
        }
        if n == 0 && offsets.len() != 1 {
            return None;
        }
        let mut seen = vec![false; n];
        for &i in &order {
            if i >= n || std::mem::replace(&mut seen[i], true) {
                return None;
            }
        }
        if term_offsets.len() != n + 1
            || term_offsets.first() != Some(&0)
            || term_offsets.last() != Some(&classes.len())
            || !term_offsets.windows(2).all(|w| w[0] <= w[1])
        {
            return None;
        }
        if !classes.iter().all(|&c| OperandClass::from_u8(c).is_some()) {
            return None;
        }
        Some(Self {
            offsets,
            order,
            term_offsets,
            classes,
        })
    }

    /// Number of wavefront levels — the dependence critical path.
    pub fn level_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Iterations covered by the schedule.
    pub fn iterations(&self) -> usize {
        self.order.len()
    }

    /// Total classified references.
    pub fn total_terms(&self) -> usize {
        self.classes.len()
    }

    /// The iterations of level `l` (0-based), mutually independent.
    pub fn level_iterations(&self, l: usize) -> &[usize] {
        &self.order[self.offsets[l]..self.offsets[l + 1]]
    }

    /// The widest level — an upper bound on exploitable parallelism within
    /// any single barrier interval.
    pub fn max_width(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| w[1] - w[0])
            .max()
            .unwrap_or(0)
    }

    /// The CSR level boundaries.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The level-sorted iteration order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Per-iteration reference offsets into [`LevelSchedule::classes`].
    pub fn term_offsets(&self) -> &[usize] {
        &self.term_offsets
    }

    /// The per-reference operand classes, in (iteration, term) order.
    pub fn classes(&self) -> &[u8] {
        &self.classes
    }

    /// Reference counts per class, in ([`OperandClass::NewValue`],
    /// [`OperandClass::OldValue`], [`OperandClass::Accumulator`]) order —
    /// what persistence revalidates against the census.
    pub fn class_counts(&self) -> (u64, u64, u64) {
        let mut counts = [0u64; 3];
        for &c in &self.classes {
            counts[c as usize] += 1;
        }
        (counts[0], counts[1], counts[2])
    }

    /// Approximate heap footprint in bytes, for cache sizing decisions.
    pub fn memory_bytes(&self) -> usize {
        (self.offsets.len() + self.order.len() + self.term_offsets.len())
            * std::mem::size_of::<usize>()
            + self.classes.len()
    }
}

/// Self-scheduling chunk for one level of `width` iterations on `nworkers`
/// workers: large enough to cut shared-counter contention (the paper's
/// "chunk of iterations" self-scheduling generalization), small enough to
/// keep every worker busy — at least 8 grabs per worker per level, capped
/// so narrow levels still spread.
pub fn level_chunk(width: usize, nworkers: usize) -> usize {
    (width / (8 * nworkers.max(1))).clamp(1, 64)
}

/// Runs the level-scheduled executor: one parallel region for the whole
/// loop, each level a self-scheduled doall over
/// [`LevelSchedule::level_iterations`], consecutive levels separated by
/// `barrier`. No `ready` flags, no writer map — operands are resolved from
/// the schedule's precomputed [`OperandClass`]es (see module docs).
///
/// * `chunk`: `Some(c)` claims `c` iterations per counter grab on every
///   level; `None` picks [`level_chunk`] per level (dynamic base schedules
///   only — static schedules ignore chunking entirely).
/// * `counters` must hold at least one cell per level, all zero on entry.
/// * `barrier` must have exactly `pool.threads()` participants.
///
/// Bounds are enforced with release-mode asserts, mirroring the flat
/// executor: the plan already proved the structure in-bounds.
#[allow(clippy::too_many_arguments)]
pub fn run_wavefront_executor<L>(
    pool: &ThreadPool,
    base_schedule: Schedule,
    chunk: Option<usize>,
    loop_: &L,
    schedule: &LevelSchedule,
    y: SharedSlice<'_, f64>,
    ynew: SharedSlice<'_, f64>,
    counters: &[CachePadded<AtomicUsize>],
    barrier: &SpinBarrier,
    sink: &StatsSink,
) where
    L: DoacrossLoop + ?Sized,
{
    run_wavefront_executor_profiled(
        pool,
        base_schedule,
        chunk,
        loop_,
        schedule,
        y,
        ynew,
        counters,
        barrier,
        sink,
        None,
    )
}

/// [`run_wavefront_executor`] with optional span profiling. With `prof`
/// set, each worker records per level one [`SpanKind::Work`] span (`aux` =
/// iterations executed in that level) and, between adjacent levels, one
/// [`SpanKind::BarrierWait`] span — so each worker's barrier-wait span
/// count equals the run's `barrier_crossings` and the per-level totals
/// feed the profiler's level histograms. `None` costs one branch per
/// would-be span.
#[allow(clippy::too_many_arguments)]
pub fn run_wavefront_executor_profiled<L>(
    pool: &ThreadPool,
    base_schedule: Schedule,
    chunk: Option<usize>,
    loop_: &L,
    schedule: &LevelSchedule,
    y: SharedSlice<'_, f64>,
    ynew: SharedSlice<'_, f64>,
    counters: &[CachePadded<AtomicUsize>],
    barrier: &SpinBarrier,
    sink: &StatsSink,
    prof: Option<&ProfArena>,
) where
    L: DoacrossLoop + ?Sized,
{
    let nworkers = pool.threads();
    let nlevels = schedule.level_count();
    if nlevels == 0 {
        return;
    }
    assert!(counters.len() >= nlevels, "one claim counter per level");
    assert_eq!(barrier.participants(), nworkers);
    let data_len = loop_.data_len();
    let term_offsets = schedule.term_offsets();
    let classes = schedule.classes();
    // Fault containment (same shape as the flat executor): a worker that
    // panics mid-level never arrives at the barrier, so both the
    // iteration body and the barrier arrival poll the region's poison
    // word and the optional deadline.
    let poison = pool.poison();
    let deadline = pool.deadline();
    let failpoint = failpoint::lookup(FAILPOINT_ITER);

    pool.run(|worker| {
        let mut local = LocalCounters::default();
        let mut executed: u64 = 0;
        for (l, counter) in counters[..nlevels].iter().enumerate() {
            let level = schedule.level_iterations(l);
            let width = level.len();
            let level_sched = match (base_schedule, chunk) {
                (Schedule::Dynamic { .. }, Some(c)) => Schedule::Dynamic { chunk: c.max(1) },
                (Schedule::Dynamic { .. }, None) => Schedule::Dynamic {
                    chunk: level_chunk(width, nworkers),
                },
                (Schedule::Guided { .. }, Some(c)) => Schedule::Guided {
                    min_chunk: c.max(1),
                },
                (s, _) => s,
            };
            let level_started = prof.map(|arena| arena.now_ns());
            let executed_before = executed;
            level_sched.drive(worker, nworkers, width, counter, |k| {
                let i = level[k];
                failpoint::hit(failpoint, i as u64);
                if let Some(fault) = poison.fault() {
                    sink.deposit(worker, std::mem::take(&mut local));
                    abort_region(poison, WaitAbort::Poisoned(fault));
                }
                executed += 1;
                if deadline.is_some() && executed.is_multiple_of(DEADLINE_ITER_PERIOD) {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            sink.deposit(worker, std::mem::take(&mut local));
                            abort_region(poison, WaitAbort::DeadlineExpired);
                        }
                    }
                }
                let lhs = loop_.lhs(i);
                assert!(lhs < data_len, "wavefront: lhs {lhs} out of bounds");

                // S2: seed from the old value of the output element.
                // SAFETY: y is read-only during the region; bounds asserted.
                let mut acc = loop_.init(i, unsafe { y.read(lhs) });

                let base = term_offsets[i];
                let terms = loop_.terms(i);
                assert!(
                    base + terms <= classes.len() && term_offsets[i + 1] - base == terms,
                    "wavefront: schedule references disagree with the loop"
                );
                for j in 0..terms {
                    let off = loop_.term_element(i, j);
                    assert!(off < data_len, "wavefront: term {off} out of bounds");
                    let operand = match classes[base + j] {
                        0 => {
                            local.true_deps += 1;
                            // SAFETY: bounds asserted above. True
                            // dependency: the writer's level is strictly
                            // earlier; its plain `ynew` store happens-before
                            // this load via the barrier's release/acquire
                            // (module docs).
                            unsafe { ynew.read(off) }
                        }
                        1 => {
                            local.anti_or_unwritten += 1;
                            // SAFETY: antidependency / never written — the
                            // old value; `y` is read-only during the region.
                            unsafe { y.read(off) }
                        }
                        // Intra-iteration: the register accumulator.
                        _ => {
                            local.intra += 1;
                            debug_assert_eq!(off, lhs, "class says intra but off != lhs");
                            acc
                        }
                    };
                    acc = loop_.combine(i, j, acc, operand);
                }

                // SAFETY: `lhs` has this iteration as its unique writer
                // (injective `a`), and no other level touches it this run.
                unsafe { ynew.write(lhs, loop_.finish(i, acc)) };
            });
            if let (Some(arena), Some(started)) = (prof, level_started) {
                let end = arena.now_ns();
                arena.record(
                    worker,
                    SpanKind::Work,
                    l as u32,
                    started,
                    end.saturating_sub(started),
                    executed - executed_before,
                );
            }
            if l + 1 < nlevels {
                match prof {
                    None => {
                        if let Err(abort) = barrier.wait_guarded(poison, deadline) {
                            sink.deposit(worker, std::mem::take(&mut local));
                            abort_region(poison, abort);
                        }
                    }
                    Some(arena) => match barrier.wait_guarded_timed(poison, deadline) {
                        Ok((_leader, wait_ns)) => {
                            let end = arena.now_ns();
                            arena.record(
                                worker,
                                SpanKind::BarrierWait,
                                l as u32,
                                end.saturating_sub(wait_ns),
                                wait_ns,
                                0,
                            );
                        }
                        Err(abort) => {
                            sink.deposit(worker, std::mem::take(&mut local));
                            abort_region(poison, abort);
                        }
                    },
                }
            }
        }
        sink.deposit(worker, local);
    });
}

/// Reusable level-scheduled doacross runtime: owns the shadow array and the
/// per-level claim counters, executes any [`DoacrossLoop`] under a prebuilt
/// [`LevelSchedule`].
///
/// Scratch grows to the largest data space / deepest level structure seen
/// and is then reused (the paper's §2.1 scratch-reuse economics), so a
/// workload alternating structures — an L and a U factor, many tenants —
/// does not churn allocations.
///
/// ```
/// use doacross_core::{LevelSchedule, WavefrontDoacross, IndirectLoop};
/// use doacross_core::seq::run_sequential;
/// use doacross_par::ThreadPool;
///
/// // y[i+1] += y[i]: a chain — levels are the iterations themselves.
/// let n = 64;
/// let a: Vec<usize> = (1..=n).collect();
/// let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
/// let loop_ = IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap();
///
/// // Level assignment for the chain: level(i) = i + 1; every reference is
/// // a true dependency except iteration 0's read of the unwritten y[0].
/// let levels: Vec<usize> = (1..=n).collect();
/// let term_offsets: Vec<usize> = (0..=n).collect();
/// let mut classes = vec![0u8; n];
/// classes[0] = 1;
/// let schedule = LevelSchedule::from_levels(&levels, n, term_offsets, classes);
///
/// let pool = ThreadPool::new(2);
/// let mut rt = WavefrontDoacross::new(n + 1);
/// let mut y = vec![1.0; n + 1];
/// let mut oracle = y.clone();
/// let stats = rt.run(&pool, &loop_, &mut y, &schedule).unwrap();
/// run_sequential(&loop_, &mut oracle);
/// assert_eq!(y, oracle);
/// assert_eq!(stats.wait_polls, 0, "no busy waiting, ever");
/// ```
#[derive(Debug)]
pub struct WavefrontDoacross {
    config: DoacrossConfig,
    data_len: usize,
    ynew: Vec<f64>,
    counters: Vec<CachePadded<AtomicUsize>>,
}

impl WavefrontDoacross {
    /// Runtime whose scratch covers a data space of `data_len` elements.
    pub fn new(data_len: usize) -> Self {
        Self::with_config(data_len, DoacrossConfig::default())
    }

    /// Runtime with explicit configuration. `schedule` picks the
    /// within-level claiming policy (`wait` is irrelevant — nothing ever
    /// waits); `copy_back` is honored as in [`crate::Doacross`].
    pub fn with_config(data_len: usize, config: DoacrossConfig) -> Self {
        Self {
            config,
            data_len,
            ynew: vec![0.0; data_len],
            counters: Vec::new(),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &DoacrossConfig {
        &self.config
    }

    /// Size of the data space the scratch covers.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// The shadow array; after a run with `copy_back = false` the results
    /// live here at the written elements.
    pub fn shadow(&self) -> &[f64] {
        &self.ynew
    }

    /// Grows the scratch to cover `data_len` elements and `nlevels` levels
    /// (no-op when already large enough — the reuse half of the deal).
    pub fn ensure_capacity(&mut self, data_len: usize, nlevels: usize) {
        if data_len > self.data_len {
            self.data_len = data_len;
            self.ynew = vec![0.0; data_len];
        }
        if nlevels > self.counters.len() {
            self.counters
                .resize_with(nlevels, || CachePadded::new(AtomicUsize::new(0)));
        }
    }

    /// Runs `loop_` under `schedule` as barrier-separated level doalls,
    /// updating `y` exactly as the sequential source loop would. The
    /// returned stats report zero `stalls` and zero `wait_polls` by
    /// construction — there are no flags to poll.
    pub fn run<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        schedule: &LevelSchedule,
    ) -> Result<RunStats, DoacrossError> {
        self.run_chunked(pool, loop_, y, schedule, None)
    }

    /// Like [`WavefrontDoacross::run`] with an explicit per-grab chunk size
    /// for the within-level self-scheduling: `None` adapts the chunk to
    /// each level's width ([`level_chunk`]); `Some(1)` reproduces the
    /// paper's one-iteration Multimax policy (the chunking ablation's
    /// baseline).
    pub fn run_chunked<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        schedule: &LevelSchedule,
        chunk: Option<usize>,
    ) -> Result<RunStats, DoacrossError> {
        self.run_chunked_profiled(pool, loop_, y, schedule, chunk, None)
    }

    /// [`WavefrontDoacross::run_chunked`] with optional span profiling —
    /// see [`run_wavefront_executor_profiled`] for what is recorded.
    pub fn run_chunked_profiled<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        schedule: &LevelSchedule,
        chunk: Option<usize>,
        prof: Option<&ProfArena>,
    ) -> Result<RunStats, DoacrossError> {
        let data_len = loop_.data_len();
        let n = loop_.iterations();
        if y.len() != data_len {
            return Err(DoacrossError::DataLenMismatch {
                got: y.len(),
                expected: data_len,
            });
        }
        if schedule.iterations() != n {
            return Err(DoacrossError::PlanMismatch {
                plan_iterations: schedule.iterations(),
                plan_data_len: data_len,
                loop_iterations: n,
                loop_data_len: data_len,
            });
        }
        // The schedule's per-iteration reference counts must match the
        // loop's, checked up front: inside the barrier region a mismatch
        // would trip an assert on one worker while the others spin at the
        // barrier forever — a hang, not a panic. One O(n) sweep here turns
        // that into a typed error (the executor's asserts stay as the
        // final defense). Deliberately NOT gated on
        // `config.validate_terms`: that flag controls subscript *bounds*
        // validation, while this sweep guards region *liveness* — and its
        // cost (two loads and a compare per iteration, same order as the
        // copy-back pass) is an honest part of the wavefront's per-solve
        // bill.
        let term_offsets = schedule.term_offsets();
        if let Some(iteration) =
            (0..n).find(|&i| term_offsets[i + 1] - term_offsets[i] != loop_.terms(i))
        {
            return Err(DoacrossError::ScheduleTermsMismatch {
                iteration,
                schedule_terms: term_offsets[iteration + 1] - term_offsets[iteration],
                loop_terms: loop_.terms(iteration),
            });
        }
        self.ensure_capacity(data_len, schedule.level_count());

        let mut stats = RunStats {
            iterations: n,
            workers: pool.threads(),
            blocks: 1,
            provenance: PlanProvenance::PlanCold,
            ..Default::default()
        };
        let t_start = Instant::now();

        // Per-level claim counters start at zero every run (they are dirty
        // after the previous one); O(levels), off the parallel path.
        let nlevels = schedule.level_count();
        for counter in &self.counters[..nlevels] {
            counter.store(0, Ordering::Relaxed);
        }

        // Executor: all levels inside one pool dispatch, barriers between.
        let t1 = Instant::now();
        let sink = StatsSink::new(pool.threads());
        let barrier = SpinBarrier::new(pool.threads());
        {
            let y_view = SharedSlice::new(y);
            let ynew_view = SharedSlice::new(&mut self.ynew[..data_len]);
            run_wavefront_executor_profiled(
                pool,
                self.config.schedule,
                chunk,
                loop_,
                schedule,
                y_view,
                ynew_view,
                &self.counters[..nlevels],
                &barrier,
                &sink,
                prof,
            );
        }
        stats.executor = t1.elapsed();
        sink.drain_into(&mut stats);
        // The wavefront's synchronization bill: one barrier between each
        // pair of adjacent levels (every worker crosses each). Without
        // this, `wait_polls == 0` by construction makes the variant's
        // synchronization cost invisible. A per-level max-wait timing was
        // considered and rejected: two clock reads per worker per level
        // is microseconds of overhead on solves that run tens of
        // microseconds end to end.
        stats.barrier_crossings = nlevels.saturating_sub(1) as u64;

        // Postprocessor: copy the shadow results back (no flags to reset —
        // the wavefront runtime has none).
        let t2 = Instant::now();
        if self.config.copy_back {
            let y_view = SharedSlice::new(y);
            let ynew_view = SharedSlice::new(&mut self.ynew[..data_len]);
            parallel_for(pool, n, self.config.schedule, |i| {
                let e = loop_.lhs(i);
                // SAFETY: `e` is written by exactly one iteration, and the
                // pool join ordered the executor's stores before this region.
                unsafe { y_view.write(e, ynew_view.read(e)) };
            });
        }
        stats.post = t2.elapsed();
        stats.total = t_start.elapsed();
        debug_assert_eq!(stats.wait_polls, 0, "wavefront runs never poll");
        debug_assert_eq!(stats.stalls, 0, "wavefront runs never stall");
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AccessPattern, IndirectLoop};
    use crate::seq::run_sequential;
    use crate::MAXINT;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    /// Reference schedule builder for tests: classifies references and
    /// assigns levels exactly as the census does (last-writer map, levels
    /// from true deps).
    fn schedule_of(loop_: &IndirectLoop) -> LevelSchedule {
        let n = loop_.iterations();
        let mut writer = vec![MAXINT; loop_.data_len()];
        for i in 0..n {
            writer[loop_.lhs(i)] = i as i64;
        }
        let mut levels = vec![0usize; n];
        let mut nlevels = 0usize;
        let mut term_offsets = Vec::with_capacity(n + 1);
        term_offsets.push(0usize);
        let mut classes = Vec::new();
        for i in 0..n {
            let mut level = 1usize;
            for j in 0..loop_.terms(i) {
                let w = writer[loop_.term_element(i, j)];
                let class = if w == MAXINT {
                    OperandClass::OldValue
                } else {
                    match (w as usize).cmp(&i) {
                        std::cmp::Ordering::Less => {
                            level = level.max(levels[w as usize] + 1);
                            OperandClass::NewValue
                        }
                        std::cmp::Ordering::Equal => OperandClass::Accumulator,
                        std::cmp::Ordering::Greater => OperandClass::OldValue,
                    }
                };
                classes.push(class as u8);
            }
            term_offsets.push(classes.len());
            levels[i] = level;
            nlevels = nlevels.max(level);
        }
        LevelSchedule::from_levels(&levels, nlevels, term_offsets, classes)
    }

    fn oracle(loop_: &IndirectLoop, y0: &[f64]) -> Vec<f64> {
        let mut y = y0.to_vec();
        run_sequential(loop_, &mut y);
        y
    }

    fn chain(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap()
    }

    #[test]
    fn chain_matches_sequential_with_zero_polls() {
        let l = chain(300);
        let schedule = schedule_of(&l);
        assert_eq!(schedule.level_count(), 300, "a chain is all levels");
        let y0 = vec![1.0; 301];
        let expect = oracle(&l, &y0);
        for workers in [1, 2, 4] {
            let p = ThreadPool::new(workers);
            let mut rt = WavefrontDoacross::new(301);
            let mut y = y0.clone();
            let stats = rt.run(&p, &l, &mut y, &schedule).unwrap();
            assert_eq!(y, expect, "workers={workers}");
            assert_eq!(stats.wait_polls, 0);
            assert_eq!(stats.stalls, 0);
            assert_eq!(
                stats.barrier_crossings, 299,
                "levels - 1 barriers separate a 300-level chain"
            );
            assert_eq!(stats.deps.true_deps, 299);
            assert_eq!(stats.deps.anti_or_unwritten, 1);
        }
    }

    #[test]
    fn mixed_classes_match_sequential() {
        // True deps, antideps, intra references, and unwritten reads mixed.
        let n = 257;
        let dl = 2 * n;
        let a: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % dl).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| vec![(i * 13 + 1) % dl, (i * 5 + 11) % dl, (i * 7 + 3) % dl])
            .collect();
        let coeff: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![0.25 + (i % 3) as f64, 0.5, 0.125])
            .collect();
        let l = IndirectLoop::new(dl, a, rhs, coeff).unwrap();
        let schedule = schedule_of(&l);
        let y0: Vec<f64> = (0..dl).map(|e| (e % 17) as f64 * 0.125).collect();
        let expect = oracle(&l, &y0);
        let mut rt = WavefrontDoacross::new(dl);
        let mut y = y0.clone();
        let stats = rt.run(&pool(), &l, &mut y, &schedule).unwrap();
        assert_eq!(y, expect);
        assert_eq!(
            stats.deps.total(),
            3 * n as u64,
            "every reference classified"
        );
        assert_eq!(stats.wait_polls, 0);
        let (new, old, acc) = schedule.class_counts();
        assert_eq!(stats.deps.true_deps, new);
        assert_eq!(stats.deps.anti_or_unwritten, old);
        assert_eq!(stats.deps.intra, acc);
    }

    #[test]
    fn all_chunkings_and_schedules_agree() {
        let chains = 8usize;
        let len = 24usize;
        let n = chains * len;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n)
            .map(|i| if i < chains { vec![] } else { vec![i - chains] })
            .collect();
        let coeff: Vec<Vec<f64>> = rhs.iter().map(|r| vec![0.5; r.len()]).collect();
        let l = IndirectLoop::new(n, a, rhs, coeff).unwrap();
        let schedule = schedule_of(&l);
        assert_eq!(schedule.level_count(), len);
        assert_eq!(schedule.max_width(), chains);
        let y0 = vec![1.0; n];
        let expect = oracle(&l, &y0);
        let p = pool();
        for config_schedule in [
            Schedule::multimax(),
            Schedule::StaticBlock,
            Schedule::StaticCyclic,
            Schedule::Guided { min_chunk: 2 },
        ] {
            for chunk in [None, Some(1), Some(3), Some(1000)] {
                let mut rt = WavefrontDoacross::with_config(
                    n,
                    DoacrossConfig {
                        schedule: config_schedule,
                        ..DoacrossConfig::default()
                    },
                );
                let mut y = y0.clone();
                rt.run_chunked(&p, &l, &mut y, &schedule, chunk).unwrap();
                assert_eq!(y, expect, "{config_schedule:?} chunk {chunk:?}");
            }
        }
    }

    #[test]
    fn scratch_reuse_across_alternating_structures() {
        let small = chain(10);
        let big = chain(80);
        let sched_small = schedule_of(&small);
        let sched_big = schedule_of(&big);
        let p = pool();
        let mut rt = WavefrontDoacross::new(0);
        for _ in 0..3 {
            let mut y = vec![1.0; 11];
            rt.run(&p, &small, &mut y, &sched_small).unwrap();
            assert_eq!(y, oracle(&small, &[1.0; 11]));
            let mut y = vec![1.0; 81];
            rt.run(&p, &big, &mut y, &sched_big).unwrap();
            assert_eq!(y, oracle(&big, &[1.0; 81]));
        }
        assert_eq!(rt.data_len(), 81, "grown once, reused thereafter");
    }

    #[test]
    fn copy_back_disabled_leaves_y_and_fills_shadow() {
        let l = chain(32);
        let schedule = schedule_of(&l);
        let p = pool();
        let expect = oracle(&l, &[1.0; 33]);
        let mut rt = WavefrontDoacross::with_config(
            33,
            DoacrossConfig {
                copy_back: false,
                ..DoacrossConfig::default()
            },
        );
        let y0 = vec![1.0; 33];
        let mut y = y0.clone();
        rt.run(&p, &l, &mut y, &schedule).unwrap();
        assert_eq!(y, y0, "y untouched without copy-back");
        for i in 0..32 {
            let e = l.lhs(i);
            assert_eq!(rt.shadow()[e], expect[e], "element {e}");
        }
    }

    #[test]
    fn mismatched_schedule_and_buffer_are_rejected() {
        let l = chain(8);
        let schedule = schedule_of(&chain(9));
        let mut rt = WavefrontDoacross::new(10);
        let mut y = vec![1.0; 9];
        assert!(matches!(
            rt.run(&pool(), &l, &mut y, &schedule),
            Err(DoacrossError::PlanMismatch { .. })
        ));
        let good = schedule_of(&l);
        let mut short = vec![1.0; 3];
        assert!(matches!(
            rt.run(&pool(), &l, &mut short, &good),
            Err(DoacrossError::DataLenMismatch { .. })
        ));

        // Same iteration count, different per-iteration reference counts:
        // must fail typed up front — inside the barrier region this would
        // strand the other workers at the barrier (a hang, not a panic).
        let a: Vec<usize> = (1..=8).collect();
        let termless = IndirectLoop::new(9, a, vec![vec![]; 8], vec![vec![]; 8]).unwrap();
        let mut y = vec![1.0; 9];
        assert!(matches!(
            rt.run(&pool(), &termless, &mut y, &good),
            Err(DoacrossError::ScheduleTermsMismatch {
                iteration: 0,
                schedule_terms: 1,
                loop_terms: 0,
            })
        ));
    }

    #[test]
    fn empty_loop_is_a_noop() {
        let l = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        let schedule = LevelSchedule::from_levels(&[], 0, vec![0], vec![]);
        assert_eq!(schedule.level_count(), 0);
        let mut rt = WavefrontDoacross::new(0);
        let mut y: Vec<f64> = vec![];
        let stats = rt.run(&pool(), &l, &mut y, &schedule).unwrap();
        assert_eq!(stats.deps.total(), 0);
    }

    #[test]
    fn from_parts_validates_structure() {
        let good = schedule_of(&chain(6));
        let rebuilt = LevelSchedule::from_parts(
            good.offsets().to_vec(),
            good.order().to_vec(),
            good.term_offsets().to_vec(),
            good.classes().to_vec(),
        )
        .expect("own parts round-trip");
        assert_eq!(rebuilt, good);

        type Parts = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<u8>);
        let parts = |mutate: &dyn Fn(&mut Parts)| {
            let mut parts: Parts = (
                good.offsets().to_vec(),
                good.order().to_vec(),
                good.term_offsets().to_vec(),
                good.classes().to_vec(),
            );
            mutate(&mut parts);
            let (o, ord, t, c) = parts;
            LevelSchedule::from_parts(o, ord, t, c)
        };
        assert!(parts(&|p| p.0[0] = 1).is_none(), "offsets must start at 0");
        assert!(
            parts(&|p| {
                p.0.pop();
            })
            .is_none(),
            "offsets must end at n"
        );
        assert!(
            parts(&|p| p.1[0] = p.1[1]).is_none(),
            "order must be a permutation"
        );
        assert!(parts(&|p| p.1[0] = 99).is_none(), "order entries in range");
        assert!(
            parts(&|p| p.2[1] = 3).is_none(),
            "term offsets monotone to classes len"
        );
        assert!(
            parts(&|p| {
                p.2.pop();
            })
            .is_none(),
            "term offsets cover all iterations"
        );
        assert!(parts(&|p| p.3[0] = 7).is_none(), "classes must decode");
        // An empty level (repeated offset) is rejected: the census never
        // produces one.
        assert!(parts(&|p| p.0.insert(1, p.0[1])).is_none());
    }

    #[test]
    fn level_chunk_adapts_to_width() {
        assert_eq!(level_chunk(0, 4), 1);
        assert_eq!(level_chunk(31, 4), 1);
        assert_eq!(level_chunk(64, 4), 2);
        assert_eq!(level_chunk(10_000, 4), 64, "capped");
        assert_eq!(level_chunk(100, 0), 12, "zero workers clamped to one");
    }
}
