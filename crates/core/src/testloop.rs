//! The paper's Figure 4 test loop, parameterized exactly as in §3.1.
//!
//! ```fortran
//! S1  do i = 1, N
//!         do j = 1, M
//!             y(a(i)) = y(a(i)) + val(j) * y(b(i) + nbrs(j))
//!         end do
//!     end do
//! ```
//!
//! with the §3.1 initialization `a(i) = 2i`, `b(i) = 2i`, and
//! `nbrs(j) = 2j − L`. The parameter `L` controls the dependence
//! structure:
//!
//! * **odd `L`** — every reference `2i + 2j − L` is odd while every written
//!   element `2i` is even: *no dependencies between outer loop iterations*.
//!   Measured efficiency then isolates the construct's overheads
//!   (pre/postprocessing plus the per-reference dependency checks) — the
//!   ≈33% (`M=1`) and ≈50% (`M=5`) plateaus of Figure 6.
//! * **even `L`** — term `j` of iteration `i` references the element
//!   written by iteration `i + j − L/2`: a *true* dependency at distance
//!   `L/2 − j` when `j < L/2`, an *intra-iteration* reference when
//!   `j == L/2`, and an *antidependency* when `j > L/2`. Increasing `L`
//!   stretches the true-dependency distances, which is why Figure 6's
//!   even-`L` efficiencies "increase monotonically" with `L`.
//!
//! Internally iterations and terms are 0-based; `PAD` shifts the element
//! space so that `2i + 2j − L` can never go negative (the paper's Fortran
//! declaration implicitly allows `y` to start below the written range).

use crate::pattern::{AccessPattern, DoacrossLoop};
use std::ops::Range;

/// Element-space shift making all subscripts non-negative for any `L` up to
/// [`TestLoop::MAX_L`].
const PAD: usize = 16;

/// The Figure 4 loop with the §3.1 parameterization.
#[derive(Debug, Clone)]
pub struct TestLoop {
    n: usize,
    m: usize,
    l: usize,
    /// `val(j)`, `j = 0..m` (0-based).
    val: Vec<f64>,
    data_len: usize,
}

impl TestLoop {
    /// Largest supported `L` (the paper sweeps 1..=14).
    pub const MAX_L: usize = PAD + 4;

    /// Builds the loop for outer trip count `n`, inner trip count `m`
    /// (paper `M`), and dependence parameter `l` (paper `L`).
    ///
    /// # Panics
    /// Panics if `l == 0` or `l > MAX_L`.
    pub fn new(n: usize, m: usize, l: usize) -> Self {
        assert!(
            (1..=Self::MAX_L).contains(&l),
            "L must be in 1..={}",
            Self::MAX_L
        );
        // val(j): fixed, reproducible coefficients; kept small so long
        // dependence chains stay in a numerically benign range.
        let val: Vec<f64> = (0..m).map(|j| 0.25 / (j + 1) as f64).collect();
        // Largest subscript: lhs max is 2N + PAD; term max is
        // 2N + 2M − L + PAD.
        let lhs_max = 2 * n + PAD;
        let term_max = (2 * n + 2 * m + PAD).saturating_sub(l);
        let data_len = lhs_max.max(term_max) + 1;
        Self {
            n,
            m,
            l,
            val,
            data_len,
        }
    }

    /// Outer trip count `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Inner trip count `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Dependence parameter `L`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// A deterministic initial `y` for experiments: `y[e] = 1 + (e mod 10)/10`.
    pub fn initial_y(&self) -> Vec<f64> {
        (0..self.data_len)
            .map(|e| 1.0 + (e % 10) as f64 * 0.1)
            .collect()
    }

    /// The iteration (0-based) that writes `element`, if any — the linear
    /// subscript `a(i) = 2(i+1) + PAD` inverted, as §2.3 prescribes for
    /// this loop.
    pub fn writer_of(&self, element: usize) -> Option<usize> {
        let e = element.checked_sub(PAD + 2)?;
        if e % 2 != 0 {
            return None;
        }
        let i = e / 2;
        (i < self.n).then_some(i)
    }

    /// The §2.3 linear-subscript descriptor for this loop
    /// (`a(i) = 2i + PAD + 2` in 0-based form).
    pub fn linear_subscript(&self) -> crate::linear::LinearSubscript {
        crate::linear::LinearSubscript::new(2, PAD + 2)
    }

    /// Exhaustive classification of every `(i, j)` reference — the ground
    /// truth the runtime's measured [`crate::DepCounts`] are tested
    /// against, and the workload description printed by the benchmark
    /// harness.
    pub fn census(&self) -> DependencyCensus {
        let mut census = DependencyCensus::default();
        for i in 0..self.n {
            for j in 0..self.m {
                let off = self.term_element(i, j);
                match self.writer_of(off) {
                    None => census.unwritten += 1,
                    Some(w) if w < i => {
                        census.true_deps += 1;
                        let d = i - w;
                        census.min_true_distance =
                            Some(census.min_true_distance.map_or(d, |m| m.min(d)));
                        census.max_true_distance =
                            Some(census.max_true_distance.map_or(d, |m| m.max(d)));
                    }
                    Some(w) if w == i => census.intra += 1,
                    Some(_) => census.anti_deps += 1,
                }
            }
        }
        census
    }
}

impl AccessPattern for TestLoop {
    #[inline]
    fn iterations(&self) -> usize {
        self.n
    }

    #[inline]
    fn data_len(&self) -> usize {
        self.data_len
    }

    /// `a(i) = 2i` in the paper's 1-based terms: `2(i+1) + PAD` here.
    #[inline]
    fn lhs(&self, i: usize) -> usize {
        2 * (i + 1) + PAD
    }

    #[inline]
    fn terms(&self, _i: usize) -> usize {
        self.m
    }

    /// `b(i) + nbrs(j) = 2i + 2j − L` in 1-based terms.
    #[inline]
    fn term_element(&self, i: usize, j: usize) -> usize {
        // 2(i+1) + 2(j+1) − L + PAD; L ≤ PAD + 4 keeps this non-negative.
        2 * (i + 1) + 2 * (j + 1) + PAD - self.l
    }

    fn block_window(&self, iter_range: Range<usize>) -> Range<usize> {
        if iter_range.is_empty() {
            return 0..0;
        }
        self.lhs(iter_range.start)..self.lhs(iter_range.end - 1) + 1
    }
}

impl DoacrossLoop for TestLoop {
    /// Figure 5 S2: `ynew(a(i)) = y(a(i))`.
    #[inline]
    fn init(&self, _i: usize, old_lhs: f64) -> f64 {
        old_lhs
    }

    /// `+ val(j) * operand`.
    #[inline]
    fn combine(&self, _i: usize, j: usize, acc: f64, operand: f64) -> f64 {
        acc + self.val[j] * operand
    }
}

/// Ground-truth dependence counts for a [`TestLoop`] parameterization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DependencyCensus {
    /// References to elements written by an earlier iteration.
    pub true_deps: u64,
    /// References to elements written by a later iteration.
    pub anti_deps: u64,
    /// References to the iteration's own output element.
    pub intra: u64,
    /// References to elements no iteration writes.
    pub unwritten: u64,
    /// Smallest true-dependency distance (`i − writer`), if any.
    pub min_true_distance: Option<usize>,
    /// Largest true-dependency distance, if any.
    pub max_true_distance: Option<usize>,
}

impl DependencyCensus {
    /// Whether the outer loop is dependence-free (a doall): the odd-`L`
    /// regime of Figure 6.
    pub fn is_doall(&self) -> bool {
        self.true_deps == 0 && self.anti_deps == 0 && self.intra == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Doacross;
    use crate::seq::run_sequential;
    use doacross_par::ThreadPool;

    #[test]
    fn odd_l_has_no_dependencies() {
        for l in [1usize, 3, 5, 7, 9, 11, 13] {
            for m in [1usize, 5] {
                let t = TestLoop::new(500, m, l);
                let c = t.census();
                assert!(c.is_doall(), "L={l} M={m}: {c:?}");
                assert_eq!(c.unwritten, (500 * m) as u64);
            }
        }
    }

    #[test]
    fn even_l_dependency_structure_matches_formula() {
        // Term j (1-based) of iteration i references the element written by
        // iteration i + j − L/2 (1-based arithmetic).
        let n = 1000usize;
        for l in [2usize, 4, 6, 8, 10, 12, 14] {
            for m in [1usize, 5] {
                let t = TestLoop::new(n, m, l);
                let c = t.census();
                let half = l / 2;
                let mut expect_true = 0u64;
                let mut expect_intra = 0u64;
                let mut expect_anti = 0u64;
                let mut expect_none = 0u64;
                for i1 in 1..=n {
                    // paper's 1-based i
                    for j1 in 1..=m {
                        let w1 = i1 as i64 + j1 as i64 - half as i64;
                        if w1 < 1 || w1 > n as i64 {
                            expect_none += 1;
                        } else if w1 < i1 as i64 {
                            expect_true += 1;
                        } else if w1 == i1 as i64 {
                            expect_intra += 1;
                        } else {
                            expect_anti += 1;
                        }
                    }
                }
                assert_eq!(c.true_deps, expect_true, "L={l} M={m}");
                assert_eq!(c.intra, expect_intra, "L={l} M={m}");
                assert_eq!(c.anti_deps, expect_anti, "L={l} M={m}");
                assert_eq!(c.unwritten, expect_none, "L={l} M={m}");
                if half >= 2 && m >= 1 {
                    // Smallest distance comes from the largest j below L/2.
                    let expect_min = half - m.min(half - 1);
                    assert_eq!(c.min_true_distance, Some(expect_min), "L={l} M={m}");
                }
            }
        }
    }

    #[test]
    fn larger_l_means_longer_distances() {
        // The paper's monotonicity argument: as L increases, the number of
        // outer-loop iterations between dependencies increases.
        let mut prev_min = 0usize;
        for l in [4usize, 6, 8, 10, 12, 14] {
            let t = TestLoop::new(100, 1, l);
            let c = t.census();
            let d = c.min_true_distance.expect("even L >= 4, M=1 has true deps");
            assert!(d > prev_min, "L={l}: {d} should exceed {prev_min}");
            prev_min = d;
        }
    }

    #[test]
    fn l2_m1_is_pure_intra() {
        // L=2, j=1 == L/2: every reference is the iteration's own element.
        let t = TestLoop::new(50, 1, 2);
        let c = t.census();
        assert_eq!(c.intra, 50);
        assert_eq!(c.true_deps + c.anti_deps + c.unwritten, 0);
    }

    #[test]
    fn doacross_matches_sequential_across_parameter_grid() {
        let pool = ThreadPool::new(4);
        for l in 1..=14usize {
            for m in [1usize, 5] {
                let t = TestLoop::new(200, m, l);
                let mut y = t.initial_y();
                let mut oracle = y.clone();
                run_sequential(&t, &mut oracle);
                let mut rt = Doacross::for_loop(&t);
                let stats = rt.run(&pool, &t, &mut y).unwrap();
                assert_eq!(y, oracle, "L={l} M={m}");
                // Measured classification must agree with the census
                // (anti and unwritten both land in `anti_or_unwritten`).
                let c = t.census();
                assert_eq!(stats.deps.true_deps, c.true_deps, "L={l} M={m}");
                assert_eq!(stats.deps.intra, c.intra, "L={l} M={m}");
                assert_eq!(
                    stats.deps.anti_or_unwritten,
                    c.anti_deps + c.unwritten,
                    "L={l} M={m}"
                );
            }
        }
    }

    #[test]
    fn linear_subscript_oracle_agrees_with_writer_of() {
        use crate::oracle::WriterOracle;
        let t = TestLoop::new(300, 5, 6);
        let sub = t.linear_subscript();
        let oracle = crate::oracle::LinearWriter::new(sub.c, sub.d, t.n());
        for e in 0..t.data_len() {
            let expect = t.writer_of(e).map(|w| w as i64).unwrap_or(i64::MAX);
            assert_eq!(oracle.writer(e), expect, "element {e}");
        }
    }

    #[test]
    fn subscripts_stay_in_bounds_across_grid() {
        for l in 1..=TestLoop::MAX_L {
            for m in [0usize, 1, 5, 9] {
                let t = TestLoop::new(64, m, l);
                for i in 0..t.iterations() {
                    assert!(t.lhs(i) < t.data_len());
                    for j in 0..t.terms(i) {
                        assert!(t.term_element(i, j) < t.data_len(), "L={l} M={m}");
                    }
                }
            }
        }
    }

    #[test]
    fn m_zero_is_trivially_parallel() {
        let pool = ThreadPool::new(2);
        let t = TestLoop::new(100, 0, 5);
        let mut y = t.initial_y();
        let oracle = y.clone();
        Doacross::for_loop(&t).run(&pool, &t, &mut y).unwrap();
        assert_eq!(y, oracle, "no terms: y unchanged");
    }

    #[test]
    #[should_panic(expected = "L must be in")]
    fn l_zero_rejected() {
        let _ = TestLoop::new(10, 1, 0);
    }

    #[test]
    fn block_window_covers_lhs_range() {
        let t = TestLoop::new(100, 3, 4);
        let w = t.block_window(10..20);
        for i in 10..20 {
            assert!(w.contains(&t.lhs(i)));
        }
        assert_eq!(w.len(), 2 * 10 - 1, "stride-2 lhs over 10 iterations");
    }
}
