//! The postprocessor (paper Figure 3, right).
//!
//! ```fortran
//! parallel do i = 1, N
//!     iter(a(i))  = MAXINT
//!     ready(a(i)) = NOTDONE
//!     yold(a(i))  = ynew(a(i))
//! end parallel do
//! ```
//!
//! Restores the scratch-array reuse invariant (`iter` all `MAXINT`, `ready`
//! all `NOTDONE`) by touching exactly the elements this loop instance
//! wrote — O(N) work instead of O(data_len) — and copies the freshly
//! computed values back into `y`. Like the inspector, it is a doall:
//! distinct iterations touch distinct elements because `a` is injective.

use crate::flags::{IterMap, ReadyFlags};
use crate::pattern::AccessPattern;
use doacross_par::{parallel_for, Schedule, SharedSlice, ThreadPool};
use std::ops::Range;

/// Runs postprocessing for iterations `iter_range`: for each iteration's
/// `lhs` element, clears the `iter` entry, resets the `ready` flag
/// (both window-relative), and copies `ynew` back into `y`.
///
/// Set `copy_back: false` to keep results in `ynew` only (used by solvers
/// that consume the shadow array directly).
#[allow(clippy::too_many_arguments)]
pub fn run_post<P: AccessPattern + ?Sized>(
    pool: &ThreadPool,
    schedule: Schedule,
    pattern: &P,
    iter_range: Range<usize>,
    window_start: usize,
    map: Option<&IterMap>,
    ready: &ReadyFlags,
    y: SharedSlice<'_, f64>,
    ynew: SharedSlice<'_, f64>,
    copy_back: bool,
) {
    let base = iter_range.start;
    let count = iter_range.end - iter_range.start;
    parallel_for(pool, count, schedule, |k| {
        let i = base + k;
        let elem = pattern.lhs(i);
        let slot = elem - window_start;
        if let Some(map) = map {
            map.clear(slot);
        }
        ready.reset(slot);
        if copy_back {
            // SAFETY: distinct iterations have distinct `lhs` elements
            // (injective `a`, verified by the inspector), so writes to `y`
            // are disjoint; `ynew[slot]` was completed in the executor
            // region, ordered by the pool join.
            unsafe { y.write(elem, ynew.read(slot)) };
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::MAXINT;
    use crate::pattern::IndirectLoop;

    fn loop_with_lhs(a: Vec<usize>, data_len: usize) -> IndirectLoop {
        let n = a.len();
        IndirectLoop::new(data_len, a, vec![vec![]; n], vec![vec![]; n]).unwrap()
    }

    #[test]
    fn restores_invariant_and_copies_back() {
        let pool = ThreadPool::new(3);
        let l = loop_with_lhs(vec![1, 3, 4], 6);
        let map = IterMap::new(6);
        let ready = ReadyFlags::new(6);
        // Simulate a completed executor run.
        for (i, &e) in [1usize, 3, 4].iter().enumerate() {
            map.record(e, i);
            ready.mark_done(e);
        }
        let mut y = vec![0.0; 6];
        let mut ynew = vec![10.0, 11.0, 12.0, 13.0, 14.0, 15.0];
        run_post(
            &pool,
            Schedule::multimax(),
            &l,
            0..3,
            0,
            Some(&map),
            &ready,
            SharedSlice::new(&mut y),
            SharedSlice::new(&mut ynew),
            true,
        );
        assert!(map.all_clear());
        assert!(ready.all_clear());
        assert_eq!(y, vec![0.0, 11.0, 0.0, 13.0, 14.0, 0.0]);
    }

    #[test]
    fn no_copy_back_leaves_y_untouched() {
        let pool = ThreadPool::new(2);
        let l = loop_with_lhs(vec![0, 1], 2);
        let ready = ReadyFlags::new(2);
        ready.mark_done(0);
        ready.mark_done(1);
        let mut y = vec![7.0, 8.0];
        let mut ynew = vec![1.0, 2.0];
        run_post(
            &pool,
            Schedule::multimax(),
            &l,
            0..2,
            0,
            None,
            &ready,
            SharedSlice::new(&mut y),
            SharedSlice::new(&mut ynew),
            false,
        );
        assert_eq!(y, vec![7.0, 8.0]);
        assert!(ready.all_clear());
    }

    #[test]
    fn windowed_post_uses_relative_slots() {
        let pool = ThreadPool::new(2);
        let l = loop_with_lhs(vec![10, 11], 16);
        let map = IterMap::new(2);
        let ready = ReadyFlags::new(2);
        map.record(0, 0);
        map.record(1, 1);
        ready.mark_done(0);
        ready.mark_done(1);
        let mut y = vec![0.0; 16];
        let mut ynew = vec![5.0, 6.0];
        run_post(
            &pool,
            Schedule::multimax(),
            &l,
            0..2,
            10,
            Some(&map),
            &ready,
            SharedSlice::new(&mut y),
            SharedSlice::new(&mut ynew),
            true,
        );
        assert_eq!(y[10], 5.0);
        assert_eq!(y[11], 6.0);
        assert!(map.all_clear());
        assert_eq!(map.writer(0), MAXINT);
    }

    #[test]
    fn partial_range_resets_only_its_elements() {
        let pool = ThreadPool::new(2);
        let l = loop_with_lhs(vec![0, 1, 2], 3);
        let map = IterMap::new(3);
        let ready = ReadyFlags::new(3);
        for e in 0..3 {
            map.record(e, e);
            ready.mark_done(e);
        }
        let mut y = vec![0.0; 3];
        let mut ynew = vec![1.0, 2.0, 3.0];
        run_post(
            &pool,
            Schedule::multimax(),
            &l,
            0..2,
            0,
            Some(&map),
            &ready,
            SharedSlice::new(&mut y),
            SharedSlice::new(&mut ynew),
            true,
        );
        assert_eq!(map.writer(2), 2, "iteration 2's entry untouched");
        assert!(ready.is_done(2));
        assert_eq!(y, vec![1.0, 2.0, 0.0]);
    }
}
