//! Run instrumentation: phase timings and dependency/wait counters.
//!
//! §3.1 of the paper attributes the preprocessed doacross's overhead to
//! (1) runtime pre- and postprocessing and (2) execution-time dependency
//! checks (plus any busy waiting those checks trigger). [`RunStats`] exposes
//! each of those contributions so the benchmark harness can reproduce the
//! paper's overhead analysis rather than just end-to-end times.

use doacross_par::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the executor classified the right-hand-side references it resolved —
/// one count per (iteration, term) pair, matching Figure 5's three-way
/// branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DepCounts {
    /// `check < 0`: true dependency on an earlier iteration (S3–S5).
    pub true_deps: u64,
    /// `check > 0`: antidependency or never-written element — the old value
    /// was used (S6–S7).
    pub anti_or_unwritten: u64,
    /// `check == 0`: intra-iteration reference served from the accumulator
    /// (S8).
    pub intra: u64,
}

impl DepCounts {
    /// Total references resolved.
    pub fn total(&self) -> u64 {
        self.true_deps + self.anti_or_unwritten + self.intra
    }
}

/// Where a run's preprocessing came from — how the executor learned the
/// writer of every element.
///
/// The paper's amortization argument (§2.1: inspect once, execute many
/// times) is only real if callers can *observe* that a given run skipped
/// the inspector. This enum is that observation: plan-driven runs report
/// whether their preprocessing products were built for this call or served
/// from a cache, and a planned run's `inspector` duration is exactly zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PlanProvenance {
    /// Preprocessing (if any) ran inside this call — the classic
    /// inspector-per-run construct.
    #[default]
    Inline,
    /// A prebuilt execution plan was supplied and its preprocessing was
    /// performed for this call (a cache miss or an explicit plan).
    PlanCold,
    /// The execution plan was served from a plan cache: no planning work
    /// (fingerprint census, dependence analysis, variant selection,
    /// inspection capture) happened in this call. Whatever preprocessing is
    /// *inherent to the selected variant* still runs — notably the
    /// strip-mined variant re-inspects per block, because its windowed
    /// scratch arrays cannot outlive a block; check `inspector` for the
    /// per-run bill. The flat planned variants report `inspector == 0`.
    PlanCached,
}

impl PlanProvenance {
    /// How much per-call preprocessing work the provenance implies:
    /// `Inline` (2) ran the inspector in this call, `PlanCold` (1) built a
    /// plan for this call, `PlanCached` (0) reused one. Aggregation keeps
    /// the *coldest* constituent (see [`RunStats::absorb`]) so a merged
    /// stat never claims more amortization than its worst block had.
    pub fn coldness(self) -> u8 {
        match self {
            PlanProvenance::Inline => 2,
            PlanProvenance::PlanCold => 1,
            PlanProvenance::PlanCached => 0,
        }
    }
}

impl std::fmt::Display for PlanProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanProvenance::Inline => write!(f, "inline"),
            PlanProvenance::PlanCold => write!(f, "plan:cold"),
            PlanProvenance::PlanCached => write!(f, "plan:cached"),
        }
    }
}

/// Everything measured about one preprocessed-doacross run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Outer-loop iterations executed.
    pub iterations: usize,
    /// Pool workers ("processors") used.
    pub workers: usize,
    /// Blocks executed (1 for the flat construct; ≥ 1 when strip-mined).
    pub blocks: usize,
    /// Inspector (preprocessing) wall time.
    pub inspector: Duration,
    /// Executor (doacross proper) wall time.
    pub executor: Duration,
    /// Postprocessing wall time.
    pub post: Duration,
    /// End-to-end wall time (≥ sum of phases; includes phase glue).
    pub total: Duration,
    /// Classification of every resolved right-hand-side reference.
    pub deps: DepCounts,
    /// True-dependency resolutions that actually stalled (the writer had
    /// not finished at first poll).
    pub stalls: u64,
    /// Total failed `ready` polls across all stalls — the busy-wait bill.
    pub wait_polls: u64,
    /// Barrier crossings the run performed: `levels − 1` for a wavefront
    /// run (its synchronization bill, which `wait_polls == 0` by
    /// construction would otherwise hide), 0 for the flag-based variants.
    pub barrier_crossings: u64,
    /// Heap allocations the dispatching thread made during the solve —
    /// the zero-allocation-audit counter. Always 0 unless the process
    /// installed [`crate::alloc::CountingAllocator`] as its global
    /// allocator (bench/test profiles); a warm solve on the flat planned
    /// path reports exactly 0 even then.
    pub allocations: u64,
    /// Where this run's preprocessing came from (inline inspection vs. a
    /// prebuilt or cached execution plan).
    pub provenance: PlanProvenance,
    /// How many solve attempts the engine made to deliver this result:
    /// 1 for a clean solve, 2 when a faulted parallel solve fell back to
    /// the sequential variant, higher when saturation retries were spent.
    /// 0 when the run was produced outside the engine's fault-contained
    /// path (direct executor use).
    pub attempts: u32,
}

impl RunStats {
    /// Fraction of total time spent outside the executor: the paper's
    /// "pre/postprocessing overhead". Returns 0 for an empty run.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total.as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        (self.inspector + self.post).as_secs_f64() / total
    }

    /// Merges another run's statistics into this one (used by the blocked
    /// variant to aggregate per-block runs).
    pub fn absorb(&mut self, other: &RunStats) {
        self.iterations += other.iterations;
        self.workers = self.workers.max(other.workers);
        self.blocks += other.blocks;
        self.inspector += other.inspector;
        self.executor += other.executor;
        self.post += other.post;
        self.total += other.total;
        self.deps.true_deps += other.deps.true_deps;
        self.deps.anti_or_unwritten += other.deps.anti_or_unwritten;
        self.deps.intra += other.deps.intra;
        self.stalls += other.stalls;
        self.wait_polls += other.wait_polls;
        self.barrier_crossings += other.barrier_crossings;
        self.allocations += other.allocations;
        // Coldest wins: the aggregate claims only as much plan
        // amortization as its coldest constituent actually had. Absorbing
        // a PlanCold block into a PlanCached aggregate must not keep
        // reporting plan:cached.
        if other.provenance.coldness() > self.provenance.coldness() {
            self.provenance = other.provenance;
        }
        self.attempts = self.attempts.max(other.attempts);
    }
}

impl std::fmt::Display for RunStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} iterations on {} workers in {:?} (inspector {:?}, executor {:?}, post {:?}); \
             refs: {} true / {} old / {} intra; {} stalls, {} wait polls, \
             {} barrier crossings; preprocessing {}",
            self.iterations,
            self.workers,
            self.total,
            self.inspector,
            self.executor,
            self.post,
            self.deps.true_deps,
            self.deps.anti_or_unwritten,
            self.deps.intra,
            self.stalls,
            self.wait_polls,
            self.barrier_crossings,
            self.provenance,
        )
    }
}

/// Counters a worker accumulates in registers during the executor phase and
/// flushes once at region end.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalCounters {
    /// True-dependency resolutions (Figure 5 S3–S5).
    pub true_deps: u64,
    /// Old-value resolutions (S6–S7).
    pub anti_or_unwritten: u64,
    /// Intra-iteration resolutions (S8).
    pub intra: u64,
    /// True-dependency resolutions that found the writer unfinished.
    pub stalls: u64,
    /// Failed `ready` polls across all stalls.
    pub wait_polls: u64,
}

/// Per-worker atomic cells (cache-padded against false sharing) that
/// aggregate [`LocalCounters`] across a parallel region.
#[derive(Debug, Default)]
struct SinkCell {
    true_deps: AtomicU64,
    anti_or_unwritten: AtomicU64,
    intra: AtomicU64,
    stalls: AtomicU64,
    wait_polls: AtomicU64,
}

/// Collects executor-side counters from all workers of a region.
#[derive(Debug)]
pub struct StatsSink {
    cells: Vec<CachePadded<SinkCell>>,
}

impl StatsSink {
    pub fn new(workers: usize) -> Self {
        let mut cells = Vec::with_capacity(workers);
        cells.resize_with(workers, || CachePadded::new(SinkCell::default()));
        Self { cells }
    }

    /// Grows the sink to cover `workers` cells (never shrinks). Runtimes
    /// keep one sink as scratch and call this before each region, so warm
    /// solves allocate nothing — part of the zero-allocation steady state.
    /// Cells beyond the active worker count stay zero and drain as zeros.
    pub fn ensure_workers(&mut self, workers: usize) {
        if workers > self.cells.len() {
            self.cells
                .resize_with(workers, || CachePadded::new(SinkCell::default()));
        }
    }

    /// Number of per-worker cells currently allocated.
    pub fn workers(&self) -> usize {
        self.cells.len()
    }

    /// Zeroes every cell, restoring the reuse invariant after a
    /// [`StatsSink::drain_into`]. Relaxed stores suffice: reset happens
    /// between regions, with no workers depositing.
    pub fn reset(&self) {
        for c in &self.cells {
            c.true_deps.store(0, Ordering::Relaxed);
            c.anti_or_unwritten.store(0, Ordering::Relaxed);
            c.intra.store(0, Ordering::Relaxed);
            c.stalls.store(0, Ordering::Relaxed);
            c.wait_polls.store(0, Ordering::Relaxed);
        }
    }

    /// Adds a worker's locally-accumulated counters. Relaxed ordering is
    /// sufficient: the pool's region join orders these stores before the
    /// dispatcher's reads in [`StatsSink::drain_into`].
    pub fn deposit(&self, worker: usize, local: LocalCounters) {
        let c = &self.cells[worker];
        c.true_deps.fetch_add(local.true_deps, Ordering::Relaxed);
        c.anti_or_unwritten
            .fetch_add(local.anti_or_unwritten, Ordering::Relaxed);
        c.intra.fetch_add(local.intra, Ordering::Relaxed);
        c.stalls.fetch_add(local.stalls, Ordering::Relaxed);
        c.wait_polls.fetch_add(local.wait_polls, Ordering::Relaxed);
    }

    /// Sums all workers' counters into `stats`.
    pub fn drain_into(&self, stats: &mut RunStats) {
        for c in &self.cells {
            stats.deps.true_deps += c.true_deps.load(Ordering::Relaxed);
            stats.deps.anti_or_unwritten += c.anti_or_unwritten.load(Ordering::Relaxed);
            stats.deps.intra += c.intra.load(Ordering::Relaxed);
            stats.stalls += c.stalls.load(Ordering::Relaxed);
            stats.wait_polls += c.wait_polls.load(Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dep_counts_total() {
        let d = DepCounts {
            true_deps: 3,
            anti_or_unwritten: 4,
            intra: 5,
        };
        assert_eq!(d.total(), 12);
    }

    #[test]
    fn sink_aggregates_across_workers() {
        let sink = StatsSink::new(3);
        for w in 0..3 {
            sink.deposit(
                w,
                LocalCounters {
                    true_deps: 1,
                    anti_or_unwritten: 2,
                    intra: 3,
                    stalls: 4,
                    wait_polls: 5,
                },
            );
        }
        let mut stats = RunStats::default();
        sink.drain_into(&mut stats);
        assert_eq!(stats.deps.true_deps, 3);
        assert_eq!(stats.deps.anti_or_unwritten, 6);
        assert_eq!(stats.deps.intra, 9);
        assert_eq!(stats.stalls, 12);
        assert_eq!(stats.wait_polls, 15);
    }

    #[test]
    fn sink_grows_resets_and_reuses() {
        let mut sink = StatsSink::new(0);
        sink.ensure_workers(2);
        assert_eq!(sink.workers(), 2);
        sink.ensure_workers(1);
        assert_eq!(sink.workers(), 2, "never shrinks");
        sink.deposit(
            1,
            LocalCounters {
                true_deps: 3,
                stalls: 1,
                ..Default::default()
            },
        );
        let mut stats = RunStats::default();
        sink.drain_into(&mut stats);
        assert_eq!(stats.deps.true_deps, 3);
        sink.reset();
        let mut again = RunStats::default();
        sink.drain_into(&mut again);
        assert_eq!(again.deps.true_deps, 0, "reset restores the invariant");
        assert_eq!(again.stalls, 0);
    }

    #[test]
    fn absorb_accumulates_allocations() {
        let mut a = RunStats {
            allocations: 2,
            ..Default::default()
        };
        a.absorb(&RunStats {
            allocations: 5,
            ..Default::default()
        });
        assert_eq!(a.allocations, 7);
    }

    #[test]
    fn absorb_accumulates_blocks() {
        let mut a = RunStats {
            iterations: 10,
            workers: 4,
            blocks: 1,
            ..Default::default()
        };
        let b = RunStats {
            iterations: 5,
            workers: 2,
            blocks: 1,
            stalls: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.iterations, 15);
        assert_eq!(a.workers, 4);
        assert_eq!(a.blocks, 2);
        assert_eq!(a.stalls, 7);
    }

    #[test]
    fn absorb_keeps_the_coldest_provenance() {
        // PlanCold absorbed into PlanCached must flip the aggregate.
        let mut a = RunStats {
            provenance: PlanProvenance::PlanCached,
            ..Default::default()
        };
        a.absorb(&RunStats {
            provenance: PlanProvenance::PlanCold,
            ..Default::default()
        });
        assert_eq!(a.provenance, PlanProvenance::PlanCold);
        // Absorbing a warmer block must NOT warm the aggregate back up.
        a.absorb(&RunStats {
            provenance: PlanProvenance::PlanCached,
            ..Default::default()
        });
        assert_eq!(a.provenance, PlanProvenance::PlanCold);
        // Inline is the coldest of all.
        a.absorb(&RunStats {
            provenance: PlanProvenance::Inline,
            ..Default::default()
        });
        assert_eq!(a.provenance, PlanProvenance::Inline);
    }

    #[test]
    fn absorb_accumulates_barrier_crossings() {
        let mut a = RunStats {
            barrier_crossings: 3,
            ..Default::default()
        };
        a.absorb(&RunStats {
            barrier_crossings: 4,
            ..Default::default()
        });
        assert_eq!(a.barrier_crossings, 7);
    }

    #[test]
    fn display_mentions_barrier_crossings() {
        let s = RunStats {
            barrier_crossings: 9,
            ..Default::default()
        };
        assert!(s.to_string().contains("9 barrier crossings"));
    }

    #[test]
    fn overhead_fraction_is_bounded() {
        let mut s = RunStats::default();
        assert_eq!(s.overhead_fraction(), 0.0);
        s.inspector = Duration::from_millis(10);
        s.post = Duration::from_millis(10);
        s.executor = Duration::from_millis(80);
        s.total = Duration::from_millis(100);
        let f = s.overhead_fraction();
        assert!((f - 0.2).abs() < 1e-9, "{f}");
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = RunStats {
            iterations: 42,
            workers: 8,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("42 iterations"));
        assert!(text.contains("8 workers"));
    }
}
