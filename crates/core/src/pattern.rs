//! Loop descriptions: what the symbolic transformation extracts from source.
//!
//! The paper derives inspector and executor procedures from a source loop by
//! symbolic transformation. In library form, the information those
//! transformations extract is captured by two traits:
//!
//! * [`AccessPattern`] — the *shape*: iteration count, data-space size, the
//!   left-hand-side subscript `a(i)`, and the right-hand-side element of
//!   every term `b(i) + nbrs(j)`. This is all the inspector, the
//!   postprocessor, and the doconsider reordering need.
//! * [`DoacrossLoop`] — the shape plus the *arithmetic*: the seed value of
//!   an iteration's output element (Figure 5 statement S2) and the fold
//!   applied per term (S5/S7/S8). This is what the executor runs.
//!
//! [`IndirectLoop`] is the general concrete form — explicit index arrays,
//! exactly the "loop with execution time determined dependencies" of
//! Figure 1 — and `doacross_core::testloop::TestLoop` is the paper's
//! parameterized Figure 4 instance.

use crate::error::DoacrossError;
use std::ops::Range;

/// The dependence-relevant shape of a loop nest: subscript functions only.
///
/// Implementations must be cheap to query; the executor calls `lhs` /
/// `terms` / `term_element` once per (iteration, term) in its hot loop.
pub trait AccessPattern: Sync {
    /// Number of outer-loop iterations (`N`).
    fn iterations(&self) -> usize;

    /// Size of the data space: all subscripts must lie in `0..data_len()`.
    fn data_len(&self) -> usize;

    /// The element written by iteration `i` — the paper's `a(i)`.
    fn lhs(&self, i: usize) -> usize;

    /// Number of right-hand-side terms of iteration `i` — the paper's `M`
    /// (may vary per iteration, as in the sparse triangular solve).
    fn terms(&self, i: usize) -> usize;

    /// The element read by term `j` of iteration `i` — the paper's
    /// `b(i) + nbrs(j)`.
    fn term_element(&self, i: usize, j: usize) -> usize;

    /// For the strip-mined variant (§2.3): an element window guaranteed to
    /// contain every left-hand-side subscript of iterations
    /// `iter_range` (reads may fall outside). Tighter windows shrink the
    /// blocked runtime's scratch arrays; the default is the whole data
    /// space.
    fn block_window(&self, iter_range: Range<usize>) -> Range<usize> {
        let _ = iter_range;
        0..self.data_len()
    }
}

/// A full doacross loop body: shape plus per-iteration arithmetic.
///
/// The executor computes, for iteration `i`,
///
/// ```text
/// acc = init(i, y[lhs(i)])                       // Figure 5, S2
/// for j in 0..terms(i):
///     acc = combine(i, j, acc, value_of(term_element(i, j)))
/// ynew[lhs(i)] = acc; ready[lhs(i)] = DONE
/// ```
///
/// where `value_of` performs the three-way old/new/accumulator resolution.
/// Keeping `acc` in a register instead of re-writing `ynew(a(i))` per term
/// (as Figure 5 literally does) is observationally equivalent: the only
/// reader of the partial value is iteration `i` itself (the `check == 0`
/// branch), which the executor serves from the accumulator; every other
/// iteration reads `ynew(a(i))` only after observing `ready == DONE`.
pub trait DoacrossLoop: AccessPattern {
    /// Seed of the output element, given the *old* value `y[lhs(i)]`.
    /// Figure 5's S2 is `|_, old| old`; a triangular solve uses
    /// `|i, _| rhs[i]`.
    fn init(&self, i: usize, old_lhs: f64) -> f64;

    /// Folds term `j`'s resolved operand into the accumulator (Figure 5's
    /// `ynew(a(i)) = ynew(a(i)) + val(j) * operand`).
    fn combine(&self, i: usize, j: usize, acc: f64, operand: f64) -> f64;

    /// Final transform applied to the accumulator before it is published
    /// (default: identity). A non-unit-diagonal triangular solve divides by
    /// the diagonal here; intra-iteration references (`check == 0`) see the
    /// *unfinished* accumulator, matching source-loop semantics where the
    /// transform is outside the inner loop.
    #[inline]
    fn finish(&self, _i: usize, acc: f64) -> f64 {
        acc
    }
}

/// The general runtime-dependency loop of Figure 1, with explicit index
/// arrays:
///
/// ```text
/// do i = 0, n-1
///     y[a[i]] = y[a[i]] + Σ_j coeff[i][j] · y[rhs[i][j]]
/// end do
/// ```
///
/// `a`, `rhs` and `coeff` are data, not code — exactly the situation where
/// compile-time dependence analysis fails and the preprocessed doacross
/// applies.
#[derive(Debug, Clone)]
pub struct IndirectLoop {
    data_len: usize,
    a: Vec<usize>,
    rhs: Vec<Vec<usize>>,
    coeff: Vec<Vec<f64>>,
}

impl IndirectLoop {
    /// Builds the loop, validating that the index arrays are consistent and
    /// in bounds (`a` injectivity — the no-output-dependency requirement —
    /// is checked at run time by the inspector, as in the paper).
    pub fn new(
        data_len: usize,
        a: Vec<usize>,
        rhs: Vec<Vec<usize>>,
        coeff: Vec<Vec<f64>>,
    ) -> Result<Self, DoacrossError> {
        if rhs.len() != a.len() || coeff.len() != a.len() {
            return Err(DoacrossError::DataLenMismatch {
                got: rhs.len().min(coeff.len()),
                expected: a.len(),
            });
        }
        for (i, (&lhs, (r, c))) in a.iter().zip(rhs.iter().zip(coeff.iter())).enumerate() {
            if lhs >= data_len {
                return Err(DoacrossError::SubscriptOutOfBounds {
                    iteration: i,
                    element: lhs,
                    data_len,
                });
            }
            if r.len() != c.len() {
                return Err(DoacrossError::DataLenMismatch {
                    got: c.len(),
                    expected: r.len(),
                });
            }
            if let Some(&bad) = r.iter().find(|&&e| e >= data_len) {
                return Err(DoacrossError::SubscriptOutOfBounds {
                    iteration: i,
                    element: bad,
                    data_len,
                });
            }
        }
        Ok(Self {
            data_len,
            a,
            rhs,
            coeff,
        })
    }

    /// The left-hand-side index array `a`.
    pub fn lhs_array(&self) -> &[usize] {
        &self.a
    }
}

impl AccessPattern for IndirectLoop {
    #[inline]
    fn iterations(&self) -> usize {
        self.a.len()
    }

    #[inline]
    fn data_len(&self) -> usize {
        self.data_len
    }

    #[inline]
    fn lhs(&self, i: usize) -> usize {
        self.a[i]
    }

    #[inline]
    fn terms(&self, i: usize) -> usize {
        self.rhs[i].len()
    }

    #[inline]
    fn term_element(&self, i: usize, j: usize) -> usize {
        self.rhs[i][j]
    }

    fn block_window(&self, iter_range: Range<usize>) -> Range<usize> {
        if iter_range.is_empty() {
            return 0..0;
        }
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for i in iter_range {
            let e = self.a[i];
            lo = lo.min(e);
            hi = hi.max(e);
        }
        lo..hi + 1
    }
}

impl DoacrossLoop for IndirectLoop {
    #[inline]
    fn init(&self, _i: usize, old_lhs: f64) -> f64 {
        old_lhs
    }

    #[inline]
    fn combine(&self, i: usize, j: usize, acc: f64, operand: f64) -> f64 {
        acc + self.coeff[i][j] * operand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> IndirectLoop {
        IndirectLoop::new(
            6,
            vec![1, 3, 5],
            vec![vec![0, 2], vec![1], vec![3, 4]],
            vec![vec![1.0, 2.0], vec![3.0], vec![4.0, 5.0]],
        )
        .unwrap()
    }

    #[test]
    fn shape_queries() {
        let l = simple();
        assert_eq!(l.iterations(), 3);
        assert_eq!(l.data_len(), 6);
        assert_eq!(l.lhs(1), 3);
        assert_eq!(l.terms(0), 2);
        assert_eq!(l.terms(1), 1);
        assert_eq!(l.term_element(2, 1), 4);
        assert_eq!(l.lhs_array(), &[1, 3, 5]);
    }

    #[test]
    fn arithmetic_is_axpy_like() {
        let l = simple();
        assert_eq!(l.init(0, 10.0), 10.0);
        assert_eq!(l.combine(0, 1, 10.0, 3.0), 16.0); // 10 + 2*3
    }

    #[test]
    fn rejects_out_of_bounds_lhs() {
        let err = IndirectLoop::new(2, vec![2], vec![vec![]], vec![vec![]]).unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::SubscriptOutOfBounds { element: 2, .. }
        ));
    }

    #[test]
    fn rejects_out_of_bounds_rhs() {
        let err = IndirectLoop::new(3, vec![0], vec![vec![3]], vec![vec![1.0]]).unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::SubscriptOutOfBounds { element: 3, .. }
        ));
    }

    #[test]
    fn rejects_mismatched_arrays() {
        assert!(IndirectLoop::new(4, vec![0, 1], vec![vec![]], vec![vec![]]).is_err());
        assert!(
            IndirectLoop::new(4, vec![0], vec![vec![1, 2]], vec![vec![1.0]]).is_err(),
            "coeff/rhs length mismatch per iteration"
        );
    }

    #[test]
    fn default_block_window_is_whole_data_space() {
        // Use a thin wrapper to exercise the trait default.
        struct Thin;
        impl AccessPattern for Thin {
            fn iterations(&self) -> usize {
                4
            }
            fn data_len(&self) -> usize {
                10
            }
            fn lhs(&self, i: usize) -> usize {
                i
            }
            fn terms(&self, _: usize) -> usize {
                0
            }
            fn term_element(&self, _: usize, _: usize) -> usize {
                unreachable!()
            }
        }
        assert_eq!(Thin.block_window(1..3), 0..10);
    }

    #[test]
    fn indirect_block_window_is_tight() {
        let l = simple(); // lhs = [1, 3, 5]
        assert_eq!(l.block_window(0..3), 1..6);
        assert_eq!(l.block_window(0..1), 1..2);
        assert_eq!(l.block_window(1..3), 3..6);
        assert_eq!(l.block_window(2..2), 0..0);
    }

    #[test]
    fn empty_loop_is_valid() {
        let l = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        assert_eq!(l.iterations(), 0);
        assert_eq!(l.data_len(), 0);
    }
}
