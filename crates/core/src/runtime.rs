//! [`Doacross`]: the user-facing preprocessed-doacross runtime.
//!
//! Owns the reusable scratch state — the `iter` writer map, the `ready`
//! flags, and the shadow array `ynew` — and runs the three phases
//! (inspector → executor → postprocessor) over any [`DoacrossLoop`].
//! Reuse across many loop instances is the point of the paper's
//! postprocessing phase: "In order to limit the cost of initialization and
//! the use of memory associated with this implementation of the doacross
//! construct, we reuse the same arrays iter and ready for multiple
//! preprocessed doacross loops" (§2.1).

use crate::error::DoacrossError;
use crate::executor::run_executor_profiled;
use crate::flags::{IterMap, ReadyFlags};
use crate::inspector::{reset_scratch, run_inspector};
use crate::oracle::InspectedWriter;
use crate::pattern::{AccessPattern, DoacrossLoop};
use crate::post::run_post;
use crate::prepared::PreparedInspection;
use crate::stats::{PlanProvenance, RunStats, StatsSink};
use doacross_obs::profile::ProfArena;
use doacross_par::{Schedule, SharedSlice, ThreadPool, WaitStrategy};
use std::time::Instant;

/// Tunables of a doacross run.
#[derive(Debug, Clone, Copy)]
pub struct DoacrossConfig {
    /// Iteration-to-worker assignment for all three phases. Default:
    /// [`Schedule::multimax()`] (one-iteration self-scheduling).
    pub schedule: Schedule,
    /// Busy-wait policy for true-dependency stalls. Default: spin-then-
    /// yield, which is safe under oversubscription.
    pub wait: WaitStrategy,
    /// When set (default), the inspector also bounds-checks every
    /// right-hand-side subscript and reports
    /// [`DoacrossError::SubscriptOutOfBounds`] instead of relying on the
    /// executor's asserts. Disable to measure the paper-faithful inspector
    /// cost (one store per iteration).
    pub validate_terms: bool,
    /// When set (default), postprocessing copies `ynew(a(i))` back into
    /// `y(a(i))` (Figure 3). The paper notes the copy is only needed "in
    /// many cases": consumers that read the result from the shadow array
    /// directly (e.g. a solver returning a fresh vector) can disable it
    /// and fetch values via [`Doacross::shadow`]. Ignored by the blocked
    /// variant, where per-block copy-back carries cross-block
    /// dependencies.
    pub copy_back: bool,
}

impl Default for DoacrossConfig {
    fn default() -> Self {
        Self {
            schedule: Schedule::multimax(),
            wait: WaitStrategy::default(),
            validate_terms: true,
            copy_back: true,
        }
    }
}

/// Reusable preprocessed-doacross runtime (see module docs).
///
/// ```
/// use doacross_core::{Doacross, IndirectLoop};
/// use doacross_par::ThreadPool;
///
/// // Two loop instances sharing one runtime's scratch arrays.
/// let l1 = IndirectLoop::new(4, vec![1, 2], vec![vec![0], vec![1]],
///                            vec![vec![1.0], vec![1.0]]).unwrap();
/// let l2 = IndirectLoop::new(4, vec![3], vec![vec![2]], vec![vec![2.0]]).unwrap();
/// let pool = ThreadPool::new(2);
/// let mut y = vec![1.0, 0.0, 0.0, 0.0];
/// let mut rt = Doacross::for_loop(&l1);
/// rt.run(&pool, &l1, &mut y).unwrap(); // y[1] += y[0]; y[2] += y[1]
/// rt.run(&pool, &l2, &mut y).unwrap(); // y[3] += 2*y[2]
/// assert_eq!(y, vec![1.0, 1.0, 1.0, 2.0]);
/// ```
#[derive(Debug)]
pub struct Doacross {
    config: DoacrossConfig,
    data_len: usize,
    iter: IterMap,
    ready: ReadyFlags,
    ynew: Vec<f64>,
    /// Per-worker counter cells, reused across runs (grow-don't-shrink +
    /// reset after drain) so a warm solve allocates nothing.
    sink: StatsSink,
}

impl Doacross {
    /// Creates a runtime whose scratch arrays cover a data space of
    /// `data_len` elements.
    pub fn new(data_len: usize) -> Self {
        Self::with_config(data_len, DoacrossConfig::default())
    }

    /// Creates a runtime sized for `pattern`'s data space.
    pub fn for_loop<P: AccessPattern + ?Sized>(pattern: &P) -> Self {
        Self::new(pattern.data_len())
    }

    /// Creates a runtime with explicit configuration.
    pub fn with_config(data_len: usize, config: DoacrossConfig) -> Self {
        Self {
            config,
            data_len,
            iter: IterMap::new(data_len),
            ready: ReadyFlags::new(data_len),
            ynew: vec![0.0; data_len],
            sink: StatsSink::new(0),
        }
    }

    /// Current configuration.
    pub fn config(&self) -> &DoacrossConfig {
        &self.config
    }

    /// Mutable configuration (e.g. to switch schedules between runs).
    pub fn config_mut(&mut self) -> &mut DoacrossConfig {
        &mut self.config
    }

    /// Size of the data space the scratch arrays cover.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Grows the scratch arrays to cover `len` elements (no-op if already
    /// large enough). Newly added entries satisfy the reuse invariant.
    pub fn ensure_data_len(&mut self, len: usize) {
        if len > self.data_len {
            self.data_len = len;
            self.iter = IterMap::new(len);
            self.ready = ReadyFlags::new(len);
            self.ynew = vec![0.0; len];
        }
    }

    /// Whether the scratch arrays satisfy the between-runs reuse invariant
    /// (`iter` all `MAXINT`, `ready` all `NOTDONE`). O(data_len); intended
    /// for tests.
    pub fn scratch_is_clean(&self) -> bool {
        self.iter.all_clear() && self.ready.all_clear()
    }

    /// The shadow array `ynew`. After a run with `copy_back = false`, the
    /// loop's results live here at the written elements (`a(i)` positions);
    /// all other entries are stale.
    pub fn shadow(&self) -> &[f64] {
        &self.ynew
    }

    /// Runs the full preprocessed doacross (inspector → executor →
    /// postprocessor) for `loop_`, updating `y` in place exactly as the
    /// sequential source loop would.
    ///
    /// On success the scratch arrays are restored to the reuse invariant;
    /// on error they are reset wholesale before returning, so the runtime
    /// stays usable either way.
    pub fn run<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
    ) -> Result<RunStats, DoacrossError> {
        self.run_with_order(pool, loop_, y, None)
    }

    /// Like [`Doacross::run`], but claims iterations in the supplied order
    /// — the doconsider "rearranged iterations" mechanism of §3.2. The
    /// order must be a permutation of `0..iterations` that is topologically
    /// consistent with the loop's true dependencies; both properties are
    /// verified (the topological check only in full-validation mode, since
    /// it costs a pass over all references).
    ///
    /// Semantics are identical to the unordered run — the paper's point is
    /// that reordering "leaves the inter-iteration dependencies unchanged
    /// but reduces the effects of these dependencies on performance".
    pub fn run_with_order<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        order: Option<&[usize]>,
    ) -> Result<RunStats, DoacrossError> {
        let data_len = loop_.data_len();
        if y.len() != data_len {
            return Err(DoacrossError::DataLenMismatch {
                got: y.len(),
                expected: data_len,
            });
        }
        self.ensure_data_len(data_len);
        let n = loop_.iterations();
        let schedule = self.config.schedule;
        debug_assert!(self.scratch_is_clean(), "reuse invariant violated on entry");

        let mut stats = RunStats {
            iterations: n,
            workers: pool.threads(),
            blocks: 1,
            ..Default::default()
        };
        let t_start = Instant::now();

        // Phase 1: inspector (Figure 3, left).
        let t0 = Instant::now();
        if let Err(e) = run_inspector(
            pool,
            schedule,
            loop_,
            0..n,
            0..data_len,
            &self.iter,
            self.config.validate_terms,
        ) {
            reset_scratch(pool, schedule, &self.iter, &self.ready, self.data_len);
            return Err(e);
        }
        stats.inspector = t0.elapsed();

        // Validate the claim order, if one was supplied. The inspector has
        // already filled `iter`, so the topological check is a lookup per
        // reference.
        if let Some(ord) = order {
            if let Err(e) = self.validate_order(pool, loop_, ord, &self.iter) {
                reset_scratch(pool, schedule, &self.iter, &self.ready, self.data_len);
                return Err(e);
            }
        }

        // Phases 2 + 3: executor (Figure 5), then postprocessor (Figure 3,
        // right) — the post pass clears this run's `iter` entries to
        // restore the reuse invariant.
        self.sink.ensure_workers(pool.threads());
        let oracle = InspectedWriter::new(&self.iter, 0..data_len);
        exec_and_post(
            pool,
            &self.config,
            loop_,
            y,
            &mut self.ynew,
            &self.ready,
            &oracle,
            order,
            Some(&self.iter),
            &self.sink,
            &mut stats,
            None,
        );
        stats.total = t_start.elapsed();
        debug_assert!(self.scratch_is_clean(), "reuse invariant violated on exit");
        Ok(stats)
    }

    /// Runs the executor and postprocessor phases against a prebuilt
    /// inspection, skipping the inspector entirely — the paper's
    /// inspect-once / execute-many amortization made concrete.
    ///
    /// `prepared` must have been built for this loop's access pattern
    /// (shape mismatches are rejected with [`DoacrossError::PlanMismatch`];
    /// *content* equality is the caller's contract — the `doacross-plan`
    /// crate enforces it with structural fingerprints). The prepared map is
    /// only read: postprocessing resets this runtime's `ready` flags but
    /// leaves the artifact untouched, so it serves arbitrarily many runs.
    ///
    /// The returned stats report `inspector == Duration::ZERO` and
    /// [`PlanProvenance::PlanCold`]; plan caches overwrite the provenance
    /// with [`PlanProvenance::PlanCached`] on hits.
    pub fn run_planned<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        prepared: &PreparedInspection,
        order: Option<&[usize]>,
    ) -> Result<RunStats, DoacrossError> {
        self.run_planned_profiled(pool, loop_, y, prepared, order, None)
    }

    /// Like [`Doacross::run_planned`], but deposits per-worker profiling
    /// spans (work intervals and true-dependency flag waits) into `prof`
    /// when one is supplied. `None` keeps the exact unprofiled code paths —
    /// one branch per would-be span site, no clock reads.
    #[allow(clippy::too_many_arguments)]
    pub fn run_planned_profiled<L: DoacrossLoop + ?Sized>(
        &mut self,
        pool: &ThreadPool,
        loop_: &L,
        y: &mut [f64],
        prepared: &PreparedInspection,
        order: Option<&[usize]>,
        prof: Option<&ProfArena>,
    ) -> Result<RunStats, DoacrossError> {
        let data_len = loop_.data_len();
        if y.len() != data_len {
            return Err(DoacrossError::DataLenMismatch {
                got: y.len(),
                expected: data_len,
            });
        }
        if !prepared.matches_shape(loop_) {
            return Err(DoacrossError::PlanMismatch {
                plan_iterations: prepared.iterations(),
                plan_data_len: prepared.data_len(),
                loop_iterations: loop_.iterations(),
                loop_data_len: data_len,
            });
        }
        self.ensure_data_len(data_len);
        let n = loop_.iterations();
        debug_assert!(self.scratch_is_clean(), "reuse invariant violated on entry");

        let mut stats = RunStats {
            iterations: n,
            workers: pool.threads(),
            blocks: 1,
            provenance: PlanProvenance::PlanCold,
            ..Default::default()
        };
        let t_start = Instant::now();

        // No inspector phase: the prepared map already holds every writer.
        // The runtime's own scratch map stays all-MAXINT throughout, so no
        // reset is needed on the validation error path either.
        if let Some(ord) = order {
            self.validate_order(pool, loop_, ord, prepared.map())?;
        }

        // Executor + postprocessor; `post_map: None` — the prepared
        // artifact must survive this run, only the `ready` flags reset.
        self.sink.ensure_workers(pool.threads());
        let oracle = prepared.oracle();
        exec_and_post(
            pool,
            &self.config,
            loop_,
            y,
            &mut self.ynew,
            &self.ready,
            &oracle,
            order,
            None,
            &self.sink,
            &mut stats,
            prof,
        );
        stats.total = t_start.elapsed();
        debug_assert!(self.scratch_is_clean(), "reuse invariant violated on exit");
        Ok(stats)
    }

    /// Checks that `order` is a permutation of `0..n` and — in
    /// full-validation mode — that no true dependency's writer is claimed
    /// after its reader. Requires `iter` (the runtime's own scratch map or
    /// a prebuilt inspection's) to hold the loop's writer entries.
    fn validate_order<L: DoacrossLoop + ?Sized>(
        &self,
        pool: &ThreadPool,
        loop_: &L,
        order: &[usize],
        iter: &IterMap,
    ) -> Result<(), DoacrossError> {
        let n = loop_.iterations();
        if order.len() != n {
            return Err(DoacrossError::OrderLengthMismatch {
                got: order.len(),
                expected: n,
            });
        }
        let mut position = vec![usize::MAX; n];
        for (k, &i) in order.iter().enumerate() {
            if i >= n || position[i] != usize::MAX {
                return Err(DoacrossError::OrderNotPermutation { entry: i });
            }
            position[i] = k;
        }
        if self.config.validate_terms {
            let violation = crate::inspector::ErrorSlot::new();
            let position = &position[..];
            doacross_par::parallel_for(pool, n, self.config.schedule, |i| {
                for j in 0..loop_.terms(i) {
                    let w = iter.writer(loop_.term_element(i, j));
                    if w != crate::flags::MAXINT && (w as usize) < i {
                        let w = w as usize;
                        if position[w] > position[i] {
                            violation.try_set(i, w);
                        }
                    }
                }
            });
            if let Some((reader, writer)) = violation.get() {
                return Err(DoacrossError::OrderNotTopological { reader, writer });
            }
        }
        Ok(())
    }
}

/// The executor + postprocessor phases shared by [`Doacross::run_with_order`]
/// (oracle over the runtime's own scratch map, which the post pass clears)
/// and [`Doacross::run_planned`] (oracle over a persistent prepared map,
/// `post_map: None`). Fills `stats.executor`, `stats.post`, and the
/// executor-side counters. `sink` is the caller's reusable per-worker
/// counter scratch, already sized for the pool (drained into `stats` and
/// reset before returning) — no allocation happens here.
#[allow(clippy::too_many_arguments)]
fn exec_and_post<L: DoacrossLoop + ?Sized>(
    pool: &ThreadPool,
    config: &DoacrossConfig,
    loop_: &L,
    y: &mut [f64],
    ynew: &mut [f64],
    ready: &ReadyFlags,
    oracle: &InspectedWriter<'_>,
    order: Option<&[usize]>,
    post_map: Option<&IterMap>,
    sink: &StatsSink,
    stats: &mut RunStats,
    prof: Option<&ProfArena>,
) {
    let n = loop_.iterations();

    // Executor (Figure 5).
    let t1 = Instant::now();
    {
        let y_view = SharedSlice::new(y);
        let ynew_view = SharedSlice::new(&mut ynew[..]);
        run_executor_profiled(
            pool,
            config.schedule,
            config.wait,
            loop_,
            0..n,
            order,
            oracle,
            y_view,
            ynew_view,
            ready,
            0,
            sink,
            prof,
        );
    }
    stats.executor = t1.elapsed();
    sink.drain_into(stats);
    sink.reset();

    // Postprocessor (Figure 3, right), with copy-back unless the caller
    // reads results from the shadow array.
    let t2 = Instant::now();
    {
        let y_view = SharedSlice::new(y);
        let ynew_view = SharedSlice::new(&mut ynew[..]);
        run_post(
            pool,
            config.schedule,
            loop_,
            0..n,
            0,
            post_map,
            ready,
            y_view,
            ynew_view,
            config.copy_back,
        );
    }
    stats.post = t2.elapsed();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{AccessPattern, IndirectLoop};
    use crate::seq::run_sequential;

    fn pool() -> ThreadPool {
        ThreadPool::new(4)
    }

    fn chain_loop(n: usize) -> IndirectLoop {
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        IndirectLoop::new(n + 1, a, rhs, vec![vec![1.0]; n]).unwrap()
    }

    #[test]
    fn end_to_end_matches_sequential() {
        let l = chain_loop(200);
        let mut y = vec![1.0; 201];
        let mut oracle = y.clone();
        let mut rt = Doacross::for_loop(&l);
        let stats = rt.run(&pool(), &l, &mut y).unwrap();
        run_sequential(&l, &mut oracle);
        assert_eq!(y, oracle);
        assert_eq!(stats.iterations, 200);
        assert_eq!(stats.blocks, 1);
        assert!(rt.scratch_is_clean());
    }

    #[test]
    fn runtime_is_reusable_across_loops() {
        let l = chain_loop(64);
        let mut rt = Doacross::for_loop(&l);
        let p = pool();
        let mut y_expect = vec![1.0; 65];
        let mut y = vec![1.0; 65];
        for _ in 0..5 {
            rt.run(&p, &l, &mut y).unwrap();
            run_sequential(&l, &mut y_expect);
            assert_eq!(y, y_expect);
            assert!(rt.scratch_is_clean());
        }
    }

    #[test]
    fn output_dependency_is_reported_and_scratch_restored() {
        let l =
            IndirectLoop::new(4, vec![2, 2], vec![vec![], vec![]], vec![vec![], vec![]]).unwrap();
        let mut rt = Doacross::for_loop(&l);
        let mut y = vec![0.0; 4];
        let err = rt.run(&pool(), &l, &mut y).unwrap_err();
        assert_eq!(err, DoacrossError::OutputDependency { element: 2 });
        assert!(rt.scratch_is_clean(), "error path must restore invariant");
        // Runtime remains usable.
        let ok = chain_loop(3);
        let mut y2 = vec![1.0; 4];
        rt.run(&pool(), &ok, &mut y2).unwrap();
    }

    #[test]
    fn data_len_mismatch_is_rejected() {
        let l = chain_loop(4);
        let mut rt = Doacross::for_loop(&l);
        let mut y = vec![0.0; 3];
        let err = rt.run(&pool(), &l, &mut y).unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::DataLenMismatch {
                got: 3,
                expected: 5
            }
        ));
    }

    #[test]
    fn scratch_grows_on_demand() {
        let small = chain_loop(2);
        let big = chain_loop(50);
        let mut rt = Doacross::for_loop(&small);
        assert_eq!(rt.data_len(), 3);
        let p = pool();
        let mut y = vec![1.0; 51];
        rt.run(&p, &big, &mut y).unwrap();
        assert_eq!(rt.data_len(), 51);
        let mut oracle = vec![1.0; 51];
        run_sequential(&big, &mut oracle);
        assert_eq!(y, oracle);
    }

    #[test]
    fn empty_loop_succeeds() {
        let l = IndirectLoop::new(0, vec![], vec![], vec![]).unwrap();
        let mut rt = Doacross::for_loop(&l);
        let mut y: Vec<f64> = vec![];
        let stats = rt.run(&pool(), &l, &mut y).unwrap();
        assert_eq!(stats.iterations, 0);
        assert_eq!(stats.deps.total(), 0);
    }

    #[test]
    fn config_is_adjustable() {
        let l = chain_loop(32);
        let mut rt = Doacross::for_loop(&l);
        rt.config_mut().schedule = Schedule::StaticCyclic;
        rt.config_mut().wait = WaitStrategy::Backoff { max_spin_batch: 8 };
        rt.config_mut().validate_terms = false;
        let mut y = vec![1.0; 33];
        let mut oracle = y.clone();
        rt.run(&pool(), &l, &mut y).unwrap();
        run_sequential(&l, &mut oracle);
        assert_eq!(y, oracle);
    }

    #[test]
    fn copy_back_disabled_leaves_y_and_fills_shadow() {
        let l = chain_loop(32);
        let p = pool();
        let mut expect = vec![1.0; 33];
        run_sequential(&l, &mut expect);

        let mut rt = Doacross::for_loop(&l);
        rt.config_mut().copy_back = false;
        let y0 = vec![1.0; 33];
        let mut y = y0.clone();
        rt.run(&p, &l, &mut y).unwrap();
        assert_eq!(y, y0, "y untouched without copy-back");
        // Written elements (1..=32) hold the results in the shadow array.
        for i in 0..32 {
            let e = l.lhs(i);
            assert_eq!(rt.shadow()[e], expect[e], "element {e}");
        }
        assert!(rt.scratch_is_clean(), "flags/iter still reset");
    }

    #[test]
    fn run_with_order_matches_unordered_semantics() {
        let l = chain_loop(100);
        let p = pool();
        let mut expect = vec![1.0; 101];
        run_sequential(&l, &mut expect);

        // Identity order and the natural order itself.
        let identity: Vec<usize> = (0..100).collect();
        let mut y = vec![1.0; 101];
        let mut rt = Doacross::for_loop(&l);
        rt.run_with_order(&p, &l, &mut y, Some(&identity)).unwrap();
        assert_eq!(y, expect);
    }

    #[test]
    fn reordering_independent_iterations_is_legal() {
        // Loop with no cross-iteration deps: any permutation is valid.
        let n = 64;
        let a: Vec<usize> = (0..n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let l = IndirectLoop::new(n, a, rhs, vec![vec![1.0]; n]).unwrap();
        let reversed: Vec<usize> = (0..n).rev().collect();
        let mut y: Vec<f64> = (0..n).map(|e| e as f64).collect();
        let mut expect = y.clone();
        run_sequential(&l, &mut expect);
        let mut rt = Doacross::for_loop(&l);
        rt.run_with_order(&pool(), &l, &mut y, Some(&reversed))
            .unwrap();
        assert_eq!(y, expect);
    }

    #[test]
    fn non_topological_order_is_rejected() {
        // Chain: iteration i depends on i-1; reversing the order puts every
        // writer after its reader.
        let l = chain_loop(8);
        let reversed: Vec<usize> = (0..8).rev().collect();
        let mut y = vec![1.0; 9];
        let mut rt = Doacross::for_loop(&l);
        let err = rt
            .run_with_order(&pool(), &l, &mut y, Some(&reversed))
            .unwrap_err();
        assert!(matches!(err, DoacrossError::OrderNotTopological { .. }));
        assert!(rt.scratch_is_clean(), "error path restores invariant");
    }

    #[test]
    fn bad_orders_are_rejected() {
        let l = chain_loop(4);
        let mut rt = Doacross::for_loop(&l);
        let mut y = vec![1.0; 5];
        let short = vec![0usize, 1];
        assert!(matches!(
            rt.run_with_order(&pool(), &l, &mut y, Some(&short)),
            Err(DoacrossError::OrderLengthMismatch {
                got: 2,
                expected: 4
            })
        ));
        let dup = vec![0usize, 1, 1, 3];
        assert!(matches!(
            rt.run_with_order(&pool(), &l, &mut y, Some(&dup)),
            Err(DoacrossError::OrderNotPermutation { entry: 1 })
        ));
        let oor = vec![0usize, 1, 2, 9];
        assert!(matches!(
            rt.run_with_order(&pool(), &l, &mut y, Some(&oor)),
            Err(DoacrossError::OrderNotPermutation { entry: 9 })
        ));
        assert!(rt.scratch_is_clean());
        // Still usable afterwards.
        rt.run(&pool(), &l, &mut y).unwrap();
    }

    #[test]
    fn run_planned_matches_sequential_and_skips_inspector() {
        let l = chain_loop(150);
        let p = pool();
        let mut expect = vec![1.0; 151];
        run_sequential(&l, &mut expect);

        let prepared = PreparedInspection::inspect(&p, Schedule::multimax(), &l, true).unwrap();
        let mut rt = Doacross::for_loop(&l);
        // Many runs against one inspection artifact.
        for round in 0..3 {
            let mut y = vec![1.0; 151];
            let stats = rt.run_planned(&p, &l, &mut y, &prepared, None).unwrap();
            assert_eq!(y, expect, "round {round}");
            assert_eq!(stats.inspector, std::time::Duration::ZERO);
            assert_eq!(stats.provenance, PlanProvenance::PlanCold);
            assert!(rt.scratch_is_clean(), "round {round}");
        }
        // The artifact itself is untouched.
        assert_eq!(prepared.writer(1), 0);
    }

    #[test]
    fn run_planned_with_order_matches_unordered() {
        let l = chain_loop(64);
        let p = pool();
        let mut expect = vec![1.0; 65];
        run_sequential(&l, &mut expect);
        let prepared = PreparedInspection::inspect(&p, Schedule::multimax(), &l, true).unwrap();
        let identity: Vec<usize> = (0..64).collect();
        let mut y = vec![1.0; 65];
        let mut rt = Doacross::for_loop(&l);
        rt.run_planned(&p, &l, &mut y, &prepared, Some(&identity))
            .unwrap();
        assert_eq!(y, expect);
        // A non-topological order is still rejected, using the prepared map.
        let reversed: Vec<usize> = (0..64).rev().collect();
        let err = rt
            .run_planned(&p, &l, &mut y, &prepared, Some(&reversed))
            .unwrap_err();
        assert!(matches!(err, DoacrossError::OrderNotTopological { .. }));
        assert!(rt.scratch_is_clean());
    }

    #[test]
    fn run_planned_rejects_mismatched_plan() {
        let small = chain_loop(4);
        let big = chain_loop(8);
        let p = pool();
        let prepared = PreparedInspection::inspect(&p, Schedule::multimax(), &small, true).unwrap();
        let mut rt = Doacross::for_loop(&big);
        let mut y = vec![1.0; 9];
        let err = rt
            .run_planned(&p, &big, &mut y, &prepared, None)
            .unwrap_err();
        assert!(matches!(
            err,
            DoacrossError::PlanMismatch {
                plan_iterations: 4,
                loop_iterations: 8,
                ..
            }
        ));
    }

    #[test]
    fn inline_runs_report_inline_provenance() {
        let l = chain_loop(16);
        let mut rt = Doacross::for_loop(&l);
        let mut y = vec![1.0; 17];
        let stats = rt.run(&pool(), &l, &mut y).unwrap();
        assert_eq!(stats.provenance, PlanProvenance::Inline);
    }

    #[test]
    fn stats_phases_are_populated() {
        let l = chain_loop(500);
        let mut rt = Doacross::for_loop(&l);
        let mut y = vec![1.0; 501];
        let stats = rt.run(&pool(), &l, &mut y).unwrap();
        assert!(stats.total >= stats.executor);
        // Iteration 0 reads the unwritten element 0; the rest are true deps.
        assert_eq!(stats.deps.true_deps, 499);
        assert_eq!(stats.workers, 4);
    }
}
