//! Error type for preprocessed-doacross runs.

/// Reasons a doacross run can be rejected.
///
/// The paper's construct is only defined for loops without output
/// dependencies ("no two elements of array a have the same value", §2.1) and
/// with in-bounds subscripts; the runtime verifies both at execution time
/// rather than silently computing garbage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DoacrossError {
    /// Two iterations write the same element: `a` is not injective, so the
    /// loop has an output dependency the construct cannot honor.
    OutputDependency {
        /// The element written twice.
        element: usize,
    },
    /// A left-hand-side or right-hand-side subscript fell outside the data
    /// space declared by [`crate::AccessPattern::data_len`].
    SubscriptOutOfBounds {
        /// The offending iteration.
        iteration: usize,
        /// The out-of-range element index.
        element: usize,
        /// The declared data-space size.
        data_len: usize,
    },
    /// The `y` buffer handed to the runtime does not match the loop's
    /// declared data space.
    DataLenMismatch {
        /// `y.len()` as provided.
        got: usize,
        /// Required length (`AccessPattern::data_len`).
        expected: usize,
    },
    /// A blocked run was configured with a zero block size.
    EmptyBlock,
    /// A rearranged-iterations run was given an order whose length does not
    /// match the loop's iteration count.
    OrderLengthMismatch {
        /// `order.len()` as provided.
        got: usize,
        /// The loop's iteration count.
        expected: usize,
    },
    /// A rearranged-iterations run was given an order that is not a
    /// permutation (some iteration is missing or duplicated).
    OrderNotPermutation {
        /// A duplicated or out-of-range entry.
        entry: usize,
    },
    /// A rearranged-iterations run was given an order that violates a true
    /// dependency: the writer would be claimed after its reader, risking
    /// livelock on a small machine.
    OrderNotTopological {
        /// The reading iteration.
        reader: usize,
        /// The writing iteration that is ordered after it.
        writer: usize,
    },
    /// A linear-subscript run (`a(i) = c·i + d`, §2.3) was requested but
    /// the loop's actual left-hand-side subscript disagrees.
    SubscriptNotLinear {
        /// The iteration where the mismatch was observed.
        iteration: usize,
        /// `c·i + d` as claimed.
        expected: usize,
        /// `lhs(i)` as the loop reports it.
        got: usize,
    },
    /// A prebuilt inspection (execution plan) was applied to a loop whose
    /// shape it does not match — the plan was built for a different
    /// iteration count or data space.
    PlanMismatch {
        /// Iterations the plan was built for.
        plan_iterations: usize,
        /// Data-space size the plan was built for.
        plan_data_len: usize,
        /// The loop's actual iteration count.
        loop_iterations: usize,
        /// The loop's actual data-space size.
        loop_data_len: usize,
    },
    /// A wavefront level schedule was applied to a loop whose
    /// per-iteration reference counts it does not match — the schedule's
    /// operand classes were captured for a different reference structure.
    ScheduleTermsMismatch {
        /// First iteration whose reference count disagrees.
        iteration: usize,
        /// References the schedule classified for that iteration.
        schedule_terms: usize,
        /// References the loop actually has there.
        loop_terms: usize,
    },
    /// A block's writes escape the element window the pattern declared for
    /// it, so windowed scratch arrays cannot represent the block.
    WindowViolation {
        /// The iteration whose write escapes.
        iteration: usize,
        /// Its target element.
        element: usize,
        /// The window declared for the block.
        window_start: usize,
        /// One past the window's last element.
        window_end: usize,
    },
}

impl std::fmt::Display for DoacrossError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DoacrossError::OutputDependency { element } => write!(
                f,
                "output dependency: element {element} is written by more than one iteration \
                 (the preprocessed doacross requires an injective left-hand-side subscript)"
            ),
            DoacrossError::SubscriptOutOfBounds {
                iteration,
                element,
                data_len,
            } => write!(
                f,
                "iteration {iteration} references element {element}, outside the data space \
                 of {data_len} elements"
            ),
            DoacrossError::DataLenMismatch { got, expected } => write!(
                f,
                "y buffer has {got} elements but the loop's data space is {expected}"
            ),
            DoacrossError::EmptyBlock => write!(f, "blocked doacross requires block size >= 1"),
            DoacrossError::OrderLengthMismatch { got, expected } => write!(
                f,
                "iteration order has {got} entries but the loop has {expected} iterations"
            ),
            DoacrossError::OrderNotPermutation { entry } => write!(
                f,
                "iteration order is not a permutation: entry {entry} is missing, duplicated, \
                 or out of range"
            ),
            DoacrossError::OrderNotTopological { reader, writer } => write!(
                f,
                "iteration order violates a true dependency: iteration {reader} reads a value \
                 written by iteration {writer}, but {writer} is claimed later in the order"
            ),
            DoacrossError::SubscriptNotLinear {
                iteration,
                expected,
                got,
            } => write!(
                f,
                "left-hand-side subscript is not the declared linear function: iteration \
                 {iteration} writes element {got}, but c*i + d = {expected}"
            ),
            DoacrossError::PlanMismatch {
                plan_iterations,
                plan_data_len,
                loop_iterations,
                loop_data_len,
            } => write!(
                f,
                "execution plan was built for {plan_iterations} iterations over \
                 {plan_data_len} elements, but the loop has {loop_iterations} iterations \
                 over {loop_data_len} elements"
            ),
            DoacrossError::ScheduleTermsMismatch {
                iteration,
                schedule_terms,
                loop_terms,
            } => write!(
                f,
                "level schedule classifies {schedule_terms} references for iteration \
                 {iteration}, but the loop has {loop_terms} there"
            ),
            DoacrossError::WindowViolation {
                iteration,
                element,
                window_start,
                window_end,
            } => write!(
                f,
                "iteration {iteration} writes element {element}, outside its block's declared \
                 window [{window_start}, {window_end})"
            ),
        }
    }
}

impl std::error::Error for DoacrossError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(DoacrossError, &str)> = vec![
            (DoacrossError::OutputDependency { element: 7 }, "element 7"),
            (
                DoacrossError::SubscriptOutOfBounds {
                    iteration: 3,
                    element: 99,
                    data_len: 10,
                },
                "element 99",
            ),
            (
                DoacrossError::DataLenMismatch {
                    got: 5,
                    expected: 6,
                },
                "5 elements",
            ),
            (DoacrossError::EmptyBlock, "block size"),
            (
                DoacrossError::WindowViolation {
                    iteration: 1,
                    element: 2,
                    window_start: 4,
                    window_end: 8,
                },
                "[4, 8)",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(DoacrossError::EmptyBlock);
    }
}
