//! The shared scratch arrays of the construct: `ready` flags and the
//! `iter` writer map.
//!
//! Both arrays are sized to the *data space* (the arrays being indexed, not
//! the iteration space) and are deliberately reusable: the paper's
//! postprocessing phase exists precisely so that one allocation + one
//! initialization serves every preprocessed doacross instance in a program
//! ("we reuse the same arrays iter and ready for multiple preprocessed
//! doacross loops", §2.1).

use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// The paper's `MAXINT`: the `iter` value for elements no iteration writes.
///
/// Any comparison `iter(off) - i` with an unwritten element must land in the
/// "use old `y`" branch, which `i64::MAX` guarantees for every valid
/// iteration number.
pub const MAXINT: i64 = i64::MAX;

/// `ready(off) == NOTDONE`: the element's writer has not completed.
const NOTDONE: u32 = 0;
/// `ready(off) == DONE`: the element's writer has completed and its value
/// is visible in `ynew`.
const DONE: u32 = 1;

/// The paper's `ready` array: one DONE/NOTDONE flag per data element, with
/// a release/acquire hand-off protocol.
///
/// The writer iteration stores its result to `ynew(a(i))` with plain writes
/// and then calls [`ReadyFlags::mark_done`] (release). A waiting reader
/// polls [`ReadyFlags::is_done`] (acquire); once it observes `DONE`, the
/// writer's `ynew` stores are ordered before the reader's loads — this pair
/// is the entire cross-iteration memory-ordering story of the executor.
#[derive(Debug)]
pub struct ReadyFlags {
    flags: Vec<AtomicU32>,
}

impl ReadyFlags {
    /// Creates `len` flags, all `NOTDONE` (paper: `ready` initialized before
    /// first use).
    pub fn new(len: usize) -> Self {
        let mut flags = Vec::with_capacity(len);
        flags.resize_with(len, || AtomicU32::new(NOTDONE));
        Self { flags }
    }

    /// Number of flags (size of the data space).
    #[inline]
    pub fn len(&self) -> usize {
        self.flags.len()
    }

    /// Whether the flag set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.flags.is_empty()
    }

    /// Marks `element`'s value as published (Figure 2 statement S3 /
    /// Figure 5 `ready(a(i)) = DONE`). Release ordering: everything the
    /// calling thread wrote before this call is visible to any thread that
    /// subsequently observes `DONE`.
    #[inline]
    pub fn mark_done(&self, element: usize) {
        self.flags[element].store(DONE, Ordering::Release);
    }

    /// Polls `element`'s flag (Figure 2 statement S1 / Figure 5 S4).
    /// Acquire ordering pairs with [`ReadyFlags::mark_done`].
    #[inline]
    pub fn is_done(&self, element: usize) -> bool {
        self.flags[element].load(Ordering::Acquire) == DONE
    }

    /// Resets `element` to `NOTDONE` (postprocessing, Figure 3 right).
    #[inline]
    pub fn reset(&self, element: usize) {
        self.flags[element].store(NOTDONE, Ordering::Relaxed);
    }

    /// True when every flag is `NOTDONE` — the reuse invariant that must
    /// hold between doacross instances. O(n); intended for tests and debug
    /// assertions.
    pub fn all_clear(&self) -> bool {
        self.flags
            .iter()
            .all(|f| f.load(Ordering::Relaxed) == NOTDONE)
    }
}

/// The paper's `iter` array: for each data element, the iteration number
/// that writes it, or [`MAXINT`] if no iteration does.
///
/// Filled by the inspector inside one parallel region and read by the
/// executor in a later region; the pool's dispatch join orders the two, so
/// relaxed atomics suffice (the atomicity is only needed for the
/// output-dependency *detection* swap in [`IterMap::record`]).
#[derive(Debug)]
pub struct IterMap {
    writers: Vec<AtomicI64>,
}

impl IterMap {
    /// Creates a map of `len` elements, all [`MAXINT`].
    pub fn new(len: usize) -> Self {
        let mut writers = Vec::with_capacity(len);
        writers.resize_with(len, || AtomicI64::new(MAXINT));
        Self { writers }
    }

    /// Number of elements (size of the data space).
    #[inline]
    pub fn len(&self) -> usize {
        self.writers.len()
    }

    /// Whether the map is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.writers.is_empty()
    }

    /// Records that iteration `iteration` writes `element` (inspector,
    /// Figure 3 left: `iter(a(i)) = i`).
    ///
    /// Returns the previous writer so the inspector can detect output
    /// dependencies: anything other than [`MAXINT`] means two iterations
    /// write the same element.
    #[inline]
    pub fn record(&self, element: usize, iteration: usize) -> i64 {
        self.writers[element].swap(iteration as i64, Ordering::Relaxed)
    }

    /// The iteration that writes `element`, or [`MAXINT`] (executor's
    /// `iter(offset)` load).
    #[inline]
    pub fn writer(&self, element: usize) -> i64 {
        self.writers[element].load(Ordering::Relaxed)
    }

    /// Resets `element` to [`MAXINT`] (postprocessing, Figure 3 right:
    /// `iter(a(i)) = MAXINT`).
    #[inline]
    pub fn clear(&self, element: usize) {
        self.writers[element].store(MAXINT, Ordering::Relaxed);
    }

    /// True when every entry is [`MAXINT`] — the reuse invariant between
    /// doacross instances. O(n); for tests and debug assertions.
    pub fn all_clear(&self) -> bool {
        self.writers
            .iter()
            .all(|w| w.load(Ordering::Relaxed) == MAXINT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_flags_start_clear() {
        let r = ReadyFlags::new(16);
        assert_eq!(r.len(), 16);
        assert!(!r.is_empty());
        assert!(r.all_clear());
        assert!((0..16).all(|e| !r.is_done(e)));
    }

    #[test]
    fn ready_mark_and_reset_cycle() {
        let r = ReadyFlags::new(4);
        r.mark_done(2);
        assert!(r.is_done(2));
        assert!(!r.all_clear());
        r.reset(2);
        assert!(!r.is_done(2));
        assert!(r.all_clear());
    }

    #[test]
    fn iter_map_starts_at_maxint() {
        let m = IterMap::new(8);
        assert_eq!(m.len(), 8);
        assert!(m.all_clear());
        assert!((0..8).all(|e| m.writer(e) == MAXINT));
    }

    #[test]
    fn iter_record_returns_previous_writer() {
        let m = IterMap::new(4);
        assert_eq!(m.record(1, 10), MAXINT);
        assert_eq!(m.record(1, 11), 10, "second write reveals the collision");
        assert_eq!(m.writer(1), 11);
        m.clear(1);
        assert_eq!(m.writer(1), MAXINT);
        assert!(m.all_clear());
    }

    #[test]
    fn maxint_always_lands_in_old_value_branch() {
        // check = iter(off) - i must be > 0 for every feasible i when the
        // element is unwritten.
        for i in [0usize, 1, 1_000_000, usize::MAX >> 2] {
            assert!(MAXINT > i as i64);
        }
    }

    #[test]
    fn ready_release_acquire_publishes_data() {
        // Writer publishes a plain value guarded by mark_done; reader spins
        // on is_done. This is the executor's S4/S5 pattern in isolation.
        use std::sync::atomic::{AtomicU64, Ordering as O};
        let r = ReadyFlags::new(1);
        let payload = AtomicU64::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                payload.store(7, O::Relaxed);
                r.mark_done(0);
            });
            s.spawn(|| {
                while !r.is_done(0) {
                    std::hint::spin_loop();
                }
                assert_eq!(payload.load(O::Relaxed), 7);
            });
        });
    }

    #[test]
    fn empty_structures() {
        let r = ReadyFlags::new(0);
        let m = IterMap::new(0);
        assert!(r.is_empty() && m.is_empty());
        assert!(r.all_clear() && m.all_clear());
    }
}
