//! Sequential reference executor — the semantics oracle.
//!
//! Runs a [`DoacrossLoop`] exactly as the original source loop of Figure 1 /
//! Figure 4 would: iterations in order, every read seeing every prior write.
//! All parallel executors in this workspace are tested for bit-exact
//! equality against this function (the arithmetic per iteration is
//! identical — same order of combines — so floating-point results must
//! match exactly, not just approximately).
//!
//! This is also the paper's `T_seq` measurement kernel: "the time required
//! to solve a problem using an optimized sequential version" (§3).

use crate::pattern::DoacrossLoop;

/// Executes `loop_` sequentially, updating `y` in place.
///
/// # Panics
/// Panics if `y.len() != loop_.data_len()` or a subscript is out of bounds
/// (the parallel runtimes report these as `DoacrossError`s; the oracle is
/// kept branch-light on purpose).
pub fn run_sequential<L: DoacrossLoop + ?Sized>(loop_: &L, y: &mut [f64]) {
    assert_eq!(
        y.len(),
        loop_.data_len(),
        "y buffer must match the loop's data space"
    );
    let n = loop_.iterations();
    for i in 0..n {
        let lhs = loop_.lhs(i);
        let mut acc = loop_.init(i, y[lhs]);
        for j in 0..loop_.terms(i) {
            let off = loop_.term_element(i, j);
            // In the source loop the iteration's own partial result is
            // visible through y[lhs]; mirror that with the accumulator.
            let operand = if off == lhs { acc } else { y[off] };
            acc = loop_.combine(i, j, acc, operand);
        }
        y[lhs] = loop_.finish(i, acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::IndirectLoop;

    #[test]
    fn chain_of_true_dependencies() {
        // y[i+1] = y[i+1] + 1.0 * y[i]: prefix-sum-like chain.
        let n = 5;
        let a: Vec<usize> = (1..=n).collect();
        let rhs: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let coeff = vec![vec![1.0]; n];
        let l = IndirectLoop::new(n + 1, a, rhs, coeff).unwrap();
        let mut y = vec![1.0; n + 1];
        run_sequential(&l, &mut y);
        // y[k] = y[k] + y[k-1] resolves to k + 1 with all-ones input.
        for (k, v) in y.iter().enumerate() {
            assert_eq!(*v, (k + 1) as f64, "y[{k}]");
        }
    }

    #[test]
    fn antidependency_reads_old_value() {
        // Iteration 0 reads y[1] (written by iteration 1): must see the
        // ORIGINAL y[1] in sequential order.
        let l = IndirectLoop::new(
            2,
            vec![0, 1],
            vec![vec![1], vec![0]],
            vec![vec![1.0], vec![1.0]],
        )
        .unwrap();
        let mut y = vec![10.0, 100.0];
        run_sequential(&l, &mut y);
        // i=0: y[0] = 10 + 100 = 110; i=1: y[1] = 100 + 110 = 210.
        assert_eq!(y, vec![110.0, 210.0]);
    }

    #[test]
    fn intra_iteration_reference_sees_partial_sum() {
        // y[0] = y[0] + y[0] + y[0]: the second term must see the partial
        // accumulation (source semantics: y(a(i)) is updated per term).
        let l = IndirectLoop::new(1, vec![0], vec![vec![0, 0]], vec![vec![1.0, 1.0]]).unwrap();
        let mut y = vec![3.0];
        run_sequential(&l, &mut y);
        // acc = 3; term 0: acc = 3 + 3 = 6; term 1: acc = 6 + 6 = 12.
        assert_eq!(y, vec![12.0]);
    }

    #[test]
    fn empty_loop_leaves_y_untouched() {
        let l = IndirectLoop::new(3, vec![], vec![], vec![]).unwrap();
        let mut y = vec![1.0, 2.0, 3.0];
        run_sequential(&l, &mut y);
        assert_eq!(y, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn finish_hook_applies_after_terms() {
        use crate::pattern::{AccessPattern, DoacrossLoop};
        // y[i] = (rhs - y[i-1]) / 2 — a scaled chain exercising `finish`.
        struct Scaled;
        impl AccessPattern for Scaled {
            fn iterations(&self) -> usize {
                4
            }
            fn data_len(&self) -> usize {
                4
            }
            fn lhs(&self, i: usize) -> usize {
                i
            }
            fn terms(&self, i: usize) -> usize {
                usize::from(i > 0)
            }
            fn term_element(&self, i: usize, _j: usize) -> usize {
                i - 1
            }
        }
        impl DoacrossLoop for Scaled {
            fn init(&self, _i: usize, _old: f64) -> f64 {
                8.0
            }
            fn combine(&self, _i: usize, _j: usize, acc: f64, v: f64) -> f64 {
                acc - v
            }
            fn finish(&self, _i: usize, acc: f64) -> f64 {
                acc / 2.0
            }
        }
        let mut y = vec![0.0; 4];
        run_sequential(&Scaled, &mut y);
        // y0 = 8/2 = 4; y1 = (8-4)/2 = 2; y2 = (8-2)/2 = 3; y3 = (8-3)/2 = 2.5
        assert_eq!(y, vec![4.0, 2.0, 3.0, 2.5]);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn wrong_buffer_length_panics() {
        let l = IndirectLoop::new(3, vec![], vec![], vec![]).unwrap();
        let mut y = vec![0.0; 2];
        run_sequential(&l, &mut y);
    }
}
