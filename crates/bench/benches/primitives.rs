//! Criterion micro-benchmarks of the runtime's building blocks: pool
//! dispatch, self-scheduled `parallel do` throughput, inspector and
//! postprocessor sweeps, and the ready-flag protocol. These are the
//! quantities the simulator's cost model abstracts; benchmarking them
//! keeps the model's ratios honest on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use doacross_core::{
    flags::{IterMap, ReadyFlags},
    inspector::run_inspector,
    IndirectLoop,
};
use doacross_par::{parallel_for, Schedule, ThreadPool};
use std::hint::black_box;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2)
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    c.bench_function("pool/dispatch_empty_region", |b| {
        b.iter(|| {
            pool.run(|w| {
                black_box(w);
            })
        });
    });
}

fn bench_parallel_for(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    let n = 100_000usize;
    let mut group = c.benchmark_group("parallel_for");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));
    for (name, sched) in [
        ("dynamic1", Schedule::Dynamic { chunk: 1 }),
        ("dynamic64", Schedule::Dynamic { chunk: 64 }),
        ("static_block", Schedule::StaticBlock),
        ("static_cyclic", Schedule::StaticCyclic),
        ("guided", Schedule::Guided { min_chunk: 8 }),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let sink: Vec<std::sync::atomic::AtomicU64> =
                (0..workers()).map(|_| Default::default()).collect();
            b.iter(|| {
                parallel_for(&pool, n, sched, |i| {
                    // A trivially cheap body isolates scheduling overhead.
                    black_box(i);
                });
                black_box(&sink);
            })
        });
    }
    group.finish();
}

fn bench_flags(c: &mut Criterion) {
    let n = 100_000usize;
    let mut group = c.benchmark_group("flags");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));
    let ready = ReadyFlags::new(n);
    group.bench_function("ready_mark_and_reset", |b| {
        b.iter(|| {
            for e in 0..n {
                ready.mark_done(e);
            }
            for e in 0..n {
                ready.reset(e);
            }
        })
    });
    let map = IterMap::new(n);
    group.bench_function("iter_record_and_clear", |b| {
        b.iter(|| {
            for e in 0..n {
                black_box(map.record(e, e));
            }
            for e in 0..n {
                map.clear(e);
            }
        })
    });
    group.finish();
}

fn bench_inspector(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    let n = 100_000usize;
    let a: Vec<usize> = (0..n).collect();
    let loop_ = IndirectLoop::new(n, a, vec![vec![]; n], vec![vec![]; n]).unwrap();
    let map = IterMap::new(n);
    let mut group = c.benchmark_group("inspector");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("fill_and_manual_reset", |b| {
        b.iter(|| {
            run_inspector(
                &pool,
                Schedule::Dynamic { chunk: 256 },
                &loop_,
                0..n,
                0..n,
                &map,
                false,
            )
            .expect("injective");
            for e in 0..n {
                map.clear(e);
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_dispatch,
    bench_parallel_for,
    bench_flags,
    bench_inspector
);
criterion_main!(benches);
