//! Criterion bench regenerating Figure 6's workload on host threads:
//! the Figure 4 test loop at representative (L, M) grid points,
//! sequential vs. preprocessed doacross vs. §2.3 linear variant.
//!
//! The full 16-processor figure is produced by the simulator binary
//! (`--bin fig6`); this bench measures the real runtime's behaviour at
//! host parallelism so regressions in the construct itself show up in
//! `cargo bench`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doacross_core::{seq::run_sequential, AccessPattern, Doacross, LinearDoacross, TestLoop};
use doacross_par::ThreadPool;
use std::hint::black_box;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2)
}

fn bench_fig6(c: &mut Criterion) {
    let n = 10_000;
    let pool = ThreadPool::new(workers());
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    // Odd L (doall regime, pure overhead) and even L (dependence regime),
    // for both of the paper's M values.
    for &(l, m) in &[(7usize, 1usize), (7, 5), (8, 1), (8, 5), (4, 1), (14, 5)] {
        let loop_ = TestLoop::new(n, m, l);
        let y0 = loop_.initial_y();

        group.bench_with_input(
            BenchmarkId::new("sequential", format!("L{l}_M{m}")),
            &loop_,
            |b, loop_| {
                b.iter(|| {
                    let mut y = y0.clone();
                    run_sequential(loop_, &mut y);
                    black_box(y)
                })
            },
        );

        let mut runtime = Doacross::for_loop(&loop_);
        runtime.config_mut().validate_terms = false;
        group.bench_with_input(
            BenchmarkId::new("doacross", format!("L{l}_M{m}")),
            &loop_,
            |b, loop_| {
                b.iter(|| {
                    let mut y = y0.clone();
                    runtime.run(&pool, loop_, &mut y).expect("valid");
                    black_box(y)
                })
            },
        );

        let mut linear = LinearDoacross::new(loop_.data_len());
        group.bench_with_input(
            BenchmarkId::new("linear", format!("L{l}_M{m}")),
            &loop_,
            |b, loop_| {
                b.iter(|| {
                    let mut y = y0.clone();
                    linear
                        .run(&pool, loop_, loop_.linear_subscript(), &mut y)
                        .expect("valid");
                    black_box(y)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
