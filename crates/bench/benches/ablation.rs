//! Criterion ablations of the design choices DESIGN.md calls out, on host
//! threads: scheduling policy, §2.3 variants (blocked, linear), and wait
//! strategy, all on fixed workloads so `cargo bench` tracks regressions in
//! each dimension independently.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doacross_core::{BlockedDoacross, Doacross, DoacrossConfig, LinearDoacross, TestLoop};
use doacross_par::{Schedule, ThreadPool, WaitStrategy};
use std::hint::black_box;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2)
}

/// Scheduling policies on a dependence-bearing loop (L=8, M=3).
fn bench_schedules(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    let loop_ = TestLoop::new(10_000, 3, 8);
    let y0 = loop_.initial_y();
    let mut group = c.benchmark_group("ablation_schedule");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, sched) in [
        ("multimax_dyn1", Schedule::Dynamic { chunk: 1 }),
        ("dyn16", Schedule::Dynamic { chunk: 16 }),
        ("static_block", Schedule::StaticBlock),
        ("static_cyclic", Schedule::StaticCyclic),
    ] {
        let mut rt = Doacross::with_config(
            loop_.initial_y().len(),
            DoacrossConfig {
                schedule: sched,
                validate_terms: false,
                ..Default::default()
            },
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut y = y0.clone();
                rt.run(&pool, &loop_, &mut y).expect("valid");
                black_box(y)
            })
        });
    }
    group.finish();
}

/// Flat vs. blocked vs. linear execution of the same loop.
fn bench_variants(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    let loop_ = TestLoop::new(20_000, 2, 8);
    let y0 = loop_.initial_y();
    let mut group = c.benchmark_group("ablation_variant");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let mut flat = Doacross::for_loop(&loop_);
    flat.config_mut().validate_terms = false;
    group.bench_function("flat_inspected", |b| {
        b.iter(|| {
            let mut y = y0.clone();
            flat.run(&pool, &loop_, &mut y).expect("valid");
            black_box(y)
        })
    });

    let mut linear = LinearDoacross::new(y0.len());
    linear.config_mut().validate_terms = false;
    group.bench_function("linear_no_inspector", |b| {
        b.iter(|| {
            let mut y = y0.clone();
            linear
                .run(&pool, &loop_, loop_.linear_subscript(), &mut y)
                .expect("valid");
            black_box(y)
        })
    });

    for bs in [2_000usize, 10_000] {
        let mut blocked = BlockedDoacross::new(bs).expect("nonzero");
        blocked.config_mut().validate_terms = false;
        group.bench_function(BenchmarkId::new("blocked", bs), |b| {
            b.iter(|| {
                let mut y = y0.clone();
                blocked.run(&pool, &loop_, &mut y).expect("valid");
                black_box(y)
            })
        });
    }
    group.finish();
}

/// Wait strategies on the serialized L=4 chain.
fn bench_wait(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    let loop_ = TestLoop::new(5_000, 1, 4);
    let y0 = loop_.initial_y();
    let mut group = c.benchmark_group("ablation_wait");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, wait) in [
        ("spin", WaitStrategy::Spin),
        ("spin_yield", WaitStrategy::SpinYield { spins: 128 }),
        ("backoff", WaitStrategy::Backoff { max_spin_batch: 64 }),
    ] {
        let mut rt = Doacross::with_config(
            y0.len(),
            DoacrossConfig {
                wait,
                validate_terms: false,
                ..Default::default()
            },
        );
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut y = y0.clone();
                rt.run(&pool, &loop_, &mut y).expect("valid");
                black_box(y)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedules, bench_variants, bench_wait);
criterion_main!(benches);
