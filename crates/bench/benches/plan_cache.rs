//! Criterion bench of the plan-cache amortization curve: how the cost of
//! `k` triangular solves of one structure scales under per-call
//! re-inspection, per-call planning, and cached plans (k = 1, 10, 100) —
//! plus shared-engine concurrency (≥2 solve threads through one engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doacross_bench::amortize::{amortization_curve, concurrent_throughput};
use doacross_core::DoacrossConfig;
use doacross_engine::Engine;
use doacross_par::ThreadPool;
use doacross_sparse::{Problem, ProblemKind};
use doacross_trisolve::{solver::SolverBackend, DoacrossSolver, EngineSolver};
use std::hint::black_box;

fn host_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4)
}

fn host_pool() -> ThreadPool {
    ThreadPool::new(host_workers())
}

/// Per-solve cost of each policy in steady state (cache warm, inspector
/// warm): the marginal cost a long-running solver pays.
fn bench_steady_state(c: &mut Criterion) {
    let pool = host_pool();
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();

    let mut group = c.benchmark_group("plan_cache_steady");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let mut reinspect = DoacrossSolver::with_config(
        sys.l.n(),
        SolverBackend::Inspected,
        DoacrossConfig::default(),
    );
    group.bench_function("reinspect_per_call", |b| {
        b.iter(|| black_box(reinspect.solve(&pool, &sys.l, &sys.rhs).expect("valid")))
    });

    // Capacity 0: plan every call.
    let cold = EngineSolver::new(
        Engine::builder()
            .workers(host_workers())
            .cache_capacity(0)
            .build(),
    );
    group.bench_function("plan_per_call", |b| {
        b.iter(|| black_box(cold.solve(&sys.l, &sys.rhs).expect("valid")))
    });

    let cached = EngineSolver::new(
        Engine::builder()
            .workers(host_workers())
            .cache_capacity(2)
            .build(),
    );
    cached.solve(&sys.l, &sys.rhs).expect("warm the cache");
    group.bench_function("cached_hit", |b| {
        b.iter(|| black_box(cached.solve(&sys.l, &sys.rhs).expect("valid")))
    });
    group.finish();
}

/// ≥2 solve threads through one shared engine: the multi-tenant serving
/// shape, with the hit rate asserted nonzero.
fn bench_shared_engine_concurrency(c: &mut Criterion) {
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();
    let engine = Engine::builder()
        .workers(host_workers())
        .cache_capacity(8)
        .build();

    let mut group = c.benchmark_group("plan_cache_concurrent");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(2));
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let r = concurrent_throughput(&engine, &sys, threads, 10);
                    assert!(r.stats.hits > 0, "shared cache must serve hits");
                    black_box(r)
                });
            },
        );
    }
    group.finish();
}

/// Whole-sequence cost at 1 / 10 / 100 reuses, including each policy's
/// preprocessing — the amortization curve itself.
fn bench_amortization_curve(c: &mut Criterion) {
    let pool = host_pool();
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();

    let mut group = c.benchmark_group("plan_cache_amortization");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for reuses in [1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("sequence", reuses),
            &reuses,
            |b, &reuses| {
                b.iter(|| black_box(amortization_curve(&pool, &sys, &[reuses])));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_amortization_curve,
    bench_shared_engine_concurrency
);
criterion_main!(benches);
