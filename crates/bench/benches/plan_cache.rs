//! Criterion bench of the plan-cache amortization curve: how the cost of
//! `k` triangular solves of one structure scales under per-call
//! re-inspection, per-call planning, and cached plans (k = 1, 10, 100).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doacross_bench::amortize::amortization_curve;
use doacross_core::DoacrossConfig;
use doacross_par::ThreadPool;
use doacross_sparse::{Problem, ProblemKind};
use doacross_trisolve::{solver::SolverBackend, DoacrossSolver, PlanCachedSolver};
use std::hint::black_box;

fn host_pool() -> ThreadPool {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    ThreadPool::new(workers)
}

/// Per-solve cost of each policy in steady state (cache warm, inspector
/// warm): the marginal cost a long-running solver pays.
fn bench_steady_state(c: &mut Criterion) {
    let pool = host_pool();
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();

    let mut group = c.benchmark_group("plan_cache_steady");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    let mut reinspect = DoacrossSolver::with_config(
        sys.l.n(),
        SolverBackend::Inspected,
        DoacrossConfig::default(),
    );
    group.bench_function("reinspect_per_call", |b| {
        b.iter(|| black_box(reinspect.solve(&pool, &sys.l, &sys.rhs).expect("valid")))
    });

    let mut cold = PlanCachedSolver::new(0); // capacity 0: plan every call
    group.bench_function("plan_per_call", |b| {
        b.iter(|| black_box(cold.solve(&pool, &sys.l, &sys.rhs).expect("valid")))
    });

    let mut cached = PlanCachedSolver::new(2);
    cached
        .solve(&pool, &sys.l, &sys.rhs)
        .expect("warm the cache");
    group.bench_function("cached_hit", |b| {
        b.iter(|| black_box(cached.solve(&pool, &sys.l, &sys.rhs).expect("valid")))
    });
    group.finish();
}

/// Whole-sequence cost at 1 / 10 / 100 reuses, including each policy's
/// preprocessing — the amortization curve itself.
fn bench_amortization_curve(c: &mut Criterion) {
    let pool = host_pool();
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();

    let mut group = c.benchmark_group("plan_cache_amortization");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_secs(1));

    for reuses in [1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("sequence", reuses),
            &reuses,
            |b, &reuses| {
                b.iter(|| black_box(amortization_curve(&pool, &sys, &[reuses])));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_steady_state, bench_amortization_curve);
criterion_main!(benches);
