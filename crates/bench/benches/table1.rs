//! Criterion bench regenerating Table 1's workload on host threads: the
//! three solvers (sequential, preprocessed doacross, doconsider-rearranged
//! doacross) on each of the paper's five triangular systems.
//!
//! The 16-processor table itself comes from the simulator binary
//! (`--bin table1`); this bench tracks the real solvers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use doacross_par::ThreadPool;
use doacross_sparse::{Problem, ProblemKind};
use doacross_trisolve::{seq::solve_sequential, DoacrossSolver, ReorderedSolver};
use std::hint::black_box;

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2)
}

fn bench_table1(c: &mut Criterion) {
    let pool = ThreadPool::new(workers());
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    for kind in ProblemKind::all() {
        let sys = Problem::build(kind).triangular_system();
        let name = kind.name();

        group.bench_with_input(BenchmarkId::new("sequential", name), &sys, |b, sys| {
            b.iter(|| black_box(solve_sequential(&sys.l, &sys.rhs)))
        });

        let mut plain = DoacrossSolver::new(sys.n());
        group.bench_with_input(BenchmarkId::new("doacross", name), &sys, |b, sys| {
            b.iter(|| black_box(plain.solve(&pool, &sys.l, &sys.rhs).expect("valid")))
        });

        let mut reordered = ReorderedSolver::new(sys.n());
        reordered.prepare(&sys.l); // plan amortized, as in the paper
        group.bench_with_input(BenchmarkId::new("rearranged", name), &sys, |b, sys| {
            b.iter(|| black_box(reordered.solve(&pool, &sys.l, &sys.rhs).expect("valid")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
