//! What the fault-injection sites cost when nobody is injecting faults.
//!
//! The containment PR compiled named `failpoint` sites into the hot
//! paths (`core::executor::iter`, `core::wavefront::iter`,
//! `sched::acquire`). This bench defends the two claims that make that
//! acceptable in production:
//!
//! * **Disarmed is free.** The disarmed per-iteration check is a branch
//!   on a stack-local `Option` (the registry is consulted once per
//!   region, and only via one `Relaxed` load when nothing is armed).
//!   [`disarmed_check_cost`] prices that branch directly, and each
//!   measured point folds it into a per-solve bill:
//!   `disarmed_overhead = 1 + hits × check_ns / solve_ns` (hits = rows
//!   for parallel variants, 0 for sequential, whose path has no sites),
//!   asserted
//!   ≤ [`DISARMED_OVERHEAD_BOUND`] in the regenerating binary and
//!   recorded in `BENCH_fault.json`.
//! * **Armed-but-inert stays cheap.** Arming `DelayNs { ns: 0 }` forces
//!   every iteration down the armed path (snapshot present, match, zero
//!   burn) without injecting anything — the worst steady-state cost a
//!   site can impose short of an actual fault. The on/off ratio is
//!   asserted ≤ [`ARMED_INERT_BOUND`].

use doacross_engine::Engine;
use doacross_sparse::{Problem, ProblemKind, TriSystem};
use doacross_trisolve::EngineSolver;
use failpoint::FailAction;
use std::time::{Duration, Instant};

/// Per-solve bill of the *disarmed* sites (1.0 = free), computed from the
/// directly-priced per-check cost. This is the acceptance bound the
/// containment PR ships under: injection machinery nobody armed may not
/// tax a solve more than 2%.
pub const DISARMED_OVERHEAD_BOUND: f64 = 1.02;

/// Armed-but-inert on/off ratio bound. Arming is a test-and-chaos-suite
/// affair, so this only needs to stay within the same noise envelope the
/// obs bench uses, not the disarmed 2%.
pub const ARMED_INERT_BOUND: f64 = 1.5;

/// The iteration-body sites a triangular solve can hit, depending on
/// which variant the planner picked.
const ITER_SITES: [&str; 2] = ["core::executor::iter", "core::wavefront::iter"];

/// Disarmed-vs-armed-inert steady state for one Table 1 structure.
#[derive(Debug, Clone, Copy)]
pub struct FaultOverheadPoint {
    /// Which Table 1 problem the structure came from.
    pub kind: ProblemKind,
    /// Rows (= iterations) in the triangular system.
    pub rows: usize,
    /// Failpoint hits one solve actually performs: `rows` when the
    /// planner picked a parallel variant (the sites live in the parallel
    /// executors' iteration bodies), 0 when it picked sequential (whose
    /// path has no sites at all).
    pub hits: usize,
    /// Per-solve wall time with every site disarmed (the production
    /// default), min over reps of a warmed engine.
    pub off: Duration,
    /// Per-solve wall time with the iteration sites armed
    /// `DelayNs { ns: 0 }` — the armed path taken every hit, nothing
    /// injected.
    pub on: Duration,
}

impl FaultOverheadPoint {
    /// Armed-inert cost as a multiple of disarmed cost (1.0 = free).
    pub fn armed_overhead(&self) -> f64 {
        self.on.as_secs_f64() / self.off.as_secs_f64().max(1e-12)
    }

    /// Per-solve bill of the disarmed checks, as a multiple of the solve
    /// itself: `1 + hits × check_ns / solve_ns`.
    pub fn disarmed_overhead(&self, check_ns: f64) -> f64 {
        1.0 + self.hits as f64 * check_ns * 1e-9 / self.off.as_secs_f64().max(1e-12)
    }
}

fn steady_per_solve(
    solver: &EngineSolver,
    sys: &TriSystem,
    solves: usize,
    reps: usize,
) -> Duration {
    // Warm: the first solve builds and caches the plan; everything
    // measured after is a cache hit.
    solver.solve(&sys.l, &sys.rhs).expect("valid system");
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..solves.max(1) {
            solver.solve(&sys.l, &sys.rhs).expect("valid system");
        }
        best = best.min(start.elapsed() / solves.max(1) as u32);
    }
    best
}

/// Measures warmed per-solve cost with the failpoint sites disarmed vs.
/// armed-inert for each problem, min over `reps` repetitions of `solves`
/// back-to-back solves. The same engine serves both measurements, so the
/// plan, pool, and cache state are identical — only the registry differs.
pub fn fault_overhead(
    workers: usize,
    kinds: &[ProblemKind],
    solves: usize,
    reps: usize,
) -> Vec<FaultOverheadPoint> {
    kinds
        .iter()
        .map(|&kind| {
            let sys = Problem::build(kind).triangular_system();
            let engine = Engine::builder().workers(workers).cache_capacity(8).build();
            let solver = EngineSolver::new(engine);

            failpoint::disarm_all();
            assert!(!failpoint::enabled());
            // The warm solve also reveals which variant the planner
            // picked: sequential solves perform zero failpoint hits.
            let (_, stats) = solver.solve(&sys.l, &sys.rhs).expect("valid system");
            let hits = if stats.workers > 1 { sys.l.n() } else { 0 };
            let off = steady_per_solve(&solver, &sys, solves, reps);

            for site in ITER_SITES {
                failpoint::arm(site, FailAction::DelayNs { ns: 0 });
            }
            assert!(failpoint::enabled());
            let on = steady_per_solve(&solver, &sys, solves, reps);
            failpoint::disarm_all();

            FaultOverheadPoint {
                kind,
                rows: sys.l.n(),
                hits,
                off,
                on,
            }
        })
        .collect()
}

/// Prices the disarmed per-iteration check directly: nanoseconds per
/// `hit(None, i)` — the entire per-iteration bill when nothing is armed.
/// Returns the mean over `iters` checks.
pub fn disarmed_check_cost(iters: u64) -> f64 {
    failpoint::disarm_all();
    let site = failpoint::lookup("bench::fault::probe");
    assert!(site.is_none(), "nothing may be armed while pricing");
    let start = Instant::now();
    for i in 0..iters.max(1) {
        failpoint::hit(std::hint::black_box(site), i);
    }
    let elapsed = start.elapsed();
    elapsed.as_secs_f64() * 1e9 / iters.max(1) as f64
}

/// Renders the comparison as the machine-readable `BENCH_fault.json`.
pub fn to_json(points: &[FaultOverheadPoint], workers: usize, check_ns: f64) -> String {
    let mut out = String::from("{\n");
    for p in points {
        out.push_str(&format!(
            "  {:?}: {{\"off_ns\": {}, \"on_ns\": {}, \"overhead\": {:.4}, \"disarmed_overhead\": {:.6}, \"rows\": {}, \"hits\": {}}},\n",
            p.kind.name(),
            p.off.as_nanos(),
            p.on.as_nanos(),
            p.armed_overhead(),
            p.disarmed_overhead(check_ns),
            p.rows,
            p.hits,
        ));
    }
    out.push_str(&format!(
        "  \"_meta\": {{\"workers\": {workers}, \"disarmed_check_ns\": {check_ns:.4}, \"bound\": {DISARMED_OVERHEAD_BOUND}, \"armed_bound\": {ARMED_INERT_BOUND}}}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_points_measure_both_paths() {
        // Timing ratios are reported, not asserted (CI noise) — what must
        // hold structurally: both paths ran to completion and the sites
        // were disarmed again on the way out.
        let points = fault_overhead(2, &[ProblemKind::FivePt], 3, 1);
        assert_eq!(points.len(), 1);
        assert!(points[0].off > Duration::ZERO);
        assert!(points[0].on > Duration::ZERO);
        assert!(!failpoint::enabled(), "bench must disarm after itself");
    }

    #[test]
    fn disarmed_check_is_sub_nanosecond_scale() {
        // A disarmed site is one branch on a stack-local None. Even a
        // noisy CI host prices that far under this ceiling.
        let ns = disarmed_check_cost(1_000_000);
        assert!(ns < 100.0, "disarmed hit() cost {ns} ns/call");
    }

    #[test]
    fn disarmed_overhead_formula_scales_with_rows() {
        let p = FaultOverheadPoint {
            kind: ProblemKind::FivePt,
            rows: 1_000,
            hits: 1_000,
            off: Duration::from_micros(100),
            on: Duration::from_micros(100),
        };
        // 1000 hits at 1ns over a 100µs solve = 1% bill.
        let over = p.disarmed_overhead(1.0);
        assert!((over - 1.01).abs() < 1e-9, "{over}");
    }
}
