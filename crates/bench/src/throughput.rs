//! Concurrent-tenant throughput: what the multi-pool scheduler and
//! batched submission buy.
//!
//! The workload is the one `crates/sched` exists for: many tenants, each
//! with its own (small) prepared structure, all solving through one
//! shared engine. Three measurements:
//!
//! * [`tenant_throughput`] — solves/sec and per-solve latency at a given
//!   tenant count (1, 4, 16 in the committed snapshot), every tenant a
//!   thread hammering its own warmed [`PreparedLoop`].
//! * [`pool_overhead`] — the dispatcher's per-solve tax: the same
//!   single-tenant workload on a one-pool engine vs. a multi-pool engine.
//!   On a single-core host the multi-pool engine cannot win, so the
//!   committed claim is a **no-regression bound**: multi-pool per-solve
//!   stays within [`POOL_OVERHEAD_BOUND`]× of single-pool (asserted, with
//!   retries, by the regenerating binary). On a multicore host the same
//!   snapshot records the actual concurrent speedup — regenerate there
//!   via `scripts/bench_gate.sh --measure`.
//! * [`batch_amortization`] — per-solve cost of N small sequential-variant
//!   solves submitted one by one vs. as one
//!   [`doacross_engine::SolveBatch`] (one coalesced
//!   pool region instead of N dispatches).
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin throughput`.

use doacross_core::TestLoop;
use doacross_engine::{Engine, PreparedLoop};
use std::time::{Duration, Instant};

/// Multi-pool per-solve cost as a multiple of single-pool cost that the
/// regenerating binary tolerates on a serial host. The dispatcher's fast
/// path is one CAS on a free-bitmask; anything past 5% is a real
/// regression, not scheduling noise.
pub const POOL_OVERHEAD_BOUND: f64 = 1.05;

/// The tenant counts the committed snapshot records.
pub const TENANT_COUNTS: [usize; 3] = [1, 4, 16];

/// Throughput at one tenant count.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Concurrent tenant threads.
    pub tenants: usize,
    /// Total solves completed across all tenants (per rep).
    pub solves: u64,
    /// Wall time of the best rep.
    pub elapsed: Duration,
}

impl ThroughputPoint {
    /// Aggregate solves per second across all tenants.
    pub fn solves_per_sec(&self) -> f64 {
        self.solves as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }

    /// Mean per-solve latency (wall time / solves — tenants overlap, so
    /// this is the *throughput-side* per-solve cost, not a tail latency).
    pub fn per_solve(&self) -> Duration {
        self.elapsed / self.solves.max(1) as u32
    }
}

/// One tenant's structure: Figure 4 shapes at tenant-varied sizes so all
/// fingerprints are distinct and the per-solve work is small — the regime
/// where scheduler overhead is visible at all.
fn tenant_loop(t: usize) -> TestLoop {
    TestLoop::new(300 + 40 * t, 1 + t % 2, 6 + t % 5)
}

/// Warms one prepared handle per tenant on `engine`.
fn prepare_tenants(engine: &Engine, tenants: usize) -> Vec<(TestLoop, PreparedLoop)> {
    (0..tenants)
        .map(|t| {
            let l = tenant_loop(t);
            let prepared = engine.prepare(&l).expect("plannable");
            let mut y = l.initial_y();
            prepared.execute(&l, &mut y).expect("warm solve");
            (l, prepared)
        })
        .collect()
}

/// Measures `tenants` threads solving concurrently through `engine`
/// (`solves_per_tenant` each), best of `reps` repetitions.
pub fn tenant_throughput(
    engine: &Engine,
    tenants: usize,
    solves_per_tenant: usize,
    reps: usize,
) -> ThroughputPoint {
    let prepared = prepare_tenants(engine, tenants);
    let solves = (tenants * solves_per_tenant) as u64;
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (l, p) in &prepared {
                scope.spawn(move || {
                    let mut y = l.initial_y();
                    for _ in 0..solves_per_tenant {
                        p.execute(l, &mut y).expect("valid");
                    }
                });
            }
        });
        best = best.min(start.elapsed());
    }
    ThroughputPoint {
        tenants,
        solves,
        elapsed: best,
    }
}

/// Single-pool vs. multi-pool per-solve cost on the identical
/// single-tenant workload: the dispatcher's tax in isolation. Returns
/// `(single_pool, multi_pool)` per-solve durations, each min over `reps`.
pub fn pool_overhead(pools: usize, solves: usize, reps: usize) -> (Duration, Duration) {
    let measure = |engine: &Engine| {
        let prepared = prepare_tenants(engine, 1);
        let (l, p) = &prepared[0];
        let mut y = l.initial_y();
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            for _ in 0..solves.max(1) {
                p.execute(l, &mut y).expect("valid");
            }
            best = best.min(start.elapsed() / solves.max(1) as u32);
        }
        best
    };
    let single = Engine::builder().workers(1).pools(1).build();
    let multi = Engine::builder().workers(1).pools(pools.max(2)).build();
    (measure(&single), measure(&multi))
}

/// Per-solve cost of `jobs` small solves submitted serially vs. as one
/// batch (`execute_all` coalesces the sequential-variant jobs into a
/// single pool region). Returns `(serial, batched)` per-solve durations,
/// min over `reps`.
pub fn batch_amortization(engine: &Engine, jobs: usize, reps: usize) -> (Duration, Duration) {
    let prepared = prepare_tenants(engine, jobs);
    let mut ys: Vec<Vec<f64>> = prepared.iter().map(|(l, _)| l.initial_y()).collect();

    let mut serial = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for ((l, p), y) in prepared.iter().zip(&mut ys) {
            p.execute(l, y).expect("valid");
        }
        serial = serial.min(start.elapsed() / jobs.max(1) as u32);
    }

    let mut batched = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        // No type annotation: the batch monomorphizes for `TestLoop`.
        let mut batch = engine.batch();
        for ((l, p), y) in prepared.iter().zip(&mut ys) {
            batch.submit(p, l, y);
        }
        for result in engine.execute_all(batch) {
            result.expect("valid");
        }
        batched = batched.min(start.elapsed() / jobs.max(1) as u32);
    }
    (serial, batched)
}

/// Renders the snapshot as the machine-readable `BENCH_throughput.json`.
#[allow(clippy::too_many_arguments)]
pub fn to_json(
    points: &[ThroughputPoint],
    engine: &Engine,
    single_pool: Duration,
    multi_pool: Duration,
    batch_serial: Duration,
    batch_batched: Duration,
    bound_asserted: bool,
) -> String {
    let mut out = String::from("{\n");
    for p in points {
        out.push_str(&format!(
            "  \"tenants_{}\": {{\"tenants\": {}, \"solves\": {}, \"solves_per_sec\": {:.1}, \"per_solve_ns\": {}}},\n",
            p.tenants,
            p.tenants,
            p.solves,
            p.solves_per_sec(),
            p.per_solve().as_nanos(),
        ));
    }
    let ratio = multi_pool.as_secs_f64() / single_pool.as_secs_f64().max(1e-12);
    out.push_str(&format!(
        "  \"_meta\": {{\"workers\": {}, \"pools\": {}, \"total_workers\": {}, \
\"single_pool_per_solve_ns\": {}, \"multi_pool_per_solve_ns\": {}, \"pool_overhead\": {ratio:.4}, \
\"pool_overhead_bound\": {POOL_OVERHEAD_BOUND}, \"bound_asserted\": {bound_asserted}, \
\"batch_serial_per_solve_ns\": {}, \"batch_batched_per_solve_ns\": {}}}\n}}\n",
        engine.threads(),
        engine.pools(),
        engine.total_workers(),
        single_pool.as_nanos(),
        multi_pool.as_nanos(),
        batch_serial.as_nanos(),
        batch_batched.as_nanos(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_core::AccessPattern;

    // Timing ratios are reported, not asserted (CI noise — see warm.rs);
    // the structural contract: every path runs to completion, counts
    // reconcile, and the snapshot renders with its required keys.

    #[test]
    fn tenant_points_count_every_solve() {
        let engine = Engine::builder().workers(1).pools(2).build();
        for tenants in [1usize, 4] {
            let p = tenant_throughput(&engine, tenants, 3, 1);
            assert_eq!(p.tenants, tenants);
            assert_eq!(p.solves, (tenants * 3) as u64);
            assert!(p.elapsed > Duration::ZERO);
            assert!(p.solves_per_sec() > 0.0);
        }
        // Every solve passed through the scheduler's admission gate
        // (warm-up solves included).
        let dispatched: u64 = engine.pool_stats().iter().map(|s| s.dispatches).sum();
        assert_eq!(dispatched, (1 + 3) as u64 + (4 + 4 * 3) as u64);
    }

    #[test]
    fn pool_overhead_measures_both_engines() {
        let (single, multi) = pool_overhead(2, 3, 1);
        assert!(single > Duration::ZERO);
        assert!(multi > Duration::ZERO);
    }

    #[test]
    fn batch_amortization_solves_the_same_work() {
        let engine = Engine::builder().workers(1).pools(1).build();
        let (serial, batched) = batch_amortization(&engine, 4, 1);
        assert!(serial > Duration::ZERO);
        assert!(batched > Duration::ZERO);
    }

    #[test]
    fn snapshot_carries_the_gate_keys() {
        let engine = Engine::builder().workers(1).pools(2).build();
        let points: Vec<ThroughputPoint> = TENANT_COUNTS
            .iter()
            .map(|&t| tenant_throughput(&engine, t, 1, 1))
            .collect();
        let json = to_json(
            &points,
            &engine,
            Duration::from_nanos(100),
            Duration::from_nanos(101),
            Duration::from_nanos(100),
            Duration::from_nanos(90),
            true,
        );
        for key in [
            "\"tenants_1\"",
            "\"tenants_4\"",
            "\"tenants_16\"",
            "\"solves_per_sec\"",
            "\"per_solve_ns\"",
            "\"pool_overhead_bound\"",
            "\"bound_asserted\": true",
        ] {
            assert!(json.contains(key), "snapshot missing {key}: {json}");
        }
    }

    #[test]
    fn tenant_loops_have_distinct_fingerprints() {
        let fps: std::collections::BTreeSet<String> = (0..16)
            .map(|t| doacross_plan::PatternFingerprint::of(&tenant_loop(t)).to_string())
            .collect();
        assert_eq!(fps.len(), 16);
        assert!(tenant_loop(0).iterations() > 0);
    }
}
