//! Flag-synchronized vs. level-scheduled steady state: the wavefront
//! variant's crossover experiment.
//!
//! [`crate::amortize`] showed that caching preprocessing makes the
//! *per-solve* cost the whole bill; this experiment asks what the cheapest
//! per-solve executor actually is once the plan is cached. Two candidates
//! run the same Table 1 triangular structure from prebuilt artifacts:
//!
//! * **cached doacross** — the flat executor against a prebuilt writer
//!   map: no inspector, but every true dependency still checks (and
//!   possibly polls) a `ready` flag, and every iteration publishes one —
//!   `RunStats.wait_polls` is the busy-wait bill.
//! * **wavefront** — the level-scheduled executor against a prebuilt
//!   [`LevelSchedule`]: one spin-barrier per level, zero flag traffic,
//!   `wait_polls == 0` by construction.
//!
//! Both produce bit-identical results (asserted on every measurement), so
//! the difference is pure synchronization strategy: per-element flags vs.
//! `levels × barrier`. The module also records which variant the engine's
//! cost model picks for each structure — the planner's rule should land on
//! the measured winner — and [`chunking_comparison`] isolates the chunked
//! self-scheduling satellite (one-iteration grabs vs. width-adaptive
//! chunks on the shared per-level counters).

use doacross_core::{
    Doacross, DoacrossConfig, LevelSchedule, PreparedInspection, RunStats, WavefrontDoacross,
};
use doacross_engine::Engine;
use doacross_par::{Schedule, ThreadPool};
use doacross_plan::{PlanCensus, PlanVariant, Planner};
use doacross_sparse::{Problem, ProblemKind, TriSystem};
use doacross_trisolve::TriSolveLoop;
use std::time::{Duration, Instant};

/// Steady-state comparison for one Table 1 structure.
#[derive(Debug, Clone)]
pub struct WavefrontPoint {
    /// Which Table 1 problem the structure came from.
    pub kind: ProblemKind,
    /// Rows (= iterations) in the triangular system.
    pub rows: usize,
    /// Wavefront levels (dependence critical path).
    pub levels: usize,
    /// Per-solve wall time of the cached flat doacross (prebuilt writer
    /// map, no inspector), min over reps.
    pub doacross: Duration,
    /// Per-solve wall time of the wavefront executor (prebuilt level
    /// schedule), min over reps.
    pub wavefront: Duration,
    /// Failed `ready` polls per doacross solve (the busy-wait bill the
    /// wavefront eliminates) — from the rep with the minimal time.
    pub doacross_polls: u64,
    /// True-dependency resolutions per solve (identical for both).
    pub true_deps: u64,
    /// What the engine's cost model selects for this structure at the
    /// measured worker count — the planner's automatic call.
    pub selected: PlanVariant,
    /// What the planner selects for the same structure priced at 4
    /// workers — the multicore decision, independent of this host's core
    /// count (a 1-core CI runner prices everything sequential, which says
    /// nothing about the variants).
    pub selected_at_4: PlanVariant,
}

impl WavefrontPoint {
    /// How much faster the wavefront steady state is (> 1 = wavefront
    /// wins).
    pub fn speedup(&self) -> f64 {
        self.doacross.as_secs_f64() / self.wavefront.as_secs_f64().max(1e-12)
    }
}

fn per_solve<F: FnMut() -> RunStats>(solves: usize, mut f: F) -> (Duration, RunStats) {
    let start = Instant::now();
    let mut last = RunStats::default();
    for _ in 0..solves {
        last = f();
    }
    (start.elapsed() / solves as u32, last)
}

/// Measures the steady-state per-solve time of both executors on each
/// problem: `solves` solves per repetition, minimum over `reps`
/// repetitions, results asserted bit-identical to the sequential
/// forward-solve on every rep.
pub fn wavefront_comparison(
    workers: usize,
    kinds: &[ProblemKind],
    solves: usize,
    reps: usize,
) -> Vec<WavefrontPoint> {
    let pool = ThreadPool::new(workers);
    let engine = Engine::builder().workers(workers).build();
    let four = ThreadPool::new(4);
    kinds
        .iter()
        .map(|&kind| {
            let sys: TriSystem = Problem::build(kind).triangular_system();
            let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
            let expect = sys.l.forward_solve(&sys.rhs);
            let config = DoacrossConfig {
                validate_terms: false,
                ..DoacrossConfig::default()
            };

            // Prebuilt artifacts — the cached-plan steady state for each
            // executor, without the planner in the timed path.
            let prepared = PreparedInspection::inspect(&pool, Schedule::multimax(), &loop_, true)
                .expect("triangular structure is injective");
            let (census, schedule) = PlanCensus::of_with_schedule(&loop_);
            let schedule: LevelSchedule = schedule.expect("injective in-bounds");
            assert_eq!(schedule.level_count(), census.critical_path);

            let mut flat = Doacross::with_config(sys.n(), config);
            let mut wave = WavefrontDoacross::with_config(sys.n(), config);

            let mut point = WavefrontPoint {
                kind,
                rows: sys.n(),
                levels: schedule.level_count(),
                doacross: Duration::MAX,
                wavefront: Duration::MAX,
                doacross_polls: 0,
                true_deps: census.true_deps,
                selected: engine.prepare(&loop_).expect("plannable").variant(),
                selected_at_4: Planner::new()
                    .plan(&four, &loop_)
                    .expect("plannable")
                    .variant(),
            };
            for _ in 0..reps.max(1) {
                let (flat_time, flat_stats) = per_solve(solves, || {
                    let mut y = vec![0.0; sys.n()];
                    let stats = flat
                        .run_planned(&pool, &loop_, &mut y, &prepared, None)
                        .expect("valid");
                    assert_eq!(y, expect, "{}: doacross result", kind.name());
                    stats
                });
                let (wave_time, wave_stats) = per_solve(solves, || {
                    let mut y = vec![0.0; sys.n()];
                    let stats = wave.run(&pool, &loop_, &mut y, &schedule).expect("valid");
                    assert_eq!(y, expect, "{}: wavefront result", kind.name());
                    stats
                });
                assert_eq!(wave_stats.wait_polls, 0, "{}", kind.name());
                assert_eq!(
                    wave_stats.deps.true_deps, flat_stats.deps.true_deps,
                    "same dependence structure"
                );
                if flat_time < point.doacross {
                    point.doacross = flat_time;
                    point.doacross_polls = flat_stats.wait_polls;
                }
                point.wavefront = point.wavefront.min(wave_time);
            }
            point
        })
        .collect()
}

/// The chunked self-scheduling ablation: per-solve wavefront time with
/// one-iteration counter grabs (the Multimax policy — maximal shared-
/// counter contention) vs. width-adaptive chunks
/// ([`doacross_core::wavefront::level_chunk`]). Returns `(chunk1,
/// adaptive)` per-solve times, min over `reps`.
pub fn chunking_comparison(
    workers: usize,
    kind: ProblemKind,
    solves: usize,
    reps: usize,
) -> (Duration, Duration) {
    let pool = ThreadPool::new(workers);
    let sys = Problem::build(kind).triangular_system();
    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
    let expect = sys.l.forward_solve(&sys.rhs);
    let (_, schedule) = PlanCensus::of_with_schedule(&loop_);
    let schedule = schedule.expect("injective in-bounds");
    let config = DoacrossConfig {
        validate_terms: false,
        ..DoacrossConfig::default()
    };
    let mut rt = WavefrontDoacross::with_config(sys.n(), config);

    let mut measure = |chunk: Option<usize>| {
        let mut best = Duration::MAX;
        for _ in 0..reps.max(1) {
            let (time, _) = per_solve(solves, || {
                let mut y = vec![0.0; sys.n()];
                let stats = rt
                    .run_chunked(&pool, &loop_, &mut y, &schedule, chunk)
                    .expect("valid");
                assert_eq!(y, expect);
                stats
            });
            best = best.min(time);
        }
        best
    };
    let unit = measure(Some(1));
    let adaptive = measure(None);
    (unit, adaptive)
}

/// Renders the comparison as the machine-readable JSON the perf
/// trajectory is tracked with across PRs (`BENCH_wavefront.json`):
/// `{structure: {doacross_ns, wavefront_ns, wait_polls, levels, ...}}`.
pub fn to_json(points: &[WavefrontPoint]) -> String {
    let mut out = String::from("{\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{\"doacross_ns\": {}, \"wavefront_ns\": {}, \"wait_polls\": {}, \
             \"levels\": {}, \"rows\": {}, \"true_deps\": {}, \"selected\": \"{}\", \
             \"selected_at_4\": \"{}\"}}{}\n",
            p.kind.name(),
            p.doacross.as_nanos(),
            p.wavefront.as_nanos(),
            p.doacross_polls,
            p.levels,
            p.rows,
            p.true_deps,
            p.selected,
            p.selected_at_4,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_is_bit_identical_and_poll_free() {
        // Result equality and the wait_polls == 0 invariant are asserted
        // inside the measurement; timings are reported, not asserted (CI
        // noise).
        let points = wavefront_comparison(2, &[ProblemKind::FivePt], 2, 1);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert!(p.levels > 1 && p.levels < p.rows);
        assert!(p.doacross > Duration::ZERO && p.wavefront > Duration::ZERO);
        assert!(p.true_deps > 0);
        assert!(p.speedup() > 0.0);
    }

    #[test]
    fn planner_auto_selects_wavefront_for_deep_table1_structures() {
        // The acceptance anchor: at a multicore worker count the cost
        // model picks the wavefront on its own for the deep Table 1
        // structures (no forcing anywhere in the solve path).
        let four = ThreadPool::new(4);
        let planner = Planner::new();
        for kind in [ProblemKind::Spe2, ProblemKind::SevenPt] {
            let sys = Problem::build(kind).triangular_system();
            let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
            let plan = planner.plan(&four, &loop_).expect("plannable");
            assert_eq!(
                plan.variant(),
                PlanVariant::Wavefront,
                "{}: {:?}",
                kind.name(),
                plan.costs()
            );
        }
    }

    #[test]
    fn chunking_comparison_measures_both_policies() {
        let (unit, adaptive) = chunking_comparison(2, ProblemKind::FivePt, 2, 1);
        assert!(unit > Duration::ZERO && adaptive > Duration::ZERO);
    }

    #[test]
    fn json_is_well_formed_enough_to_track() {
        let points = wavefront_comparison(2, &[ProblemKind::FivePt], 1, 1);
        let json = to_json(&points);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"5-PT\""));
        assert!(json.contains("doacross_ns"));
        assert!(json.contains("wavefront_ns"));
        assert!(json.contains("wait_polls"));
        assert!(json.contains("levels"));
        assert!(!json.contains(",\n}"), "no trailing comma");
    }
}
