//! What the solve profiler costs — armed and, above all, disarmed.
//!
//! The profiling PR threads `Option<&ProfArena>` through the execution
//! layers: every deposit site is one branch on a stack-local `Option`
//! when the engine was built without [`doacross_engine::ProfConfig`].
//! This bench defends the two claims that make deep profiling shippable:
//!
//! * **Disarmed is free.** [`disarmed_check_cost`] prices the
//!   `Option::is_some` branch directly; each measured point folds it
//!   into a per-solve bill `1 + sites × check_ns / solve_ns`, where
//!   `sites` is the number of spans an armed solve of the same structure
//!   actually deposits (every span is exactly one consulted site).
//!   Asserted ≤ [`DISARMED_OVERHEAD_BOUND`] in the regenerating binary.
//! * **Armed stays bounded.** A profiling engine pays for clock reads
//!   and span deposits on every worker; the warmed on/off per-solve
//!   ratio is asserted ≤ [`ARMED_OVERHEAD_BOUND`] — profiling is a
//!   diagnosis tool, not a tax you forget you enabled, but it must stay
//!   cheap enough to run against production traffic when needed.

use doacross_engine::Engine;
use doacross_obs::profile::ProfArena;
use doacross_sparse::{Problem, ProblemKind, TriSystem};
use doacross_trisolve::EngineSolver;
use std::time::{Duration, Instant};

/// Per-solve bill of the *disarmed* deposit sites (1.0 = free). Same
/// ceiling the failpoint sites ship under: machinery nobody armed may
/// not tax a solve more than 2%.
pub const DISARMED_OVERHEAD_BOUND: f64 = 1.02;

/// Armed profiling on/off per-solve ratio bound.
pub const ARMED_OVERHEAD_BOUND: f64 = 1.5;

/// Armed-vs-off steady state for one Table 1 structure.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOverheadPoint {
    /// Which Table 1 problem the structure came from.
    pub kind: ProblemKind,
    /// Rows (= iterations) in the triangular system.
    pub rows: usize,
    /// Deposit sites one armed solve of this structure consults — the
    /// span count of its harvested profile (plus any arena-bounded
    /// drops). Zero when the planner picked a variant the profiler only
    /// wraps coarsely.
    pub sites: u64,
    /// Warmed per-solve wall time on an engine built without profiling.
    pub off: Duration,
    /// Warmed per-solve wall time with profiling armed
    /// (`ProfConfig::default()`), harvest included.
    pub on: Duration,
}

impl ProfileOverheadPoint {
    /// Armed cost as a multiple of unprofiled cost (1.0 = free).
    pub fn armed_overhead(&self) -> f64 {
        self.on.as_secs_f64() / self.off.as_secs_f64().max(1e-12)
    }

    /// Per-solve bill of the disarmed branches, as a multiple of the
    /// solve itself: `1 + sites × check_ns / solve_ns`.
    pub fn disarmed_overhead(&self, check_ns: f64) -> f64 {
        1.0 + self.sites as f64 * check_ns * 1e-9 / self.off.as_secs_f64().max(1e-12)
    }
}

fn steady_per_solve(
    solver: &EngineSolver,
    sys: &TriSystem,
    solves: usize,
    reps: usize,
) -> Duration {
    // Warm: the first solve builds and caches the plan; everything
    // measured after is a cache hit.
    solver.solve(&sys.l, &sys.rhs).expect("valid system");
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..solves.max(1) {
            solver.solve(&sys.l, &sys.rhs).expect("valid system");
        }
        best = best.min(start.elapsed() / solves.max(1) as u32);
    }
    best
}

/// Measures warmed per-solve cost without profiling vs. with profiling
/// armed for each problem, min over `reps` repetitions of `solves`
/// back-to-back solves. Two engines (the feature is a build-time choice),
/// same workers, same cache discipline.
pub fn profile_overhead(
    workers: usize,
    kinds: &[ProblemKind],
    solves: usize,
    reps: usize,
) -> Vec<ProfileOverheadPoint> {
    kinds
        .iter()
        .map(|&kind| {
            let sys = Problem::build(kind).triangular_system();

            let off_solver =
                EngineSolver::new(Engine::builder().workers(workers).cache_capacity(8).build());
            let off = steady_per_solve(&off_solver, &sys, solves, reps);

            let on_solver = EngineSolver::new(
                Engine::builder()
                    .workers(workers)
                    .cache_capacity(8)
                    .profiling_default()
                    .build(),
            );
            let on = steady_per_solve(&on_solver, &sys, solves, reps);
            let sites = on_solver
                .engine()
                .recent_profiles()
                .last()
                .map_or(0, |p| p.spans.len() as u64 + p.dropped);

            ProfileOverheadPoint {
                kind,
                rows: sys.l.n(),
                sites,
                off,
                on,
            }
        })
        .collect()
}

/// Prices the disarmed deposit check directly: nanoseconds per branch on
/// a black-boxed `Option<&ProfArena>::None` — the entire per-site bill
/// when the engine was built without profiling.
pub fn disarmed_check_cost(iters: u64) -> f64 {
    let mut taken = 0u64;
    let start = Instant::now();
    for _ in 0..iters.max(1) {
        if std::hint::black_box(None::<&ProfArena>).is_some() {
            taken += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(std::hint::black_box(taken), 0);
    elapsed.as_secs_f64() * 1e9 / iters.max(1) as f64
}

/// Renders the comparison as the machine-readable `BENCH_profile.json`.
pub fn to_json(points: &[ProfileOverheadPoint], workers: usize, check_ns: f64) -> String {
    let mut out = String::from("{\n");
    for p in points {
        out.push_str(&format!(
            "  {:?}: {{\"off_ns\": {}, \"on_ns\": {}, \"overhead\": {:.4}, \"disarmed_overhead\": {:.6}, \"rows\": {}, \"sites\": {}}},\n",
            p.kind.name(),
            p.off.as_nanos(),
            p.on.as_nanos(),
            p.armed_overhead(),
            p.disarmed_overhead(check_ns),
            p.rows,
            p.sites,
        ));
    }
    out.push_str(&format!(
        "  \"_meta\": {{\"workers\": {workers}, \"disarmed_check_ns\": {check_ns:.4}, \"bound\": {DISARMED_OVERHEAD_BOUND}, \"armed_bound\": {ARMED_OVERHEAD_BOUND}}}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_points_measure_both_engines() {
        // Timing ratios are reported, not asserted (CI noise) — what must
        // hold structurally: both engines solved to completion and the
        // armed one actually harvested profiles.
        let points = profile_overhead(2, &[ProblemKind::FivePt], 3, 1);
        assert_eq!(points.len(), 1);
        assert!(points[0].off > Duration::ZERO);
        assert!(points[0].on > Duration::ZERO);
    }

    #[test]
    fn disarmed_check_is_sub_nanosecond_scale() {
        // A disarmed deposit site is one branch on a stack-local None.
        let ns = disarmed_check_cost(1_000_000);
        assert!(ns < 100.0, "disarmed is_some() cost {ns} ns/branch");
    }

    #[test]
    fn disarmed_overhead_formula_scales_with_sites() {
        let p = ProfileOverheadPoint {
            kind: ProblemKind::FivePt,
            rows: 1_000,
            sites: 1_000,
            off: Duration::from_micros(100),
            on: Duration::from_micros(100),
        };
        // 1000 sites at 1ns over a 100µs solve = 1% bill.
        let over = p.disarmed_overhead(1.0);
        assert!((over - 1.01).abs() < 1e-9, "{over}");
    }
}
