//! Static-pick vs. adaptive-pick: what the feedback loop is worth when
//! the cost model is wrong about the machine.
//!
//! Both engines are seeded with the same **deliberately mispriced** cost
//! model — busy-wait polls priced absurdly expensive, barriers and
//! pre/post overheads priced nearly free — under which static selection
//! picks the wavefront for every Table 1 structure. The static engine is
//! stuck with that call; the adaptive engine watches its own solves,
//! notices the observed cost diverging from the prediction (the barrier
//! bill is real; on an oversubscribed host it is enormous), refines the
//! model from the measurements, and promotes whatever variant the
//! *measured* comparison favors. The experiment reports the steady-state
//! per-solve cost of each engine afterwards, plus the selections — and
//! every measured solve is asserted bit-identical to the sequential
//! oracle, so adaptation is provably a pure performance decision.
//!
//! Selection assertions are additionally taken at an explicit 4-worker
//! pricing context (`ThreadPool::new(4)`): the benchmark may run on a
//! 1-core container, where host-sized pricing says nothing about the
//! multicore trade-off.
//!
//! The module also measures what `sim::calibrate` costs at engine build
//! time against one cold solve — the input to the ROADMAP's
//! calibrate-by-default decision (see [`calibration_cost`]).

use doacross_engine::{AdaptiveConfig, Engine};
use doacross_par::ThreadPool;
use doacross_plan::{PlanVariant, Planner};
use doacross_sim::CostModel;
use doacross_sparse::{Problem, ProblemKind};
use doacross_trisolve::TriSolveLoop;
use std::time::{Duration, Instant};

/// Workers both engines run with — fixed (not host-sized) so the numbers
/// are comparable across hosts, and > 1 so the synchronizing variants
/// actually synchronize.
pub const WORKERS: usize = 2;

/// The mispricing under test (see module docs).
pub fn mispriced_model() -> CostModel {
    CostModel {
        wait_poll: 500.0,
        barrier: 0.001,
        post_per_iter: 0.01,
        region_dispatch: 1.0,
        ..CostModel::multimax()
    }
}

/// Policy knobs tightened for a benchmark-scale solve budget (the
/// defaults are tuned for long-lived services).
pub fn bench_policy() -> AdaptiveConfig {
    AdaptiveConfig {
        min_samples: 4,
        eval_interval: 5,
        divergence: 1.3,
        hysteresis: 1.05,
        max_trials: 3,
        confidence: 4,
    }
}

/// One structure's static-vs-adaptive outcome.
#[derive(Debug, Clone)]
pub struct AdaptivePoint {
    /// Which Table 1 problem the structure came from.
    pub kind: ProblemKind,
    /// Rows (= iterations) in the triangular system.
    pub rows: usize,
    /// What the mispriced model picks statically at [`WORKERS`].
    pub static_variant: PlanVariant,
    /// What the adaptive engine is serving after the adaptation budget.
    pub adaptive_variant: PlanVariant,
    /// What the mispriced model picks at an explicit 4-worker context.
    pub static_at_4: PlanVariant,
    /// Steady-state per-solve wall time of the static engine.
    pub static_ns: Duration,
    /// Steady-state per-solve wall time of the adaptive engine, after
    /// adaptation.
    pub adaptive_ns: Duration,
    /// Trials the adaptive engine started for this workload.
    pub trials: u64,
    /// Promotions committed.
    pub promotions: u64,
    /// Demotions (trial rollbacks).
    pub demotions: u64,
    /// Telemetry samples recorded.
    pub samples: u64,
}

impl AdaptivePoint {
    /// How much cheaper the adaptive engine's steady state is (> 1 =
    /// adaptation paid off).
    pub fn speedup(&self) -> f64 {
        self.static_ns.as_secs_f64() / self.adaptive_ns.as_secs_f64().max(1e-12)
    }
}

fn per_solve<F: FnMut()>(solves: usize, reps: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..solves.max(1) {
            f();
        }
        best = best.min(start.elapsed() / solves.max(1) as u32);
    }
    best
}

/// Runs the comparison on each problem: `adaptation_solves` solves of
/// warm-up/adaptation on the adaptive engine, then `solves × reps`
/// measured solves on both engines (minimum of rep means), every result
/// asserted against the sequential forward-solve.
pub fn adaptive_comparison(
    kinds: &[ProblemKind],
    adaptation_solves: usize,
    solves: usize,
    reps: usize,
) -> Vec<AdaptivePoint> {
    let four = ThreadPool::new(4);
    kinds
        .iter()
        .map(|&kind| {
            let sys = Problem::build(kind).triangular_system();
            let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
            let expect = sys.l.forward_solve(&sys.rhs);

            let static_engine = Engine::builder()
                .workers(WORKERS)
                .planner(Planner::with_costs(mispriced_model()))
                .build();
            let adaptive_engine = Engine::builder()
                .workers(WORKERS)
                .planner(Planner::with_costs(mispriced_model()))
                .adaptive_config(bench_policy())
                .build();

            let static_variant = static_engine.prepare(&loop_).expect("plannable").variant();
            let static_at_4 = Planner::with_costs(mispriced_model())
                .plan(&four, &loop_)
                .expect("plannable")
                .variant();

            // Adaptation budget: the adaptive engine watches itself.
            for _ in 0..adaptation_solves {
                let mut y = vec![0.0; sys.n()];
                adaptive_engine.run(&loop_, &mut y).expect("solvable");
                assert_eq!(y, expect, "{}: adaptation run", kind.name());
            }
            let adaptive_variant = adaptive_engine
                .prepare(&loop_)
                .expect("plannable")
                .variant();

            // Steady state, both engines, bit-identity asserted.
            let static_ns = per_solve(solves, reps, || {
                let mut y = vec![0.0; sys.n()];
                static_engine.run(&loop_, &mut y).expect("solvable");
                assert_eq!(y, expect, "{}: static run", kind.name());
            });
            let adaptive_ns = per_solve(solves, reps, || {
                let mut y = vec![0.0; sys.n()];
                adaptive_engine.run(&loop_, &mut y).expect("solvable");
                assert_eq!(y, expect, "{}: adaptive run", kind.name());
            });

            let stats = adaptive_engine.adaptive_stats().expect("adaptive engine");
            let totals = adaptive_engine.telemetry_totals().expect("adaptive engine");
            AdaptivePoint {
                kind,
                rows: sys.n(),
                static_variant,
                adaptive_variant,
                static_at_4,
                static_ns,
                adaptive_ns,
                trials: stats.trials,
                promotions: stats.promotions,
                demotions: stats.demotions,
                samples: totals.samples,
            }
        })
        .collect()
}

/// The calibrate-by-default inputs: what one `sim::calibrate` pass (at
/// the engine builder's repetition count) costs, next to one cold
/// first-solve (plan build + execute) of a Table 1 structure. The
/// ROADMAP rule: flip calibration on by default only if it costs less
/// than one cold solve — regenerate with the `adaptive` bin and read the
/// decision off the printed ratio.
pub fn calibration_cost(kind: ProblemKind) -> (Duration, Duration) {
    let calibrate = {
        let start = Instant::now();
        let model = doacross_sim::calibrate(doacross_engine::builder::CALIBRATION_REPS);
        std::hint::black_box(&model);
        start.elapsed()
    };
    let cold_solve = {
        let sys = Problem::build(kind).triangular_system();
        let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
        let engine = Engine::builder().workers(WORKERS).build();
        let mut y = vec![0.0; sys.n()];
        let start = Instant::now();
        engine.run(&loop_, &mut y).expect("solvable");
        let elapsed = start.elapsed();
        assert_eq!(y, sys.l.forward_solve(&sys.rhs));
        elapsed
    };
    (calibrate, cold_solve)
}

/// Renders the comparison as the machine-readable JSON the perf
/// trajectory is tracked with across PRs (`BENCH_adaptive.json`).
pub fn to_json(points: &[AdaptivePoint], calibrate: Duration, cold_solve: Duration) -> String {
    let mut out = String::from("{\n");
    for p in points.iter() {
        out.push_str(&format!(
            "  \"{}\": {{\"static_ns\": {}, \"adaptive_ns\": {}, \"static_variant\": \"{}\", \
             \"adaptive_variant\": \"{}\", \"static_at_4\": \"{}\", \"rows\": {}, \
             \"trials\": {}, \"promotions\": {}, \"demotions\": {}, \"samples\": {}}},\n",
            p.kind.name(),
            p.static_ns.as_nanos(),
            p.adaptive_ns.as_nanos(),
            p.static_variant,
            p.adaptive_variant,
            p.static_at_4,
            p.rows,
            p.trials,
            p.promotions,
            p.demotions,
            p.samples,
        ));
    }
    out.push_str(&format!(
        "  \"_meta\": {{\"workers\": {}, \"calibrate_ns\": {}, \"cold_solve_ns\": {}}}\n",
        WORKERS,
        calibrate.as_nanos(),
        cold_solve.as_nanos(),
    ));
    out.push('}');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mispriced_model_statically_picks_the_wavefront() {
        // The premise of the experiment: under the seeded mispricing,
        // static selection chooses the wavefront for the Table 1
        // structures at both pricing contexts.
        let planner = Planner::with_costs(mispriced_model());
        let two = ThreadPool::new(WORKERS);
        let four = ThreadPool::new(4);
        for kind in [ProblemKind::FivePt, ProblemKind::SevenPt] {
            let sys = Problem::build(kind).triangular_system();
            let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
            for pool in [&two, &four] {
                let plan = planner.plan(pool, &loop_).expect("plannable");
                assert_eq!(
                    plan.variant(),
                    PlanVariant::Wavefront,
                    "{} at p={}: {:?}",
                    kind.name(),
                    pool.threads(),
                    plan.costs()
                );
            }
        }
    }

    #[test]
    fn comparison_adapts_and_stays_bit_identical() {
        // Small budget: enough for at least one evaluation; bit-identity
        // is asserted inside. Timings are reported, not asserted.
        let points = adaptive_comparison(&[ProblemKind::FivePt], 12, 2, 1);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!(p.static_variant, PlanVariant::Wavefront);
        assert!(p.samples >= 12, "{p:?}");
        assert!(p.static_ns > Duration::ZERO && p.adaptive_ns > Duration::ZERO);
    }

    #[test]
    fn json_is_well_formed_enough_to_track() {
        let points = adaptive_comparison(&[ProblemKind::FivePt], 6, 1, 1);
        let json = to_json(
            &points,
            Duration::from_millis(40),
            Duration::from_micros(300),
        );
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"5-PT\""));
        assert!(json.contains("static_ns"));
        assert!(json.contains("adaptive_ns"));
        assert!(json.contains("_meta"));
        assert!(json.contains("calibrate_ns"));
        assert!(!json.contains(",\n}"), "no trailing comma");
    }
}
