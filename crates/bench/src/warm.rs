//! Cold-start vs. warm-start first solves: what plan persistence buys.
//!
//! The amortization experiment ([`crate::amortize`]) measures reuse
//! *within* one process; this one measures the restart gap persistence
//! closes. A "process" here is an [`Engine`]: the **cold** engine's first
//! solve of a structure pays fingerprint + census + cost model +
//! inspection capture, the **warm** engine restores a serialized
//! [`PlanStore`] (the full byte round trip, as a restarted service would)
//! and its first solve is a cache hit. Both then produce bit-identical
//! results, so the entire difference is preprocessing.

use doacross_core::PlanProvenance;
use doacross_engine::{Engine, PlanStore};
use doacross_sparse::{Problem, ProblemKind, TriSystem};
use doacross_trisolve::EngineSolver;
use std::time::{Duration, Instant};

/// First-solve timings for one structure, cold vs. warm-started.
#[derive(Debug, Clone, Copy)]
pub struct WarmStartPoint {
    /// Which Table 1 problem the structure came from.
    pub kind: ProblemKind,
    /// First solve on a cold engine (planning included).
    pub cold_first: Duration,
    /// First solve on a warm-started engine (restore *not* included —
    /// that cost is paid at boot, off the request path).
    pub warm_first: Duration,
    /// Deserializing + restoring the store (the boot-time cost).
    pub restore: Duration,
    /// Serialized store size in bytes.
    pub store_bytes: usize,
}

impl WarmStartPoint {
    /// How much faster the warm first solve is.
    pub fn speedup(&self) -> f64 {
        self.cold_first.as_secs_f64() / self.warm_first.as_secs_f64().max(1e-12)
    }
}

fn engine(workers: usize) -> Engine {
    Engine::builder().workers(workers).cache_capacity(8).build()
}

fn first_solve(
    solver: &EngineSolver,
    sys: &TriSystem,
    expect: PlanProvenance,
) -> (Duration, Vec<f64>) {
    let start = Instant::now();
    let (y, stats) = solver.solve(&sys.l, &sys.rhs).expect("valid system");
    let elapsed = start.elapsed();
    assert_eq!(stats.provenance, expect, "{}", sys.kind.name());
    (elapsed, y)
}

/// Measures the cold vs. warm first solve for each problem, taking the
/// minimum over `reps` repetitions (each repetition uses fresh engines,
/// so every "first solve" really is one).
pub fn warm_start_comparison(
    workers: usize,
    kinds: &[ProblemKind],
    reps: usize,
) -> Vec<WarmStartPoint> {
    kinds
        .iter()
        .map(|&kind| {
            let sys = Problem::build(kind).triangular_system();

            // Seed engine: plan once, serialize — the previous "process".
            let seed = engine(workers);
            EngineSolver::new(seed.clone())
                .solve(&sys.l, &sys.rhs)
                .expect("valid system");
            let bytes = seed.snapshot().to_bytes();

            let mut point = WarmStartPoint {
                kind,
                cold_first: Duration::MAX,
                warm_first: Duration::MAX,
                restore: Duration::MAX,
                store_bytes: bytes.len(),
            };
            for _ in 0..reps.max(1) {
                let cold_solver = EngineSolver::new(engine(workers));
                let (cold, y_cold) = first_solve(&cold_solver, &sys, PlanProvenance::PlanCold);

                let warm_engine = engine(workers);
                let restore_start = Instant::now();
                let store = PlanStore::from_bytes(&bytes).expect("own bytes");
                assert_eq!(warm_engine.warm_from(&store), 1);
                let restore = restore_start.elapsed();
                let warm_solver = EngineSolver::new(warm_engine);
                let (warm, y_warm) = first_solve(&warm_solver, &sys, PlanProvenance::PlanCached);

                assert_eq!(y_cold, y_warm, "persistence never changes results");
                point.cold_first = point.cold_first.min(cold);
                point.warm_first = point.warm_first.min(warm);
                point.restore = point.restore.min(restore);
            }
            point
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_first_solves_hit_and_match_cold_results() {
        // Provenance and result equality are asserted inside the
        // measurement; timing itself is reported, not asserted (CI noise).
        let points = warm_start_comparison(2, &[ProblemKind::FivePt], 1);
        assert_eq!(points.len(), 1);
        assert!(points[0].store_bytes > 0);
        assert!(points[0].warm_first > Duration::ZERO);
    }
}
