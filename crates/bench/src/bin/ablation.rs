//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. Scheduling policy & chunk size (self-scheduling vs. static).
//! 2. Inspector elimination (§2.3 linear subscript) and light
//!    postprocessing.
//! 3. Strip-mined (blocked) execution vs. flat (§2.3 memory variant).
//! 4. Wait strategy on the host runtime.
//! 5. Processor-count scaling of both Table 1 solvers.
//!
//! Usage: `cargo run -p doacross-bench --release --bin ablation`

use doacross_bench::report::Table;
use doacross_core::{BlockedDoacross, Doacross, TestLoop};
use doacross_par::{ThreadPool, WaitStrategy};
use doacross_sim::{Machine, SimOptions};
use doacross_sparse::{Problem, ProblemKind};
use doacross_trisolve::{SolvePlan, TriSolveLoop};
use std::time::Instant;

fn main() {
    chunk_sweep();
    inspector_elimination();
    blocked_vs_flat();
    wait_strategies();
    processor_scaling();
    sync_granularity();
}

/// Simulated: how the self-scheduling chunk size trades grab overhead
/// against load balance and dependence stalling.
fn chunk_sweep() {
    println!("Ablation 1 — self-scheduling chunk size (simulated, 16 processors)\n");
    let machine = Machine::multimax();
    let mut t = Table::new([
        "chunk",
        "eff (L=7 doall)",
        "eff (L=8, deps)",
        "stalls (L=8)",
    ]);
    for chunk in [1usize, 2, 4, 8, 16, 64] {
        let opts = SimOptions {
            chunk,
            ..Default::default()
        };
        let doall = machine.simulate_doacross(&TestLoop::new(10_000, 1, 7), None, opts);
        let deps = machine.simulate_doacross(&TestLoop::new(10_000, 1, 8), None, opts);
        t.row([
            chunk.to_string(),
            format!("{:.3}", doall.efficiency),
            format!("{:.3}", deps.efficiency),
            deps.stalls.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Larger chunks amortize the claim counter but turn short-distance");
    println!("dependencies into intra-chunk serial chains.\n");
}

/// Simulated: the §2.3 inspector-elimination and light-post variants on the
/// Table 1 solve (5-PT).
fn inspector_elimination() {
    println!("Ablation 2 — §2.3 inspector elimination (simulated, 5-PT solve)\n");
    let machine = Machine::multimax();
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();
    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
    let plan = SolvePlan::for_matrix(&sys.l);
    let mut t = Table::new(["configuration", "T_par (kc)", "efficiency"]);
    for (name, insp, light) in [
        ("full inspector + copy-back", true, false),
        ("full inspector, light post", true, true),
        ("no inspector (linear a(i)=i)", false, false),
        ("no inspector, light post", false, true),
    ] {
        let r = machine.simulate_doacross(
            &loop_,
            Some(&plan.order),
            SimOptions {
                chunk: 1,
                include_inspector: insp,
                light_post: light,
            },
        );
        t.row([
            name.to_string(),
            format!("{:.1}", r.t_par / 1e3),
            format!("{:.3}", r.efficiency),
        ]);
    }
    println!("{}", t.render());
}

/// Host: blocked (strip-mined) vs. flat execution of the Figure 4 loop —
/// the §2.3 memory/performance trade.
fn blocked_vs_flat() {
    println!("Ablation 3 — strip-mined vs. flat doacross (host threads)\n");
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    let pool = ThreadPool::new(workers);
    let loop_ = TestLoop::new(50_000, 3, 8);
    let y0 = loop_.initial_y();
    let mut t = Table::new(["variant", "scratch (elems)", "best time (µs)"]);

    let mut flat = Doacross::for_loop(&loop_);
    let mut best = u128::MAX;
    for _ in 0..5 {
        let mut y = y0.clone();
        let start = Instant::now();
        flat.run(&pool, &loop_, &mut y).expect("valid loop");
        best = best.min(start.elapsed().as_micros());
    }
    t.row([
        "flat".to_string(),
        flat.data_len().to_string(),
        best.to_string(),
    ]);

    for bs in [1_000usize, 5_000, 25_000] {
        let mut blocked = BlockedDoacross::new(bs).expect("nonzero block");
        let mut best = u128::MAX;
        for _ in 0..5 {
            let mut y = y0.clone();
            let start = Instant::now();
            blocked.run(&pool, &loop_, &mut y).expect("valid loop");
            best = best.min(start.elapsed().as_micros());
        }
        t.row([
            format!("blocked (B={bs})"),
            blocked.scratch_capacity().to_string(),
            best.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Blocking shrinks the scratch arrays (the §2.3 memory claim) at the");
    println!("price of one dispatch + pre/post sweep per block.\n");
}

/// Host: wait-strategy comparison on a dependence-heavy loop.
fn wait_strategies() {
    println!("Ablation 4 — busy-wait strategy (host threads, L=4 chain)\n");
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(2);
    let pool = ThreadPool::new(workers);
    let loop_ = TestLoop::new(20_000, 1, 4);
    let y0 = loop_.initial_y();
    let mut t = Table::new(["strategy", "best time (µs)", "wait polls"]);
    for (name, wait) in [
        ("spin", WaitStrategy::Spin),
        ("spin-yield(128)", WaitStrategy::SpinYield { spins: 128 }),
        ("backoff(64)", WaitStrategy::Backoff { max_spin_batch: 64 }),
    ] {
        let mut rt = Doacross::for_loop(&loop_);
        rt.config_mut().wait = wait;
        let mut best = u128::MAX;
        let mut polls = 0u64;
        for _ in 0..5 {
            let mut y = y0.clone();
            let start = Instant::now();
            let stats = rt.run(&pool, &loop_, &mut y).expect("valid loop");
            if start.elapsed().as_micros() < best {
                best = start.elapsed().as_micros();
                polls = stats.wait_polls;
            }
        }
        t.row([name.to_string(), best.to_string(), polls.to_string()]);
    }
    println!("{}", t.render());
}

/// Simulated: efficiency of both Table 1 solvers as the machine grows.
fn processor_scaling() {
    println!("Ablation 5 — processor scaling (simulated, 5-PT solve)\n");
    let sys = Problem::build(ProblemKind::FivePt).triangular_system();
    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
    let plan = SolvePlan::for_matrix(&sys.l);
    let opts = doacross_bench::table1::solve_sim_options();
    let mut t = Table::new([
        "p",
        "eff plain",
        "eff rearranged",
        "speedup plain",
        "speedup rearr",
    ]);
    for p in [1usize, 2, 4, 8, 16, 32, 64] {
        let machine = Machine::new(p);
        let plain = machine.simulate_doacross(&loop_, None, opts);
        let re = machine.simulate_doacross(&loop_, Some(&plan.order), opts);
        t.row([
            p.to_string(),
            format!("{:.3}", plain.efficiency),
            format!("{:.3}", re.efficiency),
            format!("{:.2}", plain.speedup()),
            format!("{:.2}", re.speedup()),
        ]);
    }
    println!("{}", t.render());
    println!("The reordering's advantage grows with p until the wavefront width");
    println!("(avg ||ism) is exhausted.\n");
}

/// Simulated: fine-grained flag synchronization (the paper's doacross) vs.
/// coarse barrier synchronization (level scheduling) over the same
/// wavefront preprocessing — the design space the construct occupies.
fn sync_granularity() {
    println!("Ablation 6 — flag sync (doacross) vs. barrier sync (level-scheduled), simulated\n");
    let machine = Machine::multimax();
    let opts = doacross_bench::table1::solve_sim_options();
    let mut t = Table::new([
        "Problem",
        "wavefronts",
        "doacross+doconsider (kc)",
        "level-scheduled (kc)",
        "winner",
    ]);
    for kind in ProblemKind::all() {
        let sys = Problem::build(kind).triangular_system();
        let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
        let plan = SolvePlan::for_matrix(&sys.l);
        let doacross = machine.simulate_doacross(&loop_, Some(&plan.order), opts);
        let level = machine.simulate_level_scheduled(&loop_, &plan.order, &plan.histogram);
        t.row([
            sys.kind.name().to_string(),
            plan.critical_path().to_string(),
            format!("{:.1}", doacross.t_par / 1e3),
            format!("{:.1}", level.t_par / 1e3),
            if doacross.t_par <= level.t_par {
                "doacross".to_string()
            } else {
                "level".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!("Many narrow wavefronts make the barrier-per-level cost dominate;");
    println!("the doacross's per-element flags only pay for dependencies that exist.\n");
}
