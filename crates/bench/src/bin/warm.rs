//! Prints the cold-start vs. warm-start first-solve comparison: the
//! restart gap plan persistence closes, per Table 1 structure.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin warm`.

use doacross_bench::report::Table;
use doacross_bench::warm::warm_start_comparison;
use doacross_sparse::ProblemKind;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    println!("cold vs. warm-started first solve on {workers} host threads");
    println!("(warm = plan store deserialized from bytes before the solve; min of 5 reps)\n");

    let mut table = Table::new([
        "problem",
        "cold first solve",
        "warm first solve",
        "speedup",
        "restore",
        "store size",
    ]);
    for point in warm_start_comparison(workers, &ProblemKind::all(), 5) {
        table.row(vec![
            point.kind.name().into(),
            format!("{:?}", point.cold_first),
            format!("{:?}", point.warm_first),
            format!("{:.2}x", point.speedup()),
            format!("{:?}", point.restore),
            format!("{} B", point.store_bytes),
        ]);
    }
    print!("{}", table.render());
}
