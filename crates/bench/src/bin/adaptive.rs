//! Prints the static-pick vs. adaptive-pick comparison on the five
//! Table 1 structures under a deliberately mispriced cost model, writes
//! the machine-readable `BENCH_adaptive.json`, and reports the
//! calibrate-by-default measurement (calibration cost vs. one cold
//! solve).
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin adaptive`.

use doacross_bench::adaptive::{adaptive_comparison, calibration_cost, to_json, WORKERS};
use doacross_bench::report::Table;
use doacross_sparse::ProblemKind;

fn main() {
    println!(
        "static vs. adaptive selection under a mispriced cost model ({WORKERS} workers, \
         host parallelism {})",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    println!(
        "(same mispriced model seeds both engines; the adaptive one watches its own solves, \
         refines, and promotes on measurement)\n"
    );

    let points = adaptive_comparison(&ProblemKind::all(), 30, 20, 3);
    let mut table = Table::new([
        "problem",
        "rows",
        "static pick",
        "adaptive pick",
        "static/solve",
        "adaptive/solve",
        "speedup",
        "trials",
        "promoted",
        "demoted",
        "pick at p=4",
    ]);
    for p in &points {
        table.row(vec![
            p.kind.name().into(),
            p.rows.to_string(),
            p.static_variant.to_string(),
            p.adaptive_variant.to_string(),
            format!("{:?}", p.static_ns),
            format!("{:?}", p.adaptive_ns),
            format!("{:.2}x", p.speedup()),
            p.trials.to_string(),
            p.promotions.to_string(),
            p.demotions.to_string(),
            p.static_at_4.to_string(),
        ]);
    }
    print!("{}", table.render());

    println!("\ncalibrate-by-default measurement (ROADMAP decision input):");
    let (calibrate, cold_solve) = calibration_cost(ProblemKind::FivePt);
    let ratio = calibrate.as_secs_f64() / cold_solve.as_secs_f64().max(1e-12);
    println!("  sim::calibrate (builder reps) : {calibrate:?}");
    println!("  one cold first solve (5-PT)   : {cold_solve:?}");
    println!(
        "  ratio                         : {ratio:.1}x — {}",
        if ratio < 1.0 {
            "calibration is cheaper than a cold solve: flip the default"
        } else {
            "calibration costs many cold solves: keep it opt-in (and persisted)"
        }
    );

    let json = to_json(&points, calibrate, cold_solve);
    let path = "BENCH_adaptive.json";
    std::fs::write(path, &json).expect("write BENCH_adaptive.json");
    println!("\nwrote {path}");
}
