//! Prints the cached-doacross vs. wavefront steady-state comparison on
//! the five Table 1 structures, writes the machine-readable
//! `BENCH_wavefront.json`, and reports the chunked self-scheduling
//! ablation.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin wavefront`.

use doacross_bench::report::Table;
use doacross_bench::wavefront::{chunking_comparison, to_json, wavefront_comparison};
use doacross_sparse::ProblemKind;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    println!("cached flat doacross vs. level-scheduled wavefront on {workers} host threads");
    println!("(both from prebuilt artifacts; per-solve steady state, min of 5 reps x 20 solves)\n");

    let points = wavefront_comparison(workers, &ProblemKind::all(), 20, 5);
    let mut table = Table::new([
        "problem",
        "rows",
        "levels",
        "doacross/solve",
        "wavefront/solve",
        "speedup",
        "polls/solve",
        "planner picks",
        "picks at p=4",
    ]);
    for p in &points {
        table.row(vec![
            p.kind.name().into(),
            p.rows.to_string(),
            p.levels.to_string(),
            format!("{:?}", p.doacross),
            format!("{:?}", p.wavefront),
            format!("{:.2}x", p.speedup()),
            p.doacross_polls.to_string(),
            p.selected.to_string(),
            p.selected_at_4.to_string(),
        ]);
    }
    print!("{}", table.render());

    let json = to_json(&points);
    let path = "BENCH_wavefront.json";
    std::fs::write(path, &json).expect("write BENCH_wavefront.json");
    println!("\nwrote {path}");

    println!("\nchunked self-scheduling ablation (wavefront levels, 7-PT):");
    let (unit, adaptive) = chunking_comparison(workers, ProblemKind::SevenPt, 20, 5);
    println!("  chunk = 1 (Multimax)  : {unit:?}/solve");
    println!("  adaptive level chunks : {adaptive:?}/solve");
    println!(
        "  contention saved      : {:.1}%",
        100.0 * (1.0 - adaptive.as_secs_f64() / unit.as_secs_f64().max(1e-12))
    );
}
