//! Prints what the solve profiler costs — warmed per-solve time without
//! profiling vs. with profiling armed on the five Table 1 structures,
//! plus the directly-priced disarmed branch — and writes the
//! machine-readable `BENCH_profile.json`.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin profile`.

use doacross_bench::profile::{
    disarmed_check_cost, profile_overhead, to_json, ARMED_OVERHEAD_BOUND, DISARMED_OVERHEAD_BOUND,
};
use doacross_bench::report::Table;
use doacross_sparse::ProblemKind;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    println!("solve profiler off vs. armed, warmed per-solve cost on {workers} host threads");
    println!("(min of 5 reps x 20 solves; separate engines — profiling is a build-time choice)\n");

    let check_ns = disarmed_check_cost(10_000_000);
    println!("disarmed path: {check_ns:.3} ns per Option branch (the whole per-site bill)\n");

    let points = profile_overhead(workers, &ProblemKind::all(), 20, 5);
    let mut table = Table::new([
        "problem",
        "rows",
        "off/solve",
        "armed/solve",
        "armed",
        "disarmed bill",
        "sites",
    ]);
    for p in &points {
        let disarmed = p.disarmed_overhead(check_ns);
        table.row(vec![
            p.kind.name().into(),
            p.rows.to_string(),
            format!("{:?}", p.off),
            format!("{:?}", p.on),
            format!("{:.3}x", p.armed_overhead()),
            format!("{disarmed:.5}x"),
            p.sites.to_string(),
        ]);
        assert!(
            disarmed <= DISARMED_OVERHEAD_BOUND,
            "{}: disarmed deposit sites bill {disarmed:.5}x per solve (bound {DISARMED_OVERHEAD_BOUND}x)",
            p.kind.name(),
        );
        assert!(
            p.armed_overhead() <= ARMED_OVERHEAD_BOUND,
            "{}: armed profiling costs {:.3}x unprofiled (bound {ARMED_OVERHEAD_BOUND}x)",
            p.kind.name(),
            p.armed_overhead()
        );
    }
    print!("{}", table.render());

    let worst_armed = points
        .iter()
        .map(|p| p.armed_overhead())
        .fold(f64::MIN, f64::max);
    let worst_disarmed = points
        .iter()
        .map(|p| p.disarmed_overhead(check_ns))
        .fold(f64::MIN, f64::max);
    println!(
        "\nworst-case disarmed bill: {worst_disarmed:.5}x (bound {DISARMED_OVERHEAD_BOUND}x); \
         worst-case armed: {worst_armed:.3}x (bound {ARMED_OVERHEAD_BOUND}x)"
    );

    let json = to_json(&points, workers, check_ns);
    let path = "BENCH_profile.json";
    std::fs::write(path, &json).expect("write BENCH_profile.json");
    println!("wrote {path}");
}
