//! Dependence census of the Figure 4 test loop across the paper's
//! parameter grid — the ground truth behind Figure 6's shape (odd `L`:
//! doall; even `L`: true dependencies at distance `L/2 − j`).
//!
//! Usage: `cargo run -p doacross-bench --release --bin census`

use doacross_bench::report::Table;
use doacross_core::TestLoop;

fn main() {
    let n = 10_000;
    println!("Dependence census of the Figure 4 test loop (N = {n})\n");
    for m in [1usize, 5] {
        println!("M = {m}:");
        let mut t = Table::new([
            "L",
            "true deps",
            "anti deps",
            "intra",
            "unwritten",
            "min dist",
            "max dist",
            "doall?",
        ]);
        for l in 1..=14 {
            let c = TestLoop::new(n, m, l).census();
            t.row([
                l.to_string(),
                c.true_deps.to_string(),
                c.anti_deps.to_string(),
                c.intra.to_string(),
                c.unwritten.to_string(),
                c.min_true_distance.map_or("-".into(), |d| d.to_string()),
                c.max_true_distance.map_or("-".into(), |d| d.to_string()),
                if c.is_doall() { "yes" } else { "no" }.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    println!("Odd L: every reference targets an element no iteration writes —");
    println!("the loop is a doall and measured efficiency is pure overhead.");
    println!("Even L: term j is a true dependency at distance L/2 − j (j < L/2),");
    println!("so larger L stretches dependencies and efficiency recovers.");
}
