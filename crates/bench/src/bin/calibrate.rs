//! Calibrates the simulator's cost model against this host and compares
//! the result with the Encore Multimax/320 preset — showing how the
//! construct's overhead ratios have shifted across 35 years of hardware.
//!
//! Usage: `cargo run -p doacross-bench --release --bin calibrate`

use doacross_bench::report::Table;
use doacross_core::TestLoop;
use doacross_sim::{calibrate, CostModel, Machine, SimOptions};

fn main() {
    println!("Calibrating cost model on this host (best of 7)...\n");
    let calibrated = calibrate(7);
    let host = &calibrated.model;
    let preset = CostModel::multimax();

    let mut t = Table::new([
        "cost (units of one sequential term)",
        "Multimax preset",
        "this host",
    ]);
    for (name, a, b) in [
        ("schedule_grab", preset.schedule_grab, host.schedule_grab),
        (
            "iteration_setup",
            preset.iteration_setup,
            host.iteration_setup,
        ),
        ("check", preset.check, host.check),
        ("term", preset.term, host.term),
        ("publish", preset.publish, host.publish),
        (
            "inspect_per_iter",
            preset.inspect_per_iter,
            host.inspect_per_iter,
        ),
        ("post_per_iter", preset.post_per_iter, host.post_per_iter),
        (
            "region_dispatch",
            preset.region_dispatch,
            host.region_dispatch,
        ),
        ("seq_iter", preset.seq_iter, host.seq_iter),
    ] {
        t.row([name.to_string(), format!("{a:.2}"), format!("{b:.2}")]);
    }
    println!("{}", t.render());
    println!("one host unit = {:.1} ns\n", calibrated.unit_ns);

    println!(
        "dependence-free efficiency (M=1): preset {:.3}, host {:.3}",
        preset.doall_efficiency(1),
        host.doall_efficiency(1)
    );
    println!(
        "dependence-free efficiency (M=5): preset {:.3}, host {:.3}\n",
        preset.doall_efficiency(5),
        host.doall_efficiency(5)
    );

    // What would the paper's Figure 6 odd-L plateau look like on a
    // 16-processor machine built from THIS host's cores?
    let machine = Machine {
        processors: 16,
        costs: calibrated.model,
    };
    let r1 = machine.simulate_doacross(&TestLoop::new(10_000, 1, 7), None, SimOptions::default());
    let r5 = machine.simulate_doacross(&TestLoop::new(10_000, 5, 7), None, SimOptions::default());
    println!("simulated 16x this-host machine, Figure 4 loop, odd L:");
    println!(
        "  M=1: efficiency {:.3}   M=5: efficiency {:.3}",
        r1.efficiency, r5.efficiency
    );
    println!("(paper's machine: 0.33 / 0.50 — note the inversion: a modern core runs the");
    println!(" plain loop at ~1 ns/term, so the construct's atomics and scheduling cost");
    println!(" relatively MORE than on the 13 MHz Multimax. The paper's overhead band was");
    println!(" a property of slow scalar cores; today the technique needs coarser grains");
    println!(" or larger bodies to amortize — one reason inspector/executor doacross");
    println!(" faded from practice.)");
}
