//! Prints the observability disabled-vs-enabled per-solve overhead on the
//! five Table 1 structures and writes the machine-readable
//! `BENCH_obs.json`.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin obs`.

use doacross_bench::obs::{disabled_check_cost, obs_overhead, to_json, ON_OVERHEAD_BOUND};
use doacross_bench::report::Table;
use doacross_sparse::ProblemKind;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    println!("observability off vs. on, warmed per-solve cost on {workers} host threads");
    println!("(min of 5 reps x 20 solves; both engines serve from cached plans)\n");

    let check_ns = disabled_check_cost(10_000_000);
    println!("disabled path: {check_ns:.3} ns per enabled() check (the whole per-event bill)\n");

    let points = obs_overhead(workers, &ProblemKind::all(), 20, 5);
    let mut table = Table::new([
        "problem",
        "rows",
        "obs off/solve",
        "obs on/solve",
        "overhead",
    ]);
    for p in &points {
        table.row(vec![
            p.kind.name().into(),
            p.rows.to_string(),
            format!("{:?}", p.off),
            format!("{:?}", p.on),
            format!("{:.3}x", p.overhead()),
        ]);
        assert!(
            p.overhead() <= ON_OVERHEAD_BOUND,
            "{}: observability on costs {:.3}x off (bound {ON_OVERHEAD_BOUND}x)",
            p.kind.name(),
            p.overhead()
        );
    }
    print!("{}", table.render());

    let worst = points.iter().map(|p| p.overhead()).fold(f64::MIN, f64::max);
    println!("\nworst-case enabled overhead: {worst:.3}x (bound {ON_OVERHEAD_BOUND}x)");

    let json = to_json(&points, workers, check_ns);
    let path = "BENCH_obs.json";
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}
