//! End-user tool: load a (general, square) matrix in Matrix Market
//! format, ILU(0)-factor it, and solve the unit lower-triangular system
//! with any of the library's solvers — the full §3.2 pipeline on a matrix
//! of your own.
//!
//! Usage:
//!   cargo run -p doacross-bench --release --bin solve -- MATRIX.mtx \
//!       [--solver seq|doacross|reordered|level|blocked] \
//!       [--workers N] [--reps R] [--block B]
//!
//! With no file argument, a built-in 63×63 five-point demo matrix is used.

use doacross_bench::report::Table;
use doacross_par::ThreadPool;
use doacross_sparse::{
    ilu0, io::read_matrix_market, stencil::five_point, CsrMatrix, TriangularMatrix,
};
use doacross_trisolve::{
    seq::time_sequential, verify::residual, BlockedSolver, DoacrossSolver, LevelScheduledSolver,
    ReorderedSolver, SolvePlan,
};
use std::io::BufReader;
use std::time::Instant;

struct Args {
    path: Option<String>,
    solver: String,
    workers: usize,
    reps: usize,
    block: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        path: None,
        solver: "all".to_string(),
        workers: std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(2),
        reps: 5,
        block: 256,
    };
    let mut it = std::env::args().skip(1);
    while let Some(tok) = it.next() {
        match tok.as_str() {
            "--solver" => args.solver = it.next().expect("--solver needs a value"),
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs a number")
            }
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--reps needs a number")
            }
            "--block" => {
                args.block = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--block needs a number")
            }
            other if !other.starts_with("--") => args.path = Some(other.to_string()),
            other => panic!("unknown option {other:?}"),
        }
    }
    args
}

fn load_matrix(path: &Option<String>) -> CsrMatrix {
    match path {
        Some(p) => {
            let file = std::fs::File::open(p).unwrap_or_else(|e| panic!("open {p:?}: {e}"));
            read_matrix_market(BufReader::new(file)).unwrap_or_else(|e| panic!("parse {p:?}: {e}"))
        }
        None => {
            eprintln!("(no matrix given: using a built-in 63x63 five-point demo operator)");
            five_point(63, 63, 42)
        }
    }
}

fn main() {
    let args = parse_args();
    let a = load_matrix(&args.path);
    assert_eq!(a.nrows(), a.ncols(), "matrix must be square");
    println!("A: {} x {} with {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    let t0 = Instant::now();
    let factors = ilu0(&a);
    let l = TriangularMatrix::from_strict_lower(&factors.l);
    println!(
        "ILU(0): {} strictly-lower dependencies in {:?}",
        l.nnz(),
        t0.elapsed()
    );
    let plan = SolvePlan::for_matrix(&l);
    println!(
        "dependence structure: {} wavefronts, average parallelism {:.1}\n",
        plan.critical_path(),
        plan.levels.average_parallelism()
    );

    // Manufactured RHS with known solution.
    let x_true: Vec<f64> = (0..l.n()).map(|i| 1.0 + (i % 7) as f64 * 0.125).collect();
    let rhs = l.matvec(&x_true);

    let pool = ThreadPool::new(args.workers);
    let mut table = Table::new(["solver", "best time (µs)", "residual", "vs seq"]);
    let (y_seq, t_seq) = time_sequential(&l, &rhs, args.reps);
    let run = |name: &str, f: &mut dyn FnMut() -> Vec<f64>, table: &mut Table| {
        let mut best = std::time::Duration::MAX;
        let mut y = Vec::new();
        for _ in 0..args.reps {
            let start = Instant::now();
            y = f();
            best = best.min(start.elapsed());
        }
        let r = residual(&l, &y, &rhs);
        table.row([
            name.to_string(),
            best.as_micros().to_string(),
            format!("{r:.2e}"),
            format!("{:.2}x", t_seq.as_secs_f64() / best.as_secs_f64()),
        ]);
    };

    table.row([
        "sequential".to_string(),
        t_seq.as_micros().to_string(),
        format!("{:.2e}", residual(&l, &y_seq, &rhs)),
        "1.00x".to_string(),
    ]);

    let want = |name: &str| args.solver == "all" || args.solver == name;
    if want("doacross") {
        let mut s = DoacrossSolver::new(l.n());
        run(
            "doacross",
            &mut || s.solve(&pool, &l, &rhs).expect("valid").0,
            &mut table,
        );
    }
    if want("reordered") {
        let mut s = ReorderedSolver::new(l.n());
        s.prepare(&l);
        run(
            "reordered",
            &mut || s.solve(&pool, &l, &rhs).expect("valid").0,
            &mut table,
        );
    }
    if want("level") {
        let mut s = LevelScheduledSolver::new();
        s.prepare(&l);
        run(
            "level-scheduled",
            &mut || s.solve(&pool, &l, &rhs).expect("valid").0,
            &mut table,
        );
    }
    if want("blocked") {
        let mut s = BlockedSolver::new(args.block).expect("nonzero block");
        run(
            &format!("blocked (B={})", args.block),
            &mut || s.solve(&pool, &l, &rhs).expect("valid").0,
            &mut table,
        );
    }
    if want("seq") && args.solver != "all" {
        // Sequential row already printed above.
    }
    println!("{}", table.render());
    println!(
        "({} workers; times best-of-{}; all solvers produce bit-identical results)",
        args.workers, args.reps
    );
}
