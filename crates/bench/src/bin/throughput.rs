//! Prints concurrent-tenant throughput through the multi-pool scheduler
//! and writes the machine-readable `BENCH_throughput.json`.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin throughput`.
//! On a multicore host this records real concurrent speedup; on a serial
//! host the asserted claim is the no-regression bound (multi-pool
//! per-solve ≤ 1.05× single-pool).

use doacross_bench::report::Table;
use doacross_bench::throughput::{
    batch_amortization, pool_overhead, tenant_throughput, to_json, POOL_OVERHEAD_BOUND,
    TENANT_COUNTS,
};
use doacross_engine::Engine;

fn main() {
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let pools = avail.clamp(2, 8);
    let engine = Engine::builder().workers(1).pools(pools).build();
    println!(
        "concurrent-tenant throughput: {} sub-pools x {} worker(s) on {avail} host thread(s)\n",
        engine.pools(),
        engine.threads()
    );

    const SOLVES_PER_TENANT: usize = 200;
    const REPS: usize = 5;
    let points: Vec<_> = TENANT_COUNTS
        .iter()
        .map(|&t| tenant_throughput(&engine, t, SOLVES_PER_TENANT, REPS))
        .collect();

    let mut table = Table::new(["tenants", "solves", "solves/sec", "per-solve"]);
    for p in &points {
        table.row(vec![
            p.tenants.to_string(),
            p.solves.to_string(),
            format!("{:.0}", p.solves_per_sec()),
            format!("{:?}", p.per_solve()),
        ]);
    }
    print!("{}", table.render());

    // The dispatcher's tax, with retries: scheduling noise on a loaded
    // host can spike one measurement, so the bound gets up to 5 attempts
    // at the (min-of-reps) ratio before failing.
    let mut single = std::time::Duration::MAX;
    let mut multi = std::time::Duration::MAX;
    let mut ratio = f64::MAX;
    for attempt in 1..=5 {
        let (s, m) = pool_overhead(pools, 400, REPS);
        single = single.min(s);
        multi = multi.min(m);
        ratio = multi.as_secs_f64() / single.as_secs_f64().max(1e-12);
        if ratio <= POOL_OVERHEAD_BOUND {
            break;
        }
        println!("pool overhead {ratio:.4}x over bound, retrying ({attempt}/5)...");
    }
    println!(
        "\ndispatcher tax: single-pool {single:?}/solve, {pools}-pool {multi:?}/solve ({ratio:.4}x)"
    );
    assert!(
        ratio <= POOL_OVERHEAD_BOUND,
        "multi-pool per-solve {ratio:.4}x single-pool exceeds bound {POOL_OVERHEAD_BOUND}x"
    );

    let (batch_serial, batch_batched) = batch_amortization(&engine, 16, REPS);
    println!(
        "batched submission: serial {batch_serial:?}/solve, batched {batch_batched:?}/solve \
         ({:.3}x)",
        batch_batched.as_secs_f64() / batch_serial.as_secs_f64().max(1e-12)
    );

    let json = to_json(
        &points,
        &engine,
        single,
        multi,
        batch_serial,
        batch_batched,
        true,
    );
    let path = "BENCH_throughput.json";
    std::fs::write(path, &json).expect("write BENCH_throughput.json");
    println!("wrote {path}");
}
