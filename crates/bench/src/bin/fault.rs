//! Prints what the fault-injection sites cost when nobody is injecting
//! faults — disarmed vs. armed-inert per-solve cost on the five Table 1
//! structures — and writes the machine-readable `BENCH_fault.json`.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin fault`.

use doacross_bench::fault::{
    disarmed_check_cost, fault_overhead, to_json, ARMED_INERT_BOUND, DISARMED_OVERHEAD_BOUND,
};
use doacross_bench::report::Table;
use doacross_sparse::ProblemKind;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    println!(
        "failpoint sites disarmed vs. armed-inert, warmed per-solve cost on {workers} host threads"
    );
    println!("(min of 5 reps x 20 solves; one engine serves both, only the registry differs)\n");

    let check_ns = disarmed_check_cost(10_000_000);
    println!(
        "disarmed path: {check_ns:.3} ns per hit(None) check (the whole per-iteration bill)\n"
    );

    let points = fault_overhead(workers, &ProblemKind::all(), 20, 5);
    let mut table = Table::new([
        "problem",
        "rows",
        "disarmed/solve",
        "armed-inert/solve",
        "armed",
        "disarmed bill",
    ]);
    for p in &points {
        let disarmed = p.disarmed_overhead(check_ns);
        table.row(vec![
            p.kind.name().into(),
            p.rows.to_string(),
            format!("{:?}", p.off),
            format!("{:?}", p.on),
            format!("{:.3}x", p.armed_overhead()),
            format!("{disarmed:.5}x"),
        ]);
        assert!(
            disarmed <= DISARMED_OVERHEAD_BOUND,
            "{}: disarmed sites bill {disarmed:.5}x per solve (bound {DISARMED_OVERHEAD_BOUND}x)",
            p.kind.name(),
        );
        assert!(
            p.armed_overhead() <= ARMED_INERT_BOUND,
            "{}: armed-inert sites cost {:.3}x disarmed (bound {ARMED_INERT_BOUND}x)",
            p.kind.name(),
            p.armed_overhead()
        );
    }
    print!("{}", table.render());

    let worst_armed = points
        .iter()
        .map(|p| p.armed_overhead())
        .fold(f64::MIN, f64::max);
    let worst_disarmed = points
        .iter()
        .map(|p| p.disarmed_overhead(check_ns))
        .fold(f64::MIN, f64::max);
    println!(
        "\nworst-case disarmed bill: {worst_disarmed:.5}x (bound {DISARMED_OVERHEAD_BOUND}x); \
         worst-case armed-inert: {worst_armed:.3}x (bound {ARMED_INERT_BOUND}x)"
    );

    let json = to_json(&points, workers, check_ns);
    let path = "BENCH_fault.json";
    std::fs::write(path, &json).expect("write BENCH_fault.json");
    println!("wrote {path}");
}
