//! Regenerates Figure 6: efficiency of the preprocessed doacross on the
//! Figure 4 test loop, 16 simulated processors, N = 10000, M ∈ {1, 5},
//! L = 1..14 — plus a host-thread cross-check at host parallelism.
//!
//! Usage: `cargo run -p doacross-bench --release --bin fig6 [--host]`

use doacross_bench::fig6::figure6;
use doacross_bench::host::measure_fig6_point;
use doacross_bench::report::Table;
use doacross_par::ThreadPool;
use doacross_sim::Machine;

fn main() {
    let with_host = std::env::args().any(|a| a == "--host");
    let n = 10_000;
    let machine = Machine::multimax();
    println!("Figure 6 — Effect of Loop Parameters on Efficiency of Preprocessed Doacross");
    println!(
        "Simulated Encore Multimax/320: {} processors, N = {n}\n",
        machine.processors
    );

    let (m1, m5) = figure6(&machine, n);
    let mut table = Table::new([
        "L",
        "eff M=1",
        "eff M=5",
        "speedup M=1",
        "speedup M=5",
        "true deps M=5",
        "stalls M=5",
    ]);
    for (a, b) in m1.iter().zip(&m5) {
        table.row([
            a.l.to_string(),
            format!("{:.3}", a.efficiency),
            format!("{:.3}", b.efficiency),
            format!("{:.2}", a.speedup),
            format!("{:.2}", b.speedup),
            b.census.true_deps.to_string(),
            b.stalls.to_string(),
        ]);
    }
    println!("{}", table.render());

    println!("Paper reference points: odd-L plateaus ≈ 0.33 (M=1) and ≈ 0.50 (M=5);");
    println!("even-L efficiencies rise monotonically with L toward those plateaus.\n");

    if with_host {
        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(2);
        let pool = ThreadPool::new(workers);
        println!(
            "Host cross-check ({} worker threads, best of 5, full pre/postprocessing):",
            workers
        );
        let mut host = Table::new(["L", "eff M=1 (host)", "eff M=5 (host)"]);
        for l in 1..=14 {
            let h1 = measure_fig6_point(&pool, n, 1, l, 5);
            let h5 = measure_fig6_point(&pool, n, 5, l, 5);
            host.row([
                l.to_string(),
                format!("{:.3}", h1.efficiency),
                format!("{:.3}", h5.efficiency),
            ]);
        }
        println!("{}", host.render());
    } else {
        println!("(Run with --host to add real-thread measurements at host core count.)");
    }
}
