//! Regenerates Table 1: preprocessed doacross times for sparse triangular
//! matrices (SPE2, SPE5, 5-PT, 7-PT, 9-PT) on the simulated 16-processor
//! machine, plus a host-thread cross-check.
//!
//! Usage: `cargo run -p doacross-bench --release --bin table1 [--host]`

use doacross_bench::host::measure_solvers;
use doacross_bench::report::Table;
use doacross_bench::table1::table1;
use doacross_par::ThreadPool;
use doacross_sim::Machine;
use doacross_sparse::{Problem, ProblemKind};

fn main() {
    let with_host = std::env::args().any(|a| a == "--host");
    let machine = Machine::multimax();
    println!("Table 1 — Preprocessed Doacross Times for Sparse Triangular Matrices");
    println!(
        "Simulated Encore Multimax/320: {} processors (times in kilocycles)\n",
        machine.processors
    );

    let rows = table1(&machine);
    let mut t = Table::new([
        "Problem",
        "n",
        "nnz",
        "wavefronts",
        "avg ||ism",
        "Doacross",
        "Rearranged",
        "Sequential",
        "eff",
        "eff (rearr)",
    ]);
    for r in &rows {
        t.row([
            r.name.to_string(),
            r.n.to_string(),
            r.nnz.to_string(),
            r.critical_path.to_string(),
            format!("{:.1}", r.avg_parallelism),
            format!("{:.1}", r.t_plain),
            format!("{:.1}", r.t_reordered),
            format!("{:.1}", r.t_seq),
            format!("{:.2}", r.eff_plain),
            format!("{:.2}", r.eff_reordered),
        ]);
    }
    println!("{}", t.render());
    println!("Paper reference: plain efficiencies 0.32–0.46; rearranged 0.63–0.75;");
    println!("rearranging reduces every problem's time (e.g. 5-PT 37 ms → 19 ms).\n");

    if with_host {
        let workers = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(2);
        let pool = ThreadPool::new(workers);
        println!("Host cross-check ({workers} worker threads, best of 5, times in µs):");
        let mut h = Table::new(["Problem", "Doacross", "Rearranged", "Sequential"]);
        for kind in ProblemKind::all() {
            let sys = Problem::build(kind).triangular_system();
            let m = measure_solvers(&pool, &sys, 5);
            h.row([
                m.name.to_string(),
                format!("{}", m.t_plain.as_micros()),
                format!("{}", m.t_reordered.as_micros()),
                format!("{}", m.t_seq.as_micros()),
            ]);
        }
        println!("{}", h.render());
    } else {
        println!("(Run with --host to add real-thread measurements at host core count.)");
    }
}
