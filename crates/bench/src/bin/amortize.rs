//! Prints the plan-cache amortization curve on host threads:
//! per-call re-inspection vs. per-call planning vs. cached plans (engine
//! and legacy), for 1 / 10 / 100 reuses of each Table 1 structure —
//! then the shared-engine concurrency headline: N threads solving through
//! one engine with the merged cache hit rate.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin amortize`.

use doacross_bench::amortize::{amortization_curve, concurrent_throughput};
use doacross_bench::report::Table;
use doacross_engine::Engine;
use doacross_par::ThreadPool;
use doacross_sparse::table1_problems;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let pool = ThreadPool::new(workers);
    println!("plan-cache amortization on {workers} host threads");
    println!("(total wall time for the whole solve sequence, per policy)\n");

    let mut table = Table::new([
        "problem",
        "reuses",
        "re-inspect",
        "cold plan",
        "cached",
        "legacy cached",
        "cached speedup",
    ]);
    for problem in table1_problems() {
        let sys = problem.triangular_system();
        for point in amortization_curve(&pool, &sys, &[1, 10, 100]) {
            table.row(vec![
                sys.kind.name().into(),
                point.reuses.to_string(),
                format!("{:?}", point.reinspect),
                format!("{:?}", point.cold_plan),
                format!("{:?}", point.cached),
                format!("{:?}", point.legacy_cached),
                format!("{:.2}x", point.speedup_vs_reinspect()),
            ]);
        }
    }
    print!("{}", table.render());

    println!("\nshared-engine concurrency (one engine, many solve threads):\n");
    let engine = Engine::builder()
        .workers(workers)
        .cache_capacity(16)
        .build();
    let mut concurrent = Table::new([
        "problem", "threads", "solves", "wall", "solves/s", "hit rate",
    ]);
    for problem in table1_problems() {
        let sys = problem.triangular_system();
        for threads in [1usize, 2, 4] {
            let r = concurrent_throughput(&engine, &sys, threads, 50);
            concurrent.row(vec![
                sys.kind.name().into(),
                r.threads.to_string(),
                r.solves.to_string(),
                format!("{:?}", r.elapsed),
                format!("{:.0}", r.solves_per_sec()),
                format!("{:.1}%", r.stats.hit_rate() * 100.0),
            ]);
        }
    }
    print!("{}", concurrent.render());
}
