//! Prints the plan-cache amortization curve on host threads:
//! per-call re-inspection vs. per-call planning vs. cached plans, for
//! 1 / 10 / 100 reuses of each Table 1 structure.
//!
//! Regenerate with `cargo run -p doacross-bench --release --bin amortize`.

use doacross_bench::amortize::amortization_curve;
use doacross_bench::report::Table;
use doacross_par::ThreadPool;
use doacross_sparse::table1_problems;

fn main() {
    let workers = std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(4);
    let pool = ThreadPool::new(workers);
    println!("plan-cache amortization on {workers} host threads");
    println!("(total wall time for the whole solve sequence, per policy)\n");

    let mut table = Table::new([
        "problem",
        "reuses",
        "re-inspect",
        "cold plan",
        "cached",
        "cached speedup",
    ]);
    for problem in table1_problems() {
        let sys = problem.triangular_system();
        for point in amortization_curve(&pool, &sys, &[1, 10, 100]) {
            table.row(vec![
                sys.kind.name().into(),
                point.reuses.to_string(),
                format!("{:?}", point.reinspect),
                format!("{:?}", point.cold_plan),
                format!("{:?}", point.cached),
                format!("{:.2}x", point.speedup_vs_reinspect()),
            ]);
        }
    }
    print!("{}", table.render());
}
