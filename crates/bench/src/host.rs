//! Real-thread measurements on the host machine.
//!
//! The simulator (`doacross-sim`) extrapolates to the paper's 16
//! processors; these helpers measure the actual runtime (`doacross-core`,
//! `doacross-trisolve`) with host threads at host core counts, so every
//! experiment binary can print both and the reader can check that the
//! direction of every effect (reordering wins, odd-L beats adjacent
//! even-L, M=5 beats M=1) also holds on real hardware.

use doacross_core::{seq::run_sequential, Doacross, TestLoop};
use doacross_par::ThreadPool;
use doacross_sparse::TriSystem;
use doacross_trisolve::{seq::time_sequential, DoacrossSolver, ReorderedSolver};
use std::time::{Duration, Instant};

/// A host-measured sequential/parallel pair.
#[derive(Debug, Clone)]
pub struct HostMeasurement {
    /// Pool workers used.
    pub workers: usize,
    /// Best-of-reps sequential wall time.
    pub t_seq: Duration,
    /// Best-of-reps parallel wall time.
    pub t_par: Duration,
    /// `T_seq / (p · T_par)`.
    pub efficiency: f64,
}

fn best_of<F: FnMut() -> Duration>(reps: usize, mut f: F) -> Duration {
    (0..reps.max(1)).map(|_| f()).min().expect("reps >= 1")
}

impl HostMeasurement {
    fn from_times(workers: usize, t_seq: Duration, t_par: Duration) -> Self {
        let eff = if t_par.as_secs_f64() > 0.0 {
            t_seq.as_secs_f64() / (workers as f64 * t_par.as_secs_f64())
        } else {
            0.0
        };
        Self {
            workers,
            t_seq,
            t_par,
            efficiency: eff,
        }
    }
}

/// Measures one Figure 6 grid point (given `N`, `M`, `L`) on the host:
/// sequential loop vs. full preprocessed doacross (inspector + executor +
/// postprocessor, as §3.1 measures).
pub fn measure_fig6_point(
    pool: &ThreadPool,
    n: usize,
    m: usize,
    l: usize,
    reps: usize,
) -> HostMeasurement {
    let loop_ = TestLoop::new(n, m, l);
    let y0 = loop_.initial_y();

    let t_seq = best_of(reps, || {
        let mut y = y0.clone();
        let start = Instant::now();
        run_sequential(&loop_, &mut y);
        let t = start.elapsed();
        std::hint::black_box(&y);
        t
    });

    let mut runtime = Doacross::for_loop(&loop_);
    runtime.config_mut().validate_terms = false; // paper-faithful inspector
    let t_par = best_of(reps, || {
        let mut y = y0.clone();
        let start = Instant::now();
        runtime
            .run(pool, &loop_, &mut y)
            .expect("test loop is valid");
        let t = start.elapsed();
        std::hint::black_box(&y);
        t
    });
    HostMeasurement::from_times(pool.threads(), t_seq, t_par)
}

/// Host-measured Table 1 row: sequential, plain doacross, and reordered
/// doacross solve times for one triangular system.
#[derive(Debug, Clone)]
pub struct HostSolveTimes {
    /// Problem name.
    pub name: &'static str,
    /// Pool workers used.
    pub workers: usize,
    /// Sequential Figure 7 loop.
    pub t_seq: Duration,
    /// Preprocessed doacross, natural order.
    pub t_plain: Duration,
    /// Preprocessed doacross, doconsider order (plan excluded — it is
    /// amortized across solves, like the paper's preprocessing).
    pub t_reordered: Duration,
}

/// Measures one problem on the host.
pub fn measure_solvers(pool: &ThreadPool, sys: &TriSystem, reps: usize) -> HostSolveTimes {
    let (_, t_seq) = time_sequential(&sys.l, &sys.rhs, reps.max(1));

    let mut plain = DoacrossSolver::new(sys.n());
    // Warm up scratch allocation, then time.
    plain.solve(pool, &sys.l, &sys.rhs).expect("valid system");
    let t_plain = best_of(reps, || {
        let start = Instant::now();
        let (y, _) = plain.solve(pool, &sys.l, &sys.rhs).expect("valid system");
        let t = start.elapsed();
        std::hint::black_box(&y);
        t
    });

    let mut reordered = ReorderedSolver::new(sys.n());
    reordered.prepare(&sys.l);
    reordered.solve(pool, &sys.l, &sys.rhs).expect("valid");
    let t_reordered = best_of(reps, || {
        let start = Instant::now();
        let (y, _) = reordered.solve(pool, &sys.l, &sys.rhs).expect("valid");
        let t = start.elapsed();
        std::hint::black_box(&y);
        t
    });

    HostSolveTimes {
        name: sys.kind.name(),
        workers: pool.threads(),
        t_seq,
        t_plain,
        t_reordered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{Problem, ProblemKind};

    #[test]
    fn fig6_point_measures_something() {
        let pool = ThreadPool::new(2);
        let m = measure_fig6_point(&pool, 2_000, 1, 7, 2);
        assert!(m.t_seq > Duration::ZERO);
        assert!(m.t_par > Duration::ZERO);
        assert!(m.efficiency > 0.0);
        assert_eq!(m.workers, 2);
    }

    #[test]
    fn solver_measurement_runs() {
        let pool = ThreadPool::new(2);
        let sys = Problem::build(ProblemKind::Spe2).triangular_system();
        let t = measure_solvers(&pool, &sys, 2);
        assert!(t.t_seq > Duration::ZERO);
        assert!(t.t_plain > Duration::ZERO);
        assert!(t.t_reordered > Duration::ZERO);
    }
}
