//! Minimal fixed-width table rendering for the experiment binaries.

/// A plain-text table: header row plus data rows, auto-sized columns.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (must match the header's column count).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "column count mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (k, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if k > 0 {
                    line.push_str("  ");
                }
                let pad = w - cell.chars().count();
                // Right-align numerics (heuristic: starts with digit/-/+).
                let numeric = cell
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.')
                    .unwrap_or(false);
                if numeric {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(fmt_row(&self.header, &widths).trim_end());
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(fmt_row(row, &widths).trim_end());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1.25"]);
        t.row(["b", "100.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("alpha"));
        // Numerics right-aligned: the 1.25 cell ends at the same column as
        // 100.0.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.render().lines().count(), 2);
    }
}
