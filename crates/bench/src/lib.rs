//! # doacross-bench — the paper's evaluation, regenerated
//!
//! One module per experiment:
//!
//! * [`fig6`] — Figure 6: parallel efficiency of the preprocessed doacross
//!   on the Figure 4 test loop, 16 processors, `N = 10000`, `M ∈ {1, 5}`,
//!   `L = 1..14`. Regenerate with
//!   `cargo run -p doacross-bench --release --bin fig6`.
//! * [`table1`] — Table 1: sparse triangular solve times (sequential,
//!   preprocessed doacross, doconsider-rearranged doacross) on SPE2, SPE5,
//!   5-PT, 7-PT, 9-PT. Regenerate with
//!   `cargo run -p doacross-bench --release --bin table1`.
//! * [`host`] — real-thread measurements on the host machine (at host core
//!   counts), cross-checking the simulator's direction at small `p`.
//! * [`amortize`] — the plan-cache amortization experiment: per-call
//!   re-inspection vs. per-call planning vs. cached plans over 1..100
//!   reuses of one triangular structure. Regenerate with
//!   `cargo run -p doacross-bench --release --bin amortize`, or bench with
//!   `cargo bench -p doacross-bench --bench plan_cache`.
//! * [`warm`] — the restart gap plan persistence closes: first solve on a
//!   cold engine vs. one warm-started from a serialized plan store.
//!   Regenerate with `cargo run -p doacross-bench --release --bin warm`.
//! * [`wavefront`] — flag-synchronized vs. level-scheduled steady state on
//!   the Table 1 structures (the DOACROSS→DOALL conversion crossover),
//!   plus the chunked self-scheduling ablation; writes the
//!   machine-readable `BENCH_wavefront.json`. Regenerate with
//!   `cargo run -p doacross-bench --release --bin wavefront`.
//! * [`adaptive`] — static-pick vs. adaptive-pick per-solve cost under a
//!   deliberately mispriced cost model on the Table 1 structures, plus
//!   the calibrate-by-default measurement (calibration cost vs. one cold
//!   solve); writes the machine-readable `BENCH_adaptive.json`.
//!   Regenerate with `cargo run -p doacross-bench --release --bin adaptive`.
//! * [`obs`] — the observability tax: disabled-vs-enabled per-solve cost
//!   on warmed engines, plus the direct price of the disabled path's
//!   branch check; writes the machine-readable `BENCH_obs.json`.
//!   Regenerate with `cargo run -p doacross-bench --release --bin obs`.
//! * [`throughput`] — concurrent-tenant throughput through the multi-pool
//!   scheduler (solves/sec at 1/4/16 tenants), the dispatcher's per-solve
//!   tax (single- vs. multi-pool, no-regression bound on serial hosts),
//!   and batched-submission amortization; writes the machine-readable
//!   `BENCH_throughput.json`. Regenerate with
//!   `cargo run -p doacross-bench --release --bin throughput`.
//! * [`report`] — plain-text table rendering shared by the binaries.
//!
//! Every binary prints both the **simulated 16-processor** numbers (the
//! hardware substitution — see DESIGN.md §4) and, where cheap enough,
//! **host-thread** numbers at the host's parallelism.

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
pub mod adaptive;
pub mod amortize;
pub mod fault;
pub mod fig6;
pub mod host;
pub mod obs;
pub mod profile;
pub mod report;
pub mod table1;
pub mod throughput;
pub mod warm;
pub mod wavefront;

/// Deterministic workspace-wide experiment seed (problems are seeded per
/// kind on top of this).
pub const EXPERIMENT_SEED: u64 = 0x1991_0815;
