//! Figure 6: "Effect of Loop Parameters on Efficiency of Preprocessed
//! Doacross" — efficiency vs. `L` for `M ∈ {1, 5}`, `N = 10000`, 16
//! processors.

use doacross_core::{DependencyCensus, TestLoop};
use doacross_sim::{Machine, SimOptions, SimResult};

/// One point of the Figure 6 series.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// The loop's `L` parameter (x-axis).
    pub l: usize,
    /// The loop's `M` parameter (series).
    pub m: usize,
    /// Simulated 16-processor parallel efficiency (y-axis).
    pub efficiency: f64,
    /// Simulated speedup.
    pub speedup: f64,
    /// Ground-truth dependence census for the parameterization.
    pub census: DependencyCensus,
    /// Stall count observed in the simulated schedule.
    pub stalls: u64,
}

/// The paper's parameter grid: `L = 1..=14`, for one `M`.
pub fn series(machine: &Machine, n: usize, m: usize) -> Vec<Fig6Point> {
    (1..=14)
        .map(|l| {
            let loop_ = TestLoop::new(n, m, l);
            let r: SimResult = machine.simulate_doacross(&loop_, None, SimOptions::default());
            Fig6Point {
                l,
                m,
                efficiency: r.efficiency,
                speedup: r.speedup(),
                census: loop_.census(),
                stalls: r.stalls,
            }
        })
        .collect()
}

/// Both series of the figure (`M = 1` and `M = 5`), paper-sized
/// (`N = 10000`) unless overridden.
pub fn figure6(machine: &Machine, n: usize) -> (Vec<Fig6Point>, Vec<Fig6Point>) {
    (series(machine, n, 1), series(machine, n, 5))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape_odd_plateaus() {
        let machine = Machine::multimax();
        let (m1, m5) = figure6(&machine, 10_000);
        for p in m1.iter().filter(|p| p.l % 2 == 1) {
            assert!(
                (p.efficiency - 0.33).abs() < 0.02,
                "M=1 L={}: {}",
                p.l,
                p.efficiency
            );
            assert!(p.census.is_doall());
            assert_eq!(p.stalls, 0);
        }
        for p in m5.iter().filter(|p| p.l % 2 == 1) {
            assert!(
                (p.efficiency - 0.50).abs() < 0.02,
                "M=5 L={}: {}",
                p.l,
                p.efficiency
            );
        }
    }

    #[test]
    fn paper_shape_m5_dominates_m1_on_odd_l() {
        let machine = Machine::multimax();
        let (m1, m5) = figure6(&machine, 4_000);
        for (a, b) in m1.iter().zip(&m5) {
            if a.l % 2 == 1 {
                assert!(b.efficiency > a.efficiency, "L={}", a.l);
            }
        }
    }

    #[test]
    fn paper_shape_even_l_rises() {
        let machine = Machine::multimax();
        let (m1, _) = figure6(&machine, 10_000);
        let evens: Vec<f64> = m1
            .iter()
            .filter(|p| p.l % 2 == 0 && p.l >= 4)
            .map(|p| p.efficiency)
            .collect();
        for w in evens.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "{evens:?}");
        }
        assert!(evens.last().unwrap() > &(evens[0] * 1.5));
    }
}
