//! What the observability layer costs: disabled-vs-enabled per-solve
//! overhead in steady state.
//!
//! Two engines run the same cached Table 1 structure back to back: one
//! built plainly (observability **off**, the default — every would-be
//! instrumentation point is a single branch on a bool), one with
//! `observability_default()` (trace ring + metrics registry + flight
//! recorder all live). Plans are warmed first, so the measured difference
//! is pure per-solve instrumentation: one `SolveFinished` trace push, one
//! histogram update, one flight-recorder push per solve.
//!
//! The claim the bench defends: **off adds no measurable per-solve
//! cost** — the off path is a handful of untaken branches, priced
//! directly by [`disabled_check_cost`] at well under a nanosecond per
//! check — and **on stays within a small bound** of off (the ratio is
//! asserted ≤ [`ON_OVERHEAD_BOUND`] in the regenerating binary and
//! reported in `BENCH_obs.json`).

use doacross_engine::{Engine, ObsConfig};
use doacross_sparse::{Problem, ProblemKind, TriSystem};
use doacross_trisolve::EngineSolver;
use std::time::{Duration, Instant};

/// The enabled/disabled per-solve ratio the regenerating binary asserts.
/// Steady-state min-of-reps is stable enough that anything past this is a
/// real regression, not noise.
pub const ON_OVERHEAD_BOUND: f64 = 1.5;

/// Disabled-vs-enabled steady state for one Table 1 structure.
#[derive(Debug, Clone, Copy)]
pub struct ObsOverheadPoint {
    /// Which Table 1 problem the structure came from.
    pub kind: ProblemKind,
    /// Rows (= iterations) in the triangular system.
    pub rows: usize,
    /// Per-solve wall time with observability off (the default), min over
    /// reps of a warmed engine.
    pub off: Duration,
    /// Per-solve wall time with observability on (trace + metrics +
    /// flight recorder), same structure, same warming.
    pub on: Duration,
    /// Trace events the enabled engine retained for this structure's
    /// solves — evidence the instrumented path actually ran.
    pub trace_events: u64,
}

impl ObsOverheadPoint {
    /// Enabled cost as a multiple of disabled cost (1.0 = free).
    pub fn overhead(&self) -> f64 {
        self.on.as_secs_f64() / self.off.as_secs_f64().max(1e-12)
    }
}

fn steady_per_solve(
    solver: &EngineSolver,
    sys: &TriSystem,
    solves: usize,
    reps: usize,
) -> Duration {
    // Warm: the first solve builds and caches the plan; everything
    // measured after is a cache hit.
    solver.solve(&sys.l, &sys.rhs).expect("valid system");
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..solves.max(1) {
            solver.solve(&sys.l, &sys.rhs).expect("valid system");
        }
        best = best.min(start.elapsed() / solves.max(1) as u32);
    }
    best
}

/// Measures warmed per-solve cost with observability off vs. on for each
/// problem, min over `reps` repetitions of `solves` back-to-back solves.
pub fn obs_overhead(
    workers: usize,
    kinds: &[ProblemKind],
    solves: usize,
    reps: usize,
) -> Vec<ObsOverheadPoint> {
    kinds
        .iter()
        .map(|&kind| {
            let sys = Problem::build(kind).triangular_system();

            let off_engine = Engine::builder().workers(workers).cache_capacity(8).build();
            assert!(!off_engine.observability_enabled());
            let off = steady_per_solve(&EngineSolver::new(off_engine), &sys, solves, reps);

            let on_engine = Engine::builder()
                .workers(workers)
                .cache_capacity(8)
                .observability(ObsConfig::default())
                .build();
            assert!(on_engine.observability_enabled());
            let solver = EngineSolver::new(on_engine.clone());
            let on = steady_per_solve(&solver, &sys, solves, reps);
            let trace_events = on_engine.trace_events().len() as u64;
            assert!(
                !on_engine.recent_solves().is_empty(),
                "enabled engine must have recorded its solves"
            );

            ObsOverheadPoint {
                kind,
                rows: sys.l.n(),
                off,
                on,
                trace_events,
            }
        })
        .collect()
}

/// Prices the disabled path directly: nanoseconds per `enabled()` check —
/// the entire per-event cost an uninstrumented engine pays. Returns the
/// mean over `iters` checks.
pub fn disabled_check_cost(iters: u64) -> f64 {
    let obs = doacross_engine::Obs::disabled();
    let start = Instant::now();
    let mut taken = 0u64;
    for _ in 0..iters.max(1) {
        if std::hint::black_box(&obs).enabled() {
            taken += 1;
        }
    }
    let elapsed = start.elapsed();
    assert_eq!(taken, 0, "a disabled layer never takes the branch");
    elapsed.as_secs_f64() * 1e9 / iters.max(1) as f64
}

/// Renders the comparison as the machine-readable `BENCH_obs.json`.
pub fn to_json(points: &[ObsOverheadPoint], workers: usize, check_ns: f64) -> String {
    let mut out = String::from("{\n");
    for p in points {
        out.push_str(&format!(
            "  {:?}: {{\"off_ns\": {}, \"on_ns\": {}, \"overhead\": {:.4}, \"rows\": {}, \"trace_events\": {}}},\n",
            p.kind.name(),
            p.off.as_nanos(),
            p.on.as_nanos(),
            p.overhead(),
            p.rows,
            p.trace_events,
        ));
    }
    out.push_str(&format!(
        "  \"_meta\": {{\"workers\": {workers}, \"disabled_check_ns\": {check_ns:.4}, \"bound\": {ON_OVERHEAD_BOUND}}}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_points_measure_both_paths() {
        // Timing ratios are reported, not asserted (CI noise) — see
        // warm.rs; what must hold structurally: both paths ran to
        // completion and only the enabled engine traced anything.
        let points = obs_overhead(2, &[ProblemKind::FivePt], 3, 1);
        assert_eq!(points.len(), 1);
        assert!(points[0].off > Duration::ZERO);
        assert!(points[0].on > Duration::ZERO);
        assert!(points[0].trace_events > 0, "enabled path must trace");
    }

    #[test]
    fn disabled_check_is_sub_nanosecond_scale() {
        // A disabled layer is one bool load per would-be event. Even a
        // noisy CI host prices that far under this ceiling.
        let ns = disabled_check_cost(1_000_000);
        assert!(ns < 100.0, "enabled() check cost {ns} ns/call");
    }
}
