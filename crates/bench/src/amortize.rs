//! Plan-cache amortization: the experiment the `doacross-plan` subsystem
//! exists for.
//!
//! Three ways to run `k` triangular solves of one structure:
//!
//! * **re-inspect** — the inspected flat doacross, inspector on every
//!   call: what the paper's construct costs when nothing is amortized.
//! * **cold plan** — a full plan (fingerprint + census + cost model +
//!   capture) built on every call: the worst case of the plan subsystem,
//!   bounding what a cache miss costs.
//! * **cached plan** — [`PlanCachedSolver`]: one plan build, then `k − 1`
//!   cache hits that skip preprocessing entirely.
//!
//! The cached curve must drop under the re-inspect curve once the build
//! cost is spread over enough reuses (in practice immediately: a hit does
//! strictly less work per solve).

use doacross_core::DoacrossConfig;
use doacross_par::ThreadPool;
use doacross_sparse::TriSystem;
use doacross_trisolve::{solver::SolverBackend, DoacrossSolver, PlanCachedSolver};
use std::time::{Duration, Instant};

/// Total wall time of `reuses` consecutive solves under each policy.
#[derive(Debug, Clone, Copy)]
pub struct AmortizationPoint {
    /// Solves performed on the fixed structure.
    pub reuses: usize,
    /// Inspector-per-call flat doacross.
    pub reinspect: Duration,
    /// Plan built per call (cache disabled).
    pub cold_plan: Duration,
    /// Plan built once, then cache hits.
    pub cached: Duration,
}

impl AmortizationPoint {
    /// Speedup of cached over per-call re-inspection.
    pub fn speedup_vs_reinspect(&self) -> f64 {
        self.reinspect.as_secs_f64() / self.cached.as_secs_f64().max(1e-12)
    }
}

fn time<F: FnMut()>(mut f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Measures the amortization curve for `sys` at the given reuse counts.
///
/// Each policy's timer covers the whole sequence of solves including its
/// (re)preprocessing, which is the quantity a caller actually pays.
pub fn amortization_curve(
    pool: &ThreadPool,
    sys: &TriSystem,
    reuse_counts: &[usize],
) -> Vec<AmortizationPoint> {
    reuse_counts
        .iter()
        .map(|&reuses| {
            // Inspector on every call.
            let mut reinspect_solver = DoacrossSolver::with_config(
                sys.l.n(),
                SolverBackend::Inspected,
                DoacrossConfig::default(),
            );
            let reinspect = time(|| {
                for _ in 0..reuses {
                    let (y, _) = reinspect_solver
                        .solve(pool, &sys.l, &sys.rhs)
                        .expect("valid");
                    std::hint::black_box(y);
                }
            });

            // Full plan built per call: capacity-0 cache never stores.
            let mut cold_solver = PlanCachedSolver::new(0);
            let cold_plan = time(|| {
                for _ in 0..reuses {
                    let (y, _) = cold_solver.solve(pool, &sys.l, &sys.rhs).expect("valid");
                    std::hint::black_box(y);
                }
            });

            // Plan built once, then hits.
            let mut cached_solver = PlanCachedSolver::new(2);
            let cached = time(|| {
                for _ in 0..reuses {
                    let (y, _) = cached_solver.solve(pool, &sys.l, &sys.rhs).expect("valid");
                    std::hint::black_box(y);
                }
            });
            debug_assert_eq!(cached_solver.cache_stats().misses, 1);

            AmortizationPoint {
                reuses,
                reinspect,
                cold_plan,
                cached,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{Problem, ProblemKind};

    #[test]
    fn curve_measures_every_point() {
        let sys = Problem::build_seeded(ProblemKind::FivePt, 1).triangular_system();
        let pool = ThreadPool::new(2);
        let points = amortization_curve(&pool, &sys, &[1, 4]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.reinspect > Duration::ZERO);
            assert!(p.cold_plan > Duration::ZERO);
            assert!(p.cached > Duration::ZERO);
        }
        assert_eq!(points[0].reuses, 1);
        assert_eq!(points[1].reuses, 4);
    }
}
