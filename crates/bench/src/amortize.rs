//! Plan-cache amortization: the experiment the plan/engine subsystem
//! exists for.
//!
//! Four ways to run `k` triangular solves of one structure:
//!
//! * **re-inspect** — the inspected flat doacross, inspector on every
//!   call: what the paper's construct costs when nothing is amortized.
//! * **cold plan** — a full plan (fingerprint + census + cost model +
//!   capture) built on every call (an [`EngineSolver`] over a capacity-0
//!   engine): the worst case of the plan subsystem, bounding what a cache
//!   miss costs.
//! * **cached plan** — [`EngineSolver`]: one plan build, then `k − 1`
//!   cache hits that skip preprocessing entirely.
//! * **legacy cached** — the deprecated single-owner
//!   `PlannedDoacross::run` path, kept both as a shim-overhead comparison
//!   and as a deliberate compile-time canary: this module builds it
//!   *without* `#[allow(deprecated)]`, so `cargo build` warns as long as
//!   the deprecated entry point exists.
//!
//! The cached curve must drop under the re-inspect curve once the build
//! cost is spread over enough reuses (in practice immediately: a hit does
//! strictly less work per solve).
//!
//! [`concurrent_throughput`] additionally measures the redesign's whole
//! point: N threads solving through **one shared engine**, with the hit
//! rate observable in the merged cache stats.

use doacross_core::DoacrossConfig;
use doacross_engine::Engine;
use doacross_par::ThreadPool;
use doacross_plan::{CacheStats, PlannedDoacross};
use doacross_sparse::TriSystem;
use doacross_trisolve::{solver::SolverBackend, DoacrossSolver, EngineSolver, TriSolveLoop};
use std::time::{Duration, Instant};

/// Total wall time of `reuses` consecutive solves under each policy.
#[derive(Debug, Clone, Copy)]
pub struct AmortizationPoint {
    /// Solves performed on the fixed structure.
    pub reuses: usize,
    /// Inspector-per-call flat doacross.
    pub reinspect: Duration,
    /// Plan built per call (cache disabled).
    pub cold_plan: Duration,
    /// Plan built once, then engine cache hits.
    pub cached: Duration,
    /// Plan built once, then hits on the deprecated `PlannedDoacross`.
    pub legacy_cached: Duration,
}

impl AmortizationPoint {
    /// Speedup of cached over per-call re-inspection.
    pub fn speedup_vs_reinspect(&self) -> f64 {
        self.reinspect.as_secs_f64() / self.cached.as_secs_f64().max(1e-12)
    }
}

fn time<F: FnMut()>(mut f: F) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

fn engine_solver(workers: usize, capacity: usize) -> EngineSolver {
    EngineSolver::new(
        Engine::builder()
            .workers(workers)
            .cache_capacity(capacity)
            .build(),
    )
}

/// Measures the amortization curve for `sys` at the given reuse counts.
///
/// Each policy's timer covers the whole sequence of solves including its
/// (re)preprocessing, which is the quantity a caller actually pays.
pub fn amortization_curve(
    pool: &ThreadPool,
    sys: &TriSystem,
    reuse_counts: &[usize],
) -> Vec<AmortizationPoint> {
    let workers = pool.threads();
    reuse_counts
        .iter()
        .map(|&reuses| {
            // Inspector on every call.
            let mut reinspect_solver = DoacrossSolver::with_config(
                sys.l.n(),
                SolverBackend::Inspected,
                DoacrossConfig::default(),
            );
            let reinspect = time(|| {
                for _ in 0..reuses {
                    let (y, _) = reinspect_solver
                        .solve(pool, &sys.l, &sys.rhs)
                        .expect("valid");
                    std::hint::black_box(y);
                }
            });

            // Full plan built per call: capacity-0 cache never stores.
            let cold_solver = engine_solver(workers, 0);
            let cold_plan = time(|| {
                for _ in 0..reuses {
                    let (y, _) = cold_solver.solve(&sys.l, &sys.rhs).expect("valid");
                    std::hint::black_box(y);
                }
            });

            // Plan built once, then hits.
            let cached_solver = engine_solver(workers, 2);
            let cached = time(|| {
                for _ in 0..reuses {
                    let (y, _) = cached_solver.solve(&sys.l, &sys.rhs).expect("valid");
                    std::hint::black_box(y);
                }
            });
            debug_assert_eq!(cached_solver.cache_stats().misses, 1);

            // The pre-engine path (deliberately warns on build; see module
            // docs).
            let mut legacy = PlannedDoacross::new(2);
            let legacy_cached = time(|| {
                for _ in 0..reuses {
                    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
                    let mut y = vec![0.0; sys.l.n()];
                    legacy.run(pool, &loop_, &mut y).expect("valid");
                    std::hint::black_box(y);
                }
            });

            AmortizationPoint {
                reuses,
                reinspect,
                cold_plan,
                cached,
                legacy_cached,
            }
        })
        .collect()
}

/// Result of a shared-engine concurrency run.
#[derive(Debug, Clone, Copy)]
pub struct ConcurrentThroughput {
    /// Worker threads driving solves (not pool workers).
    pub threads: usize,
    /// Solves completed across all threads.
    pub solves: usize,
    /// Wall time for the whole run.
    pub elapsed: Duration,
    /// Merged cache stats over the run (hit rate is the headline).
    pub stats: CacheStats,
}

impl ConcurrentThroughput {
    /// Solves per second across all threads.
    pub fn solves_per_sec(&self) -> f64 {
        self.solves as f64 / self.elapsed.as_secs_f64().max(1e-12)
    }
}

/// `threads` caller threads each performing `solves_per_thread` solves of
/// `sys` through **one shared engine** — the multi-tenant serving shape.
/// The first solve of the structure plans it; everything else hits the
/// sharded cache concurrently.
pub fn concurrent_throughput(
    engine: &Engine,
    sys: &TriSystem,
    threads: usize,
    solves_per_thread: usize,
) -> ConcurrentThroughput {
    let before = engine.cache_stats();
    let solver = EngineSolver::new(engine.clone());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let solver = &solver;
            scope.spawn(move || {
                for _ in 0..solves_per_thread {
                    let (y, _) = solver.solve(&sys.l, &sys.rhs).expect("valid");
                    std::hint::black_box(y);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    let after = engine.cache_stats();
    ConcurrentThroughput {
        threads,
        solves: threads * solves_per_thread,
        elapsed,
        stats: CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
            insertions: after.insertions - before.insertions,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doacross_sparse::{Problem, ProblemKind};

    #[test]
    fn curve_measures_every_point() {
        let sys = Problem::build_seeded(ProblemKind::FivePt, 1).triangular_system();
        let pool = ThreadPool::new(2);
        let points = amortization_curve(&pool, &sys, &[1, 4]);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.reinspect > Duration::ZERO);
            assert!(p.cold_plan > Duration::ZERO);
            assert!(p.cached > Duration::ZERO);
            assert!(p.legacy_cached > Duration::ZERO);
        }
        assert_eq!(points[0].reuses, 1);
        assert_eq!(points[1].reuses, 4);
    }

    #[test]
    fn concurrent_throughput_hits_the_shared_cache() {
        let sys = Problem::build_seeded(ProblemKind::FivePt, 2).triangular_system();
        let engine = Engine::builder().workers(2).cache_capacity(4).build();
        let result = concurrent_throughput(&engine, &sys, 3, 4);
        assert_eq!(result.solves, 12);
        assert_eq!(result.stats.misses, 1, "one structure, one plan");
        assert_eq!(result.stats.hits, 11);
        assert!(result.stats.hit_rate() > 0.9);
        assert!(result.solves_per_sec() > 0.0);
    }
}
