//! Table 1: "Preprocessed Doacross Times for Sparse Triangular Matrices".
//!
//! For each of SPE2 / SPE5 / 5-PT / 7-PT / 9-PT the paper reports three
//! times on 16 processors: the preprocessed doacross solve, the doconsider-
//! rearranged preprocessed doacross solve, and the optimized sequential
//! solve. Efficiencies derived from the paper's milliseconds are 0.32–0.46
//! (plain) and 0.63–0.75 (rearranged).
//!
//! The solve uses the identity output subscript (`y(i)` ← row `i`), so the
//! §2.3 linear-subscript variant applies: the simulated runs disable the
//! inspector and use flag-reset-only postprocessing (a consumer reads the
//! result from the shadow array), matching how a solver library deploys
//! the construct.

use doacross_sim::{Machine, SimOptions};
use doacross_sparse::{Problem, ProblemKind, TriSystem};
use doacross_trisolve::{SolvePlan, TriSolveLoop};

/// One row of the regenerated Table 1 (times in simulated kilocycles).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Problem name as in the paper.
    pub name: &'static str,
    /// Equations.
    pub n: usize,
    /// Strictly-lower nonzeros (dependencies).
    pub nnz: usize,
    /// Wavefront count (dependence critical path).
    pub critical_path: usize,
    /// Average wavefront width `n / critical_path`.
    pub avg_parallelism: f64,
    /// Sequential solve time, kilocycles.
    pub t_seq: f64,
    /// Preprocessed doacross (natural order), kilocycles.
    pub t_plain: f64,
    /// Doconsider-rearranged preprocessed doacross, kilocycles.
    pub t_reordered: f64,
    /// Efficiency of the plain doacross (`T_seq / (p · T_par)`).
    pub eff_plain: f64,
    /// Efficiency of the rearranged doacross.
    pub eff_reordered: f64,
    /// Stalled references in the plain schedule.
    pub stalls_plain: u64,
    /// Stalled references in the rearranged schedule.
    pub stalls_reordered: u64,
}

/// The simulation options Table 1 uses (see module docs).
pub fn solve_sim_options() -> SimOptions {
    SimOptions {
        chunk: 1,
        include_inspector: false,
        light_post: true,
    }
}

/// Simulates one problem's row.
pub fn simulate_row(machine: &Machine, sys: &TriSystem) -> Table1Row {
    let loop_ = TriSolveLoop::new(&sys.l, &sys.rhs);
    let opts = solve_sim_options();
    let plain = machine.simulate_doacross(&loop_, None, opts);
    let plan = SolvePlan::for_matrix(&sys.l);
    let reordered = machine.simulate_doacross(&loop_, Some(&plan.order), opts);
    Table1Row {
        name: sys.kind.name(),
        n: sys.n(),
        nnz: sys.l.nnz(),
        critical_path: plan.critical_path(),
        avg_parallelism: plan.levels.average_parallelism(),
        t_seq: plain.t_seq / 1e3,
        t_plain: plain.t_par / 1e3,
        t_reordered: reordered.t_par / 1e3,
        eff_plain: plain.efficiency,
        eff_reordered: reordered.efficiency,
        stalls_plain: plain.stalls,
        stalls_reordered: reordered.stalls,
    }
}

/// Regenerates the full table on the given machine (16-processor Multimax
/// for the paper's configuration).
pub fn table1(machine: &Machine) -> Vec<Table1Row> {
    ProblemKind::all()
        .iter()
        .map(|&kind| {
            let sys = Problem::build(kind).triangular_system();
            simulate_row(machine, &sys)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reordering_wins_on_every_problem() {
        // The paper's headline Table 1 claim. Uses the two small problems
        // plus 5-PT to keep test time bounded; the full set runs in the
        // bench binary and integration tests.
        let machine = Machine::multimax();
        for kind in [ProblemKind::Spe2, ProblemKind::FivePt] {
            let sys = Problem::build(kind).triangular_system();
            let row = simulate_row(&machine, &sys);
            assert!(
                row.t_reordered < row.t_plain,
                "{}: reordered {} !< plain {}",
                row.name,
                row.t_reordered,
                row.t_plain
            );
            assert!(row.eff_reordered > row.eff_plain, "{}", row.name);
            assert!(
                row.stalls_reordered < row.stalls_plain,
                "{}: reordering must reduce stalls",
                row.name
            );
        }
    }

    #[test]
    fn doacross_beats_sequential_on_16_processors() {
        let machine = Machine::multimax();
        let sys = Problem::build(ProblemKind::FivePt).triangular_system();
        let row = simulate_row(&machine, &sys);
        assert!(row.t_plain < row.t_seq, "parallel must beat sequential");
        assert!(row.t_reordered < row.t_seq);
    }

    #[test]
    fn rearranged_efficiency_lands_in_paper_band() {
        // Paper band: 0.63–0.75. Allow a generous margin (our coefficients
        // and machine are synthetic) but require the same regime.
        let machine = Machine::multimax();
        let sys = Problem::build(ProblemKind::FivePt).triangular_system();
        let row = simulate_row(&machine, &sys);
        assert!(
            row.eff_reordered > 0.45 && row.eff_reordered < 0.90,
            "5-PT rearranged efficiency {} out of regime",
            row.eff_reordered
        );
    }
}
