//! # doacross-sched
//!
//! Worker partitioning and solve admission for the preprocessed doacross
//! engine.
//!
//! A single [`ThreadPool`] serializes parallel regions behind one dispatch
//! lock, so concurrent tenants of one engine pipeline at dispatch even
//! when the machine has workers to spare. [`PoolSet`] removes that
//! ceiling: it partitions the engine's workers into N independent
//! sub-pools (NUMA-style — each sub-pool's workers are a fixed, disjoint
//! set of threads) and routes each solve to a free sub-pool through a
//! lock-free bitmask claim.
//!
//! The dispatch discipline, hot path first:
//!
//! 1. **Fast path** — a round-robin rotor picks a preferred sub-pool and a
//!    CAS on the free-bitmask claims it. No lock, no syscall.
//! 2. **Work-stealing fallback** — if the preferred sub-pool is busy, the
//!    scan continues around the ring and claims any other free sub-pool
//!    (counted as a *steal* in [`PoolStats`]).
//! 3. **Bounded admission** — if every sub-pool is busy, the caller waits
//!    on a condvar *only if* fewer than `max_pending` callers are already
//!    waiting; otherwise acquisition fails with a typed [`Saturated`]
//!    error instead of piling up unboundedly.
//!
//! Releases are lock-free when nobody is waiting: set the bit, check the
//! waiter count, done. The condvar's mutex is touched only on the
//! contended path.

// Audit posture: this crate needs no unsafe code; keep it that way.
#![forbid(unsafe_code)]
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use doacross_par::ThreadPool;

/// Hard cap on sub-pools: the free set is a single `u64` bitmask.
pub const MAX_POOLS: usize = 64;

/// Default bound on callers allowed to wait for a sub-pool before
/// admission fails with [`Saturated`]. Generous — saturation is a
/// back-pressure signal for pathological pileup, not a throttle on
/// ordinary multi-tenant bursts.
pub const DEFAULT_MAX_PENDING: usize = 1024;

/// Typed admission failure: every sub-pool was busy and the pending-waiter
/// queue was already at its bound. The solve was **not** executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Saturated {
    /// Number of sub-pools in the set.
    pub pools: usize,
    /// The admission bound that was hit.
    pub max_pending: usize,
}

impl fmt::Display for Saturated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduler saturated: all {} sub-pool(s) busy and {} caller(s) already pending",
            self.pools, self.max_pending
        )
    }
}

impl std::error::Error for Saturated {}

/// Per-sub-pool dispatch counters, exact (engine-side, independent of the
/// observability layer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Sub-pool index.
    pub pool: usize,
    /// Workers owned by this sub-pool.
    pub workers: usize,
    /// Total acquisitions routed to this sub-pool.
    pub dispatches: u64,
    /// Acquisitions that landed here because the caller's preferred
    /// sub-pool was busy (the work-stealing fallback).
    pub steals: u64,
}

struct PoolSlot {
    pool: ThreadPool,
    dispatches: AtomicU64,
    steals: AtomicU64,
}

/// Fault-injection site: arm with `FailAction::Saturate { times }` to make
/// the next `times` calls to [`PoolSet::acquire`] fail as if every sub-pool
/// were busy, exercising admission-control error paths deterministically.
pub const FAILPOINT_ACQUIRE: &str = "sched::acquire";

/// A partition of the engine's workers into independent sub-pools with a
/// lock-light free-pool dispatcher and bounded solve admission.
pub struct PoolSet {
    slots: Vec<PoolSlot>,
    /// Bit `i` set ⇒ sub-pool `i` is free. Claimed by CAS.
    free: AtomicU64,
    /// Round-robin rotor: spreads preferred sub-pools across callers.
    rotor: AtomicUsize,
    /// Callers currently blocked waiting for a free sub-pool.
    waiters: AtomicUsize,
    /// Pairs with `available`; taken only on the contended path.
    wait_lock: Mutex<()>,
    available: Condvar,
    max_pending: usize,
    saturations: AtomicU64,
    workers_per_pool: usize,
}

impl PoolSet {
    /// Builds `pools` sub-pools of `workers_per_pool` workers each.
    ///
    /// # Panics
    ///
    /// If `pools` is 0 or exceeds [`MAX_POOLS`].
    pub fn new(pools: usize, workers_per_pool: usize, max_pending: usize) -> Self {
        assert!(pools >= 1, "PoolSet requires at least one sub-pool");
        assert!(
            pools <= MAX_POOLS,
            "PoolSet supports at most {MAX_POOLS} sub-pools"
        );
        let slots = (0..pools)
            .map(|_| PoolSlot {
                pool: ThreadPool::new(workers_per_pool),
                dispatches: AtomicU64::new(0),
                steals: AtomicU64::new(0),
            })
            .collect::<Vec<_>>();
        let free = if pools == MAX_POOLS {
            u64::MAX
        } else {
            (1u64 << pools) - 1
        };
        Self {
            slots,
            free: AtomicU64::new(free),
            rotor: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            wait_lock: Mutex::new(()),
            available: Condvar::new(),
            max_pending,
            saturations: AtomicU64::new(0),
            workers_per_pool: workers_per_pool.max(1),
        }
    }

    /// Number of sub-pools.
    pub fn pools(&self) -> usize {
        self.slots.len()
    }

    /// Workers owned by each sub-pool.
    pub fn workers_per_pool(&self) -> usize {
        self.workers_per_pool
    }

    /// Total workers across all sub-pools.
    pub fn total_workers(&self) -> usize {
        self.workers_per_pool * self.slots.len()
    }

    /// The admission bound: callers allowed to wait before [`Saturated`].
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// The primary sub-pool (index 0) — used for planning-time pricing and
    /// probes, where any pool-shaped handle of the per-pool worker count
    /// will do. Regions on it are safe to run concurrently with a tenant
    /// that holds it (the pool serializes its own regions); they merely
    /// contend.
    pub fn primary(&self) -> &ThreadPool {
        &self.slots[0].pool
    }

    /// Total admission failures so far.
    pub fn saturations(&self) -> u64 {
        self.saturations.load(Ordering::Relaxed)
    }

    /// Exact per-sub-pool dispatch counters.
    pub fn stats(&self) -> Vec<PoolStats> {
        self.slots
            .iter()
            .enumerate()
            .map(|(i, s)| PoolStats {
                pool: i,
                workers: s.pool.threads(),
                dispatches: s.dispatches.load(Ordering::Relaxed),
                steals: s.steals.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Scans the free bitmask starting at `preferred`, CAS-claiming the
    /// first free sub-pool. Returns the claimed index, or `None` if every
    /// sub-pool is busy.
    fn try_claim(&self, preferred: usize) -> Option<usize> {
        let n = self.slots.len();
        'retry: loop {
            let free = self.free.load(Ordering::SeqCst);
            if free == 0 {
                return None;
            }
            for off in 0..n {
                let idx = (preferred + off) % n;
                let bit = 1u64 << idx;
                if free & bit == 0 {
                    continue;
                }
                if self
                    .free
                    .compare_exchange(free, free & !bit, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return Some(idx);
                }
                // Lost the race: the mask moved under us; rescan.
                continue 'retry;
            }
            return None;
        }
    }

    /// Acquires a free sub-pool, waiting (bounded) if all are busy.
    ///
    /// Returns a [`PoolGuard`] that releases the sub-pool on drop, or
    /// [`Saturated`] if every sub-pool is busy and `max_pending` callers
    /// are already waiting.
    pub fn acquire(&self) -> Result<PoolGuard<'_>, Saturated> {
        if failpoint::fire_saturate(FAILPOINT_ACQUIRE) {
            self.saturations.fetch_add(1, Ordering::Relaxed);
            return Err(Saturated {
                pools: self.slots.len(),
                max_pending: self.max_pending,
            });
        }
        let preferred = self.rotor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        // Fast path: lock-free claim.
        if let Some(idx) = self.try_claim(preferred) {
            return Ok(self.admit(idx, preferred));
        }
        // Contended path: register as a waiter (bounded), then sleep.
        let mut guard = self.wait_lock.lock();
        loop {
            // Re-scan *after* publishing intent to wait: a release that
            // happened between the fast-path miss and here either left the
            // bit set (this scan claims it) or will see `waiters > 0` and
            // notify.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if let Some(idx) = self.try_claim(preferred) {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                return Ok(self.admit(idx, preferred));
            }
            if self.waiters.load(Ordering::SeqCst) > self.max_pending {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                self.saturations.fetch_add(1, Ordering::Relaxed);
                return Err(Saturated {
                    pools: self.slots.len(),
                    max_pending: self.max_pending,
                });
            }
            self.available.wait(&mut guard);
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn admit(&self, idx: usize, preferred: usize) -> PoolGuard<'_> {
        let slot = &self.slots[idx];
        slot.dispatches.fetch_add(1, Ordering::Relaxed);
        let stolen = idx != preferred;
        if stolen {
            slot.steals.fetch_add(1, Ordering::Relaxed);
        }
        PoolGuard {
            set: self,
            index: idx,
            stolen,
        }
    }

    fn release(&self, idx: usize) {
        self.free.fetch_or(1u64 << idx, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Pair with the waiter's re-scan: take the condvar's mutex so
            // the notify cannot slip between its scan and its sleep.
            let _g = self.wait_lock.lock();
            self.available.notify_one();
        }
    }
}

/// Exclusive lease on one sub-pool; released (and a waiter woken) on drop.
pub struct PoolGuard<'a> {
    set: &'a PoolSet,
    index: usize,
    stolen: bool,
}

impl PoolGuard<'_> {
    /// The leased sub-pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.set.slots[self.index].pool
    }

    /// Index of the leased sub-pool within the set.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether this lease came from the work-stealing fallback (the
    /// caller's preferred sub-pool was busy).
    pub fn stolen(&self) -> bool {
        self.stolen
    }
}

impl std::fmt::Debug for PoolGuard<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolGuard")
            .field("index", &self.index)
            .field("stolen", &self.stolen)
            .finish_non_exhaustive()
    }
}

impl Drop for PoolGuard<'_> {
    fn drop(&mut self) {
        self.set.release(self.index);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn partitions_workers_into_disjoint_sub_pools() {
        let set = PoolSet::new(3, 2, DEFAULT_MAX_PENDING);
        assert_eq!(set.pools(), 3);
        assert_eq!(set.workers_per_pool(), 2);
        assert_eq!(set.total_workers(), 6);
        for s in set.stats() {
            assert_eq!(s.workers, 2);
            assert_eq!(s.dispatches, 0);
        }
    }

    #[test]
    fn acquires_hand_out_distinct_sub_pools() {
        let set = PoolSet::new(2, 1, 0);
        let a = set.acquire().unwrap();
        let b = set.acquire().unwrap();
        assert_ne!(a.index(), b.index());
    }

    #[test]
    fn saturates_with_a_typed_error_when_the_bound_is_hit() {
        let set = PoolSet::new(1, 1, 0);
        let _held = set.acquire().unwrap();
        let err = set.acquire().unwrap_err();
        assert_eq!(
            err,
            Saturated {
                pools: 1,
                max_pending: 0
            }
        );
        assert_eq!(set.saturations(), 1);
        assert!(err.to_string().contains("saturated"));
    }

    #[test]
    fn release_wakes_a_bounded_waiter() {
        let set = Arc::new(PoolSet::new(1, 1, 4));
        let held = set.acquire().unwrap();
        let got = Arc::new(AtomicBool::new(false));
        let t = {
            let set = Arc::clone(&set);
            let got = Arc::clone(&got);
            std::thread::spawn(move || {
                let g = set.acquire().unwrap();
                got.store(true, Ordering::SeqCst);
                drop(g);
            })
        };
        // The waiter cannot proceed while we hold the only sub-pool.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!got.load(Ordering::SeqCst));
        drop(held);
        t.join().unwrap();
        assert!(got.load(Ordering::SeqCst));
    }

    #[test]
    fn busy_preferred_pool_falls_back_to_stealing_a_free_one() {
        let set = PoolSet::new(2, 1, 0);
        // Rotor: 0 → pool 0, 1 → pool 1, 2 → prefers pool 0 again.
        let g0 = set.acquire().unwrap();
        assert_eq!(g0.index(), 0);
        let g1 = set.acquire().unwrap();
        assert_eq!(g1.index(), 1);
        drop(g1);
        let g2 = set.acquire().unwrap();
        assert_eq!(g2.index(), 1, "preferred pool 0 is held; 1 is stolen");
        assert!(g2.stolen());
        drop(g2);
        drop(g0);
        let stats = set.stats();
        assert_eq!(stats[0].dispatches, 1);
        assert_eq!(stats[1].dispatches, 2);
        assert_eq!(stats[1].steals, 1);
        assert_eq!(stats[0].steals, 0);
    }

    #[test]
    fn dispatch_counts_account_for_every_acquire() {
        let set = Arc::new(PoolSet::new(2, 1, DEFAULT_MAX_PENDING));
        let total = 64usize;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    for _ in 0..total / 4 {
                        let g = set.acquire().unwrap();
                        // Run a real region on the leased sub-pool.
                        g.pool().run(|_worker| {});
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let dispatched: u64 = set.stats().iter().map(|s| s.dispatches).sum();
        assert_eq!(dispatched, total as u64);
        assert_eq!(set.saturations(), 0);
    }

    #[test]
    fn sub_pools_run_regions_independently() {
        let set = PoolSet::new(2, 2, 0);
        let a = set.acquire().unwrap();
        let b = set.acquire().unwrap();
        let hits = AtomicUsize::new(0);
        // Nested regions on two distinct sub-pools: pool B's region runs
        // while pool A's lease is outstanding — no cross-pool serialization.
        a.pool().run(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        b.pool().run(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn injected_saturation_fails_typed_then_recovers() {
        let set = PoolSet::new(2, 1, DEFAULT_MAX_PENDING);
        failpoint::arm(
            FAILPOINT_ACQUIRE,
            failpoint::FailAction::Saturate { times: 2 },
        );
        let before = set.saturations();
        assert!(set.acquire().is_err());
        assert!(set.acquire().is_err());
        assert_eq!(set.saturations(), before + 2);
        // The countdown is spent: admission recovers with no disarm needed.
        let g = set.acquire().expect("saturation injection must be bounded");
        drop(g);
        failpoint::disarm(FAILPOINT_ACQUIRE);
    }

    #[test]
    fn guard_releases_the_sub_pool_when_a_region_panics() {
        let set = PoolSet::new(1, 2, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let g = set.acquire().unwrap();
            g.pool().run(|worker| {
                if worker == 0 {
                    panic!("chaos");
                }
            });
        }));
        assert!(result.is_err(), "the region's fault must propagate");
        // The guard dropped during unwinding, so the sole sub-pool is free
        // again and the pool itself still runs clean regions.
        let g = set
            .acquire()
            .expect("panicked region must not leak its lease");
        let hits = AtomicUsize::new(0);
        g.pool().run(|_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
