//! Interleaving-checker model of the multi-pool scheduler's lock-free
//! free-pool bitmask (`PoolSet::try_claim` / the guard's release
//! `fetch_or`): bit `i` set means sub-pool `i` is free; a claim is a
//! `compare_exchange` clearing the bit, a release is a `fetch_or` setting
//! it back.
//!
//! The invariant model-checked here is mutual exclusion: while a thread
//! holds a claimed bit it has exclusive use of that sub-pool's state. The
//! per-slot [`Shared`] cells stand in for the sub-pool — any double claim
//! shows up as a data race on them. Mutation tests corrupt the protocol
//! (claim by plain load+store instead of CAS; release with a relaxed
//! ordering) and prove the checker catches each with the right failure.

use interleave::{check, spin_until, AtomicU64, Config, FailureKind, Ordering, Shared};

struct PoolSet {
    /// Bit `i` set ⇒ slot `i` free, mirroring `doacross-sched`'s mask.
    free: AtomicU64,
    slots: [Shared<u64>; 2],
}

fn pool_set(pools: u64) -> PoolSet {
    PoolSet {
        free: AtomicU64::new((1 << pools) - 1),
        slots: [Shared::named("pool[0]", 0), Shared::named("pool[1]", 0)],
    }
}

/// `PoolSet::try_claim`: scan from `preferred`, CAS the bit away; rescan
/// on a lost race. `use_cas = false` is the mutation — claim with a plain
/// load + store, which two threads can interleave into a double claim.
fn try_claim(m: &PoolSet, n: usize, preferred: usize, use_cas: bool) -> Option<usize> {
    'retry: loop {
        let free = m.free.load(Ordering::SeqCst);
        if free == 0 {
            return None;
        }
        for off in 0..n {
            let idx = (preferred + off) % n;
            let bit = 1u64 << idx;
            if free & bit == 0 {
                continue;
            }
            if use_cas {
                if m.free
                    .compare_exchange(free, free & !bit, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return Some(idx);
                }
                continue 'retry;
            }
            m.free.store(free & !bit, Ordering::SeqCst);
            return Some(idx);
        }
        return None;
    }
}

/// One acquire → use → release cycle: claim a slot (waiting for a release
/// if all are busy), mutate the sub-pool state, hand the bit back.
fn dispatch(m: &PoolSet, n: usize, preferred: usize, use_cas: bool, release_order: Ordering) {
    let idx = loop {
        if let Some(idx) = try_claim(m, n, preferred, use_cas) {
            break idx;
        }
        spin_until(|| m.free.load(Ordering::SeqCst) != 0);
    };
    m.slots[idx].with_mut(|v| *v += 1);
    m.free.fetch_or(1u64 << idx, release_order);
}

#[test]
fn contended_single_pool_claims_are_exclusive() {
    // Two threads fight over one sub-pool: the loser must wait for the
    // release and then observe the winner's use. Exhaustive.
    let report = check(
        &Config::default(),
        || pool_set(1),
        &[
            &|m: &PoolSet| dispatch(m, 1, 0, true, Ordering::SeqCst),
            &|m: &PoolSet| dispatch(m, 1, 0, true, Ordering::SeqCst),
        ],
    )
    .expect("CAS claim + release fetch_or is exclusive");
    assert!(report.exhaustive);
}

#[test]
fn steal_scan_routes_the_loser_to_the_other_pool() {
    // Both threads prefer slot 0; one must steal slot 1. Afterwards both
    // slots were used exactly once — and no schedule ever double-claims.
    let report = check(
        &Config::default(),
        || pool_set(2),
        &[
            &|m: &PoolSet| dispatch(m, 2, 0, true, Ordering::SeqCst),
            &|m: &PoolSet| dispatch(m, 2, 0, true, Ordering::SeqCst),
        ],
    )
    .expect("the ring scan never hands two threads the same sub-pool");
    assert!(report.exhaustive);
}

#[test]
fn mutation_claim_without_cas_double_claims_a_pool() {
    let failure = check(
        &Config::default(),
        || pool_set(1),
        &[
            &|m: &PoolSet| dispatch(m, 1, 0, false, Ordering::SeqCst),
            &|m: &PoolSet| dispatch(m, 1, 0, false, Ordering::SeqCst),
        ],
    )
    .expect_err("load+store claiming admits a double claim");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("pool[0]")),
        "{failure}"
    );
    assert!(!failure.schedule.is_empty(), "counterexample must replay");
}

#[test]
fn mutation_relaxed_release_leaks_unordered_pool_state() {
    // A relaxed `fetch_or` hands the bit back without publishing the
    // holder's writes: the next claimant's use of the sub-pool races with
    // the previous holder's.
    let failure = check(
        &Config::default(),
        || pool_set(1),
        &[
            &|m: &PoolSet| dispatch(m, 1, 0, true, Ordering::Relaxed),
            &|m: &PoolSet| dispatch(m, 1, 0, true, Ordering::Relaxed),
        ],
    )
    .expect_err("a relaxed release must leak a race");
    assert!(
        matches!(&failure.kind, FailureKind::Race { what } if what.contains("pool[0]")),
        "{failure}"
    );
}
